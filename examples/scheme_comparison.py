#!/usr/bin/env python
"""Compare every scheme of the paper on a workload of your choice.

A compact version of Fig. 10 for one workload: run Baseline, Rho, the three
IR techniques, the combined IR-ORAM, and LLC-D, then print execution time,
speedup, path counts by type, and the per-scheme mechanisms (background
evictions, PosMap paths, dummy conversions).

Run:  python examples/scheme_comparison.py [workload] [records]
      python examples/scheme_comparison.py dee 8000
"""

import sys

from repro import RunSpec, run_many
from repro.experiments.fig10_performance import SCHEME_ORDER


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "xz"
    records = int(sys.argv[2]) if len(sys.argv) > 2 else 5000
    config = RunSpec().resolve_config()
    print(f"workload {workload}, {records} records, "
          f"L={config.oram.levels} tree\n")

    header = (f"{'scheme':<10} {'cycles':>12} {'speedup':>8} {'paths':>7} "
              f"{'PTd':>6} {'PTp':>6} {'PTm':>6} {'evict':>6} {'dwb':>5}")
    print(header)
    print("-" * len(header))

    outs = run_many(
        [RunSpec(scheme=scheme, workload=workload, records=records)
         for scheme in SCHEME_ORDER]
    )
    baseline_cycles = None
    for scheme, out in zip(SCHEME_ORDER, outs):
        result = out.result
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        speedup = baseline_cycles / result.cycles
        counts = result.path_counts
        print(
            f"{scheme:<10} {result.cycles:>12,} {speedup:>8.2f} "
            f"{result.total_paths():>7.0f} {counts['PTd']:>6.0f} "
            f"{result.posmap_paths():>6.0f} {counts['PTm']:>6.0f} "
            f"{result.background_evictions():>6.0f} "
            f"{result.counters.get('dwb.converted_slots', 0):>5.0f}"
        )

    print("\npaper averages (Fig. 10): Rho 1.11x, IR-Alloc 1.41x, "
          "IR-Stash 1.27x, IR-DWB 1.05x, IR-ORAM 1.57x")


if __name__ == "__main__":
    main()
