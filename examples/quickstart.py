#!/usr/bin/env python
"""Quickstart: run one benchmark through the Baseline and IR-ORAM.

This is the 60-second tour of the library: build the scaled platform,
replay one synthetic SPEC-like workload through two schemes, and print the
headline numbers the paper is about — execution time, path-type mix, and
memory traffic.

Run:  python examples/quickstart.py [workload] [records]
"""

import sys

from repro import RunSpec, run


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    records = int(sys.argv[2]) if len(sys.argv) > 2 else 4000
    config = RunSpec().resolve_config()
    print(f"platform: L={config.oram.levels}, "
          f"{config.oram.user_blocks} user blocks, "
          f"PL={config.oram.blocks_per_path()} blocks/path, "
          f"LLC={config.llc.capacity_bytes // 1024} KB")
    print(f"workload: {workload} ({records} records)\n")

    results = {}
    for scheme in ("Baseline", "IR-ORAM"):
        result = run(RunSpec(
            scheme=scheme, workload=workload, records=records,
        )).result
        results[scheme] = result
        dist = result.path_type_distribution()
        print(f"{scheme}:")
        print(f"  execution time : {result.cycles:,} cycles "
              f"(IPC {result.ipc:.3f})")
        print(f"  path accesses  : {result.total_paths():,.0f} "
              f"({result.memory_accesses():,.0f} block transfers)")
        print("  path-type mix  : "
              + ", ".join(f"{k}={v:.1%}" for k, v in dist.items() if v))
        print()

    speedup = results["IR-ORAM"].speedup_over(results["Baseline"])
    print(f"IR-ORAM speedup over Baseline on {workload}: {speedup:.2f}x")
    print("(the paper reports 1.57x on average across its benchmark suite)")


if __name__ == "__main__":
    main()
