#!/usr/bin/env python
"""Reproduce the Section III motivation studies interactively.

Three observations drive IR-ORAM's design; this script regenerates all of
them on the scaled platform and renders ASCII bar charts:

1. the per-level space utilization mismatch (Fig. 3): middle levels are
   mostly dummy blocks;
2. the block migration behaviour (Fig. 5): pre-existing stash blocks land
   near the top, fetched blocks sink back;
3. tree-top reuse (Fig. 6): a tiny top fraction of the tree serves a
   disproportionate share of requests.

Run:  python examples/utilization_study.py [records]
"""

import sys

from repro import SystemConfig
from repro.experiments import (
    fig03_utilization,
    fig05_migration,
    fig06_treetop_reuse,
)


def bar(fraction: float, width: int = 40) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    config = SystemConfig.scaled()

    print("=" * 64)
    print("1. Space utilization per tree level (Fig. 3 methodology)")
    print("=" * 64)
    result = fig03_utilization.run(config, records, snapshots=4)
    average = result.rows[-1]
    for level in range(config.oram.levels):
        value = average[1 + level]
        print(f"  L{level:<2} {bar(value)} {value:.2f}")
    print("  -> middle levels run far below the ~50% provisioning;"
          " IR-Alloc shrinks their buckets.\n")

    print("=" * 64)
    print("2. Write-phase placement (Fig. 5 methodology)")
    print("=" * 64)
    result = fig05_migration.run(config, records)
    print(f"  {'level':>5} {'pre-existing':>14} {'fetched':>10}")
    for row in result.rows:
        print(f"  {row[0]:>5} {row[1]:>14.3f} {row[2]:>10.3f}")
    for note in result.notes:
        print(f"  -> {note}")
    print()

    print("=" * 64)
    print("3. Tree-top reuse (Fig. 6 methodology, no LLC filter)")
    print("=" * 64)
    result = fig06_treetop_reuse.run(config, records)
    for location, fraction in result.rows:
        if fraction > 0.001:
            print(f"  {location:>6} {bar(fraction)} {fraction:.3f}")
    for note in result.notes:
        print(f"  -> {note}")


if __name__ == "__main__":
    main()
