#!/usr/bin/env python
"""An oblivious key-value store built on the Path ORAM controller.

The paper's motivation is protecting cloud applications whose memory access
patterns leak secrets.  This example builds a tiny key-value store whose
GET/PUT operations go through the ORAM controller, then *verifies with the
obliviousness checker* that the externally visible memory trace reveals
nothing about which keys were accessed: a skewed, secret-dependent workload
produces the same fixed-rate, fixed-shape path accesses as any other.

Run:  python examples/oblivious_kv_store.py
"""

import random

from repro import AccessRecorder, SystemConfig, check_obliviousness
from repro.core.schemes import build_scheme
from repro.oram.types import Request, RequestKind


class ObliviousKVStore:
    """A block-granular KV store: each key owns one ORAM block."""

    def __init__(self, config: SystemConfig) -> None:
        components = build_scheme("IR-ORAM", config)
        self.controller = components.controller
        self.recorder = AccessRecorder()
        self.controller.observer = self.recorder
        self.config = config
        self._values = {}       # simulated payloads (host-side shadow)
        self._keymap = {}       # key -> user block
        self._next_block = 0
        self.now = 0

    def _block_of(self, key: str) -> int:
        if key not in self._keymap:
            if self._next_block >= self.config.oram.user_blocks:
                raise RuntimeError("store full")
            self._keymap[key] = self._next_block
            self._next_block += 1
        return self._keymap[key]

    def _access(self, block: int, is_write: bool) -> None:
        request = Request(
            block=block,
            kind=RequestKind.READ,
            arrival=self.now,
            is_write=is_write,
        )
        self.controller.enqueue(request)
        interval = self.config.oram.issue_interval
        while request.completion is None:
            result = self.controller.step(self.now, allow_dummy=True)
            self.now = max(self.now + interval, result.finish_write)

    def put(self, key: str, value: str) -> None:
        self._access(self._block_of(key), is_write=True)
        self._values[key] = value

    def get(self, key: str) -> str:
        self._access(self._block_of(key), is_write=False)
        return self._values[key]


def main() -> None:
    config = SystemConfig.scaled(levels=11)
    store = ObliviousKVStore(config)
    rng = random.Random(99)

    print("populating 200 keys ...")
    for i in range(200):
        store.put(f"user:{i}", f"profile-{i}")

    print("running a secret-dependent, highly skewed query mix ...")
    hot_keys = [f"user:{i}" for i in range(5)]
    for _ in range(300):
        if rng.random() < 0.8:
            key = rng.choice(hot_keys)       # the secret: 5 hot users
        else:
            key = f"user:{rng.randrange(200)}"
        value = store.get(key)
        assert value.startswith("profile-")

    report = check_obliviousness(store.recorder, config.oram)
    print(f"\nobservable path accesses : {report.total_paths}")
    print(f"uniform path shape       : {report.shape_uniform}")
    print(f"fixed issue rate         : {report.rate_uniform} "
          f"(min gap {report.min_interval} cycles)")
    print(f"uniform leaves per type  : {report.leaf_uniform_by_type}")
    print(f"\noblivious: {report.ok} — the 80/20 hot-key skew is invisible "
          "in the memory trace")


if __name__ == "__main__":
    main()
