"""Fig. 5 / Fig. 6 benchmarks: block migration and tree-top reuse.

Paper shape: pre-existing stash blocks are written near the top while
fetched blocks flush deep (Fig. 5); the tiny tree top serves a share of
requests orders of magnitude above its capacity share (Fig. 6).
"""

from repro.experiments import fig05_migration, fig06_treetop_reuse

from conftest import bench_records, regenerate


def test_fig05_migration(benchmark, bench_config):
    result = regenerate(
        benchmark, fig05_migration.run, bench_config, bench_records()
    )
    levels = bench_config.oram.levels
    top_half = range(levels // 2)
    pre_top = sum(result.rows[level][1] for level in top_half)
    fetched_top = sum(result.rows[level][2] for level in top_half)
    # pre-existing blocks concentrate toward the top vs fetched blocks
    assert pre_top > fetched_top


def test_fig06_treetop_reuse(benchmark, bench_config):
    result = regenerate(
        benchmark, fig06_treetop_reuse.run, bench_config,
        max(bench_records(), 2000),
    )
    shares = dict(zip(result.column("location"),
                      result.column("fraction of requests")))
    top_levels = bench_config.oram.top_cached_levels
    top_share = sum(shares.get(f"L{l}", 0.0) for l in range(top_levels))
    oram = bench_config.oram
    capacity_share = sum(
        oram.z_per_level[l] << l for l in range(top_levels)
    ) / oram.tree_slots()
    # reuse share dwarfs capacity share (paper: 23% from <0.01% of space)
    assert top_share > 5 * capacity_share
    assert top_share > 0.05
