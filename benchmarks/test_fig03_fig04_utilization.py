"""Fig. 3 / Fig. 4 benchmarks: per-level space utilization over time.

Paper shape: middle levels run well below the ~50% provisioning while the
bottom levels run far above it.
"""

from repro.experiments import fig03_utilization, fig04_utilization_per_bench

from conftest import bench_records, regenerate


def test_fig03_utilization_shape(benchmark, bench_config):
    result = regenerate(
        benchmark, fig03_utilization.run, bench_config, bench_records(),
    )
    average = result.rows[-1]
    levels = bench_config.oram.levels
    middle = average[1 + levels // 2]
    bottom = average[levels]  # last level
    assert bottom > middle
    assert bottom > 0.5
    assert middle < 0.5


def test_fig04_per_benchmark(benchmark, bench_config):
    result = regenerate(
        benchmark,
        fig04_utilization_per_bench.run,
        bench_config,
        bench_records(),
        ["gcc", "random"],
    )
    levels = bench_config.oram.levels
    rows = result.row_map("workload")
    # random traces keep middle levels at least as full as program traces
    middle_index = 1 + levels // 2
    assert rows["random"][levels] > 0.4  # bottom level well used
