"""Fig. 7 benchmark: the IR-Alloc allocation arithmetic (exact numbers)."""

from repro.experiments import fig07_alloc_example

from conftest import regenerate


def test_fig07_pl_numbers(benchmark):
    result = regenerate(benchmark, fig07_alloc_example.run)
    pls = dict(zip(result.column("allocation"), result.column("PL")))
    # exact values from the paper
    assert pls["Path ORAM (no tree-top cache)"] == 100
    assert pls["Path ORAM + 10-level top cache"] == 60
    assert pls["IR-ORAM"] == 43
    assert pls["IR-Alloc2"] == 42
    assert pls["IR-Alloc3"] == 37
    assert pls["IR-Alloc4"] == 36
