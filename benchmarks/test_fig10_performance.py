"""Fig. 10 benchmark: speedup of every scheme over the Baseline.

Paper shape: IR-Alloc is the largest single win, IR-Stash helps, IR-DWB is
small but non-negative, IR-ORAM combines them, and LLC-D slows the
read-intensive mcf while helping write-heavy programs.
"""

from repro.experiments import fig10_performance
from repro.experiments.common import geometric_mean

from conftest import bench_records, bench_workloads, regenerate


def test_fig10_speedups(benchmark, bench_config):
    workloads = bench_workloads()
    result = regenerate(
        benchmark,
        fig10_performance.run,
        bench_config,
        bench_records(),
        workloads,
    )
    summary = result.rows[-1]
    by_scheme = dict(zip(result.headers[1:], summary[1:]))
    assert by_scheme["IR-Alloc"] > 1.1          # the big single win
    assert by_scheme["IR-Stash"] >= 0.99        # never hurts
    assert by_scheme["IR-DWB"] >= 0.99          # small but non-negative
    assert by_scheme["IR-ORAM"] > 1.1           # combination wins
    if "mcf" in workloads:
        rows = result.row_map("workload")
        assert rows["mcf"][result.headers.index("LLC-D")] < 1.0
