"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
the same code path as ``repro.experiments.run_all``, at a reduced scale so
the whole harness completes in minutes.  Environment knobs:

* ``REPRO_BENCH_RECORDS``   — trace length per workload (default 1200);
* ``REPRO_BENCH_WORKLOADS`` — comma-separated workload subset
  (default ``gcc,mcf,lbm,dee``);
* ``REPRO_BENCH_FULL=1``    — run at full experiment scale (slow).
"""

import os

import pytest

from repro.config import SystemConfig
from repro.experiments import common

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"


def bench_records(default: int = 1200) -> int:
    if FULL:
        return common.experiment_records()
    return int(os.environ.get("REPRO_BENCH_RECORDS", default))


def bench_workloads():
    if FULL:
        return common.experiment_workloads()
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "gcc,mcf,lbm,dee")
    return [name.strip() for name in raw.split(",") if name.strip()]


@pytest.fixture(scope="session")
def bench_config() -> SystemConfig:
    if FULL:
        return common.experiment_config()
    return SystemConfig.scaled(levels=13)


@pytest.fixture(scope="session", autouse=True)
def _shared_cache():
    """One memoized run matrix for the whole benchmark session."""
    yield
    common.clear_cache()


def regenerate(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark timing."""
    result = benchmark.pedantic(
        lambda: fn(*args, **kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.rows
    print()
    print(result.to_text())
    return result
