"""Benchmarks regenerating Table I and Table II."""

from repro.experiments import table1_config, table2_benchmarks

from conftest import bench_records, regenerate


def test_table1_config(benchmark, bench_config):
    result = regenerate(benchmark, table1_config.run, bench_config)
    params = dict(zip(result.column("parameter"), result.column("paper")))
    assert params["ORAM tree levels"] == 25


def test_table2_benchmarks(benchmark, bench_config):
    result = regenerate(
        benchmark, table2_benchmarks.run, bench_config, bench_records()
    )
    assert len(result.rows) == 13
