"""Benchmarks for the extension experiments: timing ablation and Z-search.

Paper shape (Section VI-A): IR-Alloc's speedup without timing protection is
slightly smaller than with it (40% vs 41%); the greedy Z-search finds a
non-uniform allocation within the space/eviction constraints.
"""

from repro.config import SystemConfig
from repro.experiments import ablation_timing, zsearch

from conftest import FULL, bench_records, bench_workloads, regenerate


def test_ablation_timing(benchmark, bench_config):
    result = regenerate(
        benchmark,
        ablation_timing.run,
        bench_config,
        bench_records(),
        bench_workloads(),
    )
    geo = result.rows[-1]
    protected_alloc, unprotected_alloc = geo[1], geo[3]
    # IR-Alloc helps in both modes, within a similar band (Section VI-A)
    assert protected_alloc > 1.0
    assert unprotected_alloc > 1.0
    assert abs(protected_alloc - unprotected_alloc) < 0.35


def test_zsearch(benchmark):
    config = (
        SystemConfig.scaled(levels=12) if FULL else SystemConfig.scaled(levels=9)
    )
    result = regenerate(
        benchmark,
        zsearch.run,
        config,
        min(bench_records(), 600),
        0.06,
    )
    rows = {row[0]: row for row in result.rows}
    assert rows["blocks per path (PL)"][2] <= rows["blocks per path (PL)"][1]
    assert rows["speedup"][2] >= 0.95
