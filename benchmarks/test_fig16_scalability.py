"""Fig. 16 benchmark: IR-Alloc scalability across tree sizes.

Paper shape: speedups on random traces stay stable across protected-memory
sizes, with near-zero variance across random traces.
"""

from repro.experiments import fig16_scalability

from conftest import bench_records, regenerate
from conftest import FULL


def test_fig16_scalability(benchmark):
    sweep = (14, 15, 16) if FULL else (10, 11)
    seeds = (1, 2, 3, 4, 5) if FULL else (1, 2)
    result = regenerate(
        benchmark,
        fig16_scalability.run,
        sweep,
        min(bench_records(), 1500),
        seeds,
    )
    speedups = result.column("mean speedup")
    assert all(value > 0.9 for value in speedups)
    spread = max(speedups) - min(speedups)
    assert spread < 0.5  # stable across sizes
