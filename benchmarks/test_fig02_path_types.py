"""Fig. 2 benchmark: path-access-type distribution under the Baseline.

Paper shape: PTd dominates (~56%), PTp is non-negligible (~33%) with Pos1
several times Pos2, and PTm fills the rest.
"""

from repro.experiments import fig02_path_types

from conftest import bench_records, bench_workloads, regenerate


def test_fig02_distribution(benchmark, bench_config):
    result = regenerate(
        benchmark,
        fig02_path_types.run,
        bench_config,
        bench_records(),
        bench_workloads(),
    )
    average = result.rows[-1]
    pos1, pos2, data = average[1], average[2], average[3]
    assert data > 0.35                      # PTd dominates
    assert pos1 > pos2                      # Pos1 outweighs Pos2
    assert 0.05 < pos1 + pos2 < 0.65        # PTp non-negligible
