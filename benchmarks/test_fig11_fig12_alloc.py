"""Fig. 11 / Fig. 12 benchmarks: LLC-D composition and IR-Alloc configs.

Paper shape: IR-Stash+IR-Alloc improves an LLC-D baseline across the board
(Fig. 11); among IR-Alloc1..4, smaller PL buys speed while aggressive
configurations spend more time on background eviction (Fig. 12).
"""

from repro.experiments import fig11_llcd, fig12_alloc_configs
from repro.experiments.common import geometric_mean

from conftest import bench_records, bench_workloads, regenerate


def test_fig11_llcd_composition(benchmark, bench_config):
    result = regenerate(
        benchmark,
        fig11_llcd.run,
        bench_config,
        bench_records(),
        bench_workloads(),
    )
    assert result.rows[-1][1] > 1.0  # geomean improvement over LLC-D


def test_fig12_alloc_configs(benchmark, bench_config):
    result = regenerate(
        benchmark,
        fig12_alloc_configs.run,
        bench_config,
        bench_records(),
        bench_workloads(),
    )
    summary = result.rows[-1]
    # normalized time: every configuration at or below the baseline's 1.0
    ir1, ir4 = summary[1], summary[7]
    assert ir1 <= 1.02
    assert ir4 <= 1.02
    # smaller PL (IR-Alloc4) is at least as fast as IR-Alloc1 on average
    assert ir4 <= ir1 + 0.05
