"""Fig. 13/14/15 benchmarks: IR-Alloc utilization, PosMap cuts, DWB mix.

Paper shape: IR-Alloc raises middle-level utilization (Fig. 13); IR-Stash
cuts PosMap paths (49% of baseline on average, Fig. 14); IR-DWB converts a
visible share of dummy slots (11% -> 6% average, Fig. 15).
"""

from repro.experiments import (
    fig03_utilization,
    fig13_alloc_utilization,
    fig14_posmap,
    fig15_dwb_distribution,
)

from conftest import bench_records, bench_workloads, regenerate


def test_fig13_alloc_utilization(benchmark, bench_config):
    result = regenerate(
        benchmark, fig13_alloc_utilization.run, bench_config, bench_records()
    )
    baseline = fig03_utilization.run(bench_config, bench_records())
    levels = bench_config.oram.levels
    middle = levels // 2 + 1
    alloc_avg = result.rows[-1][1 + middle]
    base_avg = baseline.rows[-1][1 + middle]
    # shrunken middle buckets run at higher utilization
    assert alloc_avg >= base_avg


def test_fig14_posmap_reduction(benchmark, bench_config):
    result = regenerate(
        benchmark,
        fig14_posmap.run,
        bench_config,
        bench_records(),
        bench_workloads(),
    )
    geomean = result.rows[-1][3]
    assert geomean <= 1.0  # IR-Stash never issues more PosMap paths


def test_fig15_dummy_conversion(benchmark, bench_config):
    result = regenerate(
        benchmark,
        fig15_dwb_distribution.run,
        bench_config,
        bench_records(),
        bench_workloads(),
    )
    average = result.rows[-1]
    assert average[2] <= average[1] + 1e-9  # dummy share shrinks
