"""Unit tests for configuration objects and their derived quantities."""

import math

import pytest

from repro.config import (
    CacheConfig,
    CPUConfig,
    DRAMConfig,
    ORAMConfig,
    SystemConfig,
    posmap_fanout,
    scaled_user_blocks,
)
from repro.errors import ConfigError


class TestPosmapFanout:
    def test_standard(self):
        assert posmap_fanout(64, 4) == 16

    def test_larger_entries(self):
        assert posmap_fanout(64, 8) == 8

    def test_entry_larger_than_block_rejected(self):
        with pytest.raises(ConfigError):
            posmap_fanout(4, 64)

    def test_zero_entry_rejected(self):
        with pytest.raises(ConfigError):
            posmap_fanout(64, 0)


class TestORAMConfig:
    def test_uniform_builder(self):
        config = ORAMConfig.uniform(levels=10, user_blocks=512, z=4)
        assert config.z_per_level == (4,) * 10
        assert config.leaves == 512

    def test_levels_too_small(self):
        with pytest.raises(ConfigError):
            ORAMConfig.uniform(levels=1, user_blocks=4)

    def test_z_vector_length_mismatch(self):
        with pytest.raises(ConfigError):
            ORAMConfig(levels=5, user_blocks=8, z_per_level=(4, 4, 4))

    def test_negative_z_rejected(self):
        with pytest.raises(ConfigError):
            ORAMConfig(levels=3, user_blocks=4, z_per_level=(4, -1, 4))

    def test_top_cached_out_of_range(self):
        with pytest.raises(ConfigError):
            ORAMConfig.uniform(levels=5, user_blocks=8, top_cached_levels=5)

    def test_eviction_threshold_above_capacity(self):
        with pytest.raises(ConfigError):
            ORAMConfig.uniform(
                levels=8,
                user_blocks=64,
                stash_capacity=100,
                eviction_threshold=200,
            )

    def test_capacity_check(self):
        slots = 4 * ((1 << 5) - 1)  # 124
        with pytest.raises(ConfigError):
            ORAMConfig.uniform(levels=5, user_blocks=slots + 1)

    def test_tree_slots_uniform(self):
        config = ORAMConfig.uniform(levels=5, user_blocks=16)
        assert config.tree_slots() == 4 * 31

    def test_tree_slots_nonuniform(self):
        config = ORAMConfig(
            levels=3, user_blocks=4, z_per_level=(4, 2, 1)
        )
        assert config.tree_slots() == 4 + 4 + 4

    def test_posmap_sizing(self):
        config = ORAMConfig.uniform(levels=12, user_blocks=1600)
        assert config.posmap1_blocks == math.ceil(1600 / 16)
        assert config.posmap2_blocks == math.ceil(config.posmap1_blocks / 16)
        assert config.posmap3_entries == config.posmap2_blocks

    def test_total_blocks(self):
        config = ORAMConfig.uniform(levels=12, user_blocks=1600)
        assert config.total_blocks() == (
            1600 + config.posmap1_blocks + config.posmap2_blocks
        )

    def test_blocks_per_path_with_top_cache(self):
        config = ORAMConfig.uniform(
            levels=10, user_blocks=256, top_cached_levels=4
        )
        assert config.blocks_per_path() == 6 * 4

    def test_blocks_per_path_nonuniform_matches_paper(self):
        # the IR-ORAM allocation at paper geometry: PL=43
        z = [4] * 25
        for level in range(10, 17):
            z[level] = 2
        for level in range(17, 20):
            z[level] = 3
        config = ORAMConfig(
            levels=25,
            user_blocks=1 << 20,
            z_per_level=tuple(z),
            top_cached_levels=10,
        )
        assert config.blocks_per_path() == 43

    def test_zero_z_levels_excluded_from_path(self):
        z = (0, 0, 4, 4, 4)
        config = ORAMConfig(levels=5, user_blocks=16, z_per_level=z)
        assert config.blocks_per_path() == 12

    def test_with_z_vector_returns_new_config(self):
        config = ORAMConfig.uniform(levels=6, user_blocks=64)
        other = config.with_z_vector([4, 4, 4, 2, 4, 4])
        assert other.z_per_level[3] == 2
        assert config.z_per_level[3] == 4

    def test_space_reduction_vs_uniform(self):
        config = ORAMConfig.uniform(levels=6, user_blocks=64)
        assert config.space_reduction_vs_uniform() == pytest.approx(0.0)
        shrunk = config.with_z_vector([4, 4, 4, 4, 4, 2])
        expected = (2 << 5) / (4 * 63)
        assert shrunk.space_reduction_vs_uniform() == pytest.approx(expected)

    def test_utilization_target_near_half_for_scaled(self):
        config = SystemConfig.scaled().oram
        assert 0.4 < config.utilization_target() <= 0.55


class TestDRAMConfig:
    def test_row_blocks(self):
        assert DRAMConfig(row_bytes=2048).row_blocks == 32

    def test_bad_channels(self):
        with pytest.raises(ConfigError):
            DRAMConfig(channels=0)

    def test_bad_timing(self):
        with pytest.raises(ConfigError):
            DRAMConfig(t_cas=0)


class TestCacheConfig:
    def test_capacity(self):
        config = CacheConfig(sets=4096, ways=8)
        assert config.capacity_bytes == 2 * 1024 * 1024
        assert config.lines == 32768

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=12, ways=4)

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=8, ways=0)


class TestCPUConfig:
    def test_defaults_match_table1(self):
        config = CPUConfig()
        assert config.issue_width == 4
        assert config.rob_size == 128

    def test_bad_width(self):
        with pytest.raises(ConfigError):
            CPUConfig(issue_width=0)

    def test_bad_write_buffer(self):
        with pytest.raises(ConfigError):
            CPUConfig(write_buffer=0)


class TestSystemPresets:
    def test_paper_preset_matches_table1(self):
        config = SystemConfig.paper()
        assert config.oram.levels == 25
        assert config.oram.user_blocks == 1 << 26
        assert config.oram.top_cached_levels == 10
        assert config.llc.capacity_bytes == 2 * 1024 * 1024
        assert config.oram.blocks_per_path() == 60

    def test_scaled_preset_proportions(self):
        config = SystemConfig.scaled()
        oram = config.oram
        # cached fraction ~ 10/25
        assert oram.top_cached_levels == round(oram.levels * 10 / 25)
        # ~50% utilization provisioning
        assert 0.4 < oram.utilization_target() <= 0.55

    def test_scaled_custom_levels(self):
        config = SystemConfig.scaled(levels=13)
        assert config.oram.levels == 13
        assert config.oram.total_blocks() <= config.oram.tree_slots()

    def test_tiny_preset_valid(self):
        config = SystemConfig.tiny()
        assert config.oram.levels == 9
        assert config.oram.total_blocks() <= config.oram.tree_slots()

    def test_with_oram_replaces_only_oram(self):
        config = SystemConfig.tiny()
        other = config.with_oram(config.oram.with_z_vector(
            list(config.oram.z_per_level)))
        assert other.llc is config.llc

    def test_scaled_user_blocks_validation(self):
        with pytest.raises(ConfigError):
            scaled_user_blocks(1000, 1.5)

    def test_scaled_user_blocks_multiple_of_fanout(self):
        assert scaled_user_blocks(10000, 0.5) % 16 == 0
