"""Tests for the experiment regenerators (tiny settings for speed)."""

import pytest

from repro.config import SystemConfig
from repro.experiments import common
from repro.experiments import (
    fig02_path_types,
    fig03_utilization,
    fig04_utilization_per_bench,
    fig05_migration,
    fig06_treetop_reuse,
    fig07_alloc_example,
    fig10_performance,
    fig11_llcd,
    fig12_alloc_configs,
    fig13_alloc_utilization,
    fig14_posmap,
    fig15_dwb_distribution,
    fig16_scalability,
    table1_config,
    table2_benchmarks,
)
from repro.experiments.common import ExperimentResult

TINY = SystemConfig.tiny()
RECORDS = 300
WORKLOADS = ["gcc", "lbm"]


@pytest.fixture(autouse=True)
def _fresh_cache():
    common.clear_cache()
    yield
    common.clear_cache()


def check(result: ExperimentResult, min_rows=1):
    assert result.experiment_id
    assert result.rows and len(result.rows) >= min_rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = result.to_text()
    assert result.experiment_id in text
    return result


class TestTables:
    def test_table1(self):
        result = check(table1_config.run(), min_rows=10)
        params = result.column("parameter")
        assert "ORAM tree levels" in params

    def test_table2(self):
        result = check(table2_benchmarks.run(TINY, records=400), min_rows=13)
        assert result.headers[1] == "benchmark"


class TestFigures:
    def test_fig02(self):
        result = check(
            fig02_path_types.run(TINY, RECORDS, WORKLOADS), min_rows=3
        )
        for row in result.rows:
            shares = row[1:]
            assert sum(shares) == pytest.approx(1.0, abs=1e-6)

    def test_fig03(self):
        result = check(fig03_utilization.run(TINY, 300, snapshots=3))
        for row in result.rows:
            for cell in row[1:]:
                assert 0.0 <= cell <= 1.0

    def test_fig04(self):
        result = check(
            fig04_utilization_per_bench.run(TINY, 300, ["gcc", "random"]),
            min_rows=2,
        )

    def test_fig05(self):
        result = check(fig05_migration.run(TINY, 400), min_rows=TINY.oram.levels)
        pre = sum(row[1] for row in result.rows)
        fetched = sum(row[2] for row in result.rows)
        assert pre == pytest.approx(1.0, abs=0.01)
        assert fetched == pytest.approx(1.0, abs=0.01)

    def test_fig06_treetop_reuse_shape(self):
        result = check(fig06_treetop_reuse.run(TINY, 1200))
        shares = dict(zip(result.column("location"),
                          result.column("fraction of requests")))
        top_share = sum(
            shares.get(f"L{level}", 0.0)
            for level in range(TINY.oram.top_cached_levels)
        )
        # the tree study must show meaningful tree-top reuse
        assert top_share > 0.05

    def test_fig07_exact_paper_numbers(self):
        result = check(fig07_alloc_example.run(), min_rows=6)
        pls = dict(zip(result.column("allocation"), result.column("PL")))
        assert pls["Path ORAM (no tree-top cache)"] == 100
        assert pls["Path ORAM + 10-level top cache"] == 60
        assert pls["IR-ORAM"] == 43
        assert pls["IR-Alloc4"] == 36

    def test_fig10(self):
        result = check(
            fig10_performance.run(
                TINY, RECORDS, WORKLOADS, schemes=["Baseline", "IR-Alloc"]
            ),
            min_rows=3,
        )
        baseline_col = result.column("Baseline")
        assert all(value == pytest.approx(1.0) for value in baseline_col[:-1])

    def test_fig11(self):
        result = check(fig11_llcd.run(TINY, RECORDS, WORKLOADS), min_rows=3)
        assert result.rows[-1][0] == "geomean"

    def test_fig12(self):
        result = check(fig12_alloc_configs.run(TINY, RECORDS, ["gcc"]))
        assert "IR-Alloc4 (PL=36)" in " ".join(result.headers)

    def test_fig13(self):
        result = check(fig13_alloc_utilization.run(TINY, 300, snapshots=2))
        assert result.experiment_id == "Fig. 13"

    def test_fig14(self):
        result = check(fig14_posmap.run(TINY, RECORDS, WORKLOADS), min_rows=3)
        for row in result.rows[:-1]:
            assert row[3] <= 1.05  # IR-Stash never meaningfully worse

    def test_fig15(self):
        result = check(fig15_dwb_distribution.run(TINY, RECORDS, WORKLOADS))
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0

    def test_fig16(self):
        result = check(
            fig16_scalability.run(levels_sweep=(9, 10), records=250,
                                  seeds=(1, 2)),
            min_rows=2,
        )
        for row in result.rows:
            assert row[2] > 0.8  # IR-Alloc never slows random traces much


class TestHarness:
    def test_cached_run_reuses(self):
        first = common.cached_run("Baseline", "gcc", TINY, 200, seed=1)
        second = common.cached_run("Baseline", "gcc", TINY, 200, seed=1)
        assert first is second

    def test_geometric_mean(self):
        assert common.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert common.geometric_mean([]) == 0.0

    def test_row_map(self):
        result = ExperimentResult("x", "t", ["a", "b"], [["k", 1]])
        assert result.row_map()["k"] == ["k", 1]
