"""Directed coverage of the pure-Python fallback paths.

CI runs the whole tier-1 suite twice — once with the C kernels, once with
``REPRO_FASTPATH=0`` — so every fallback is exercised end to end.  These
tests additionally pin each fallback against its native twin *within one
process* (skipped where the kernels are unavailable, i.e. on the
``REPRO_FASTPATH=0`` leg itself, where the fallbacks are the only
implementation and the whole suite covers them).
"""

import random

import pytest

from repro.config import DRAMConfig, SystemConfig
from repro.mem.dram import DRAMModel
from repro.oram.controller import PathORAMController
from repro.perf import native


def _random_triples(rng, count, config):
    triples = []
    n_banks = config.channels * config.banks_per_channel
    for _ in range(count):
        bank = rng.randrange(n_banks)
        triples += [bank, bank // config.banks_per_channel,
                    rng.randrange(64)]
    return triples


class TestServicePyOracle:
    @pytest.mark.skipif(native.fastpath is None,
                        reason="native kernels unavailable")
    def test_service_py_matches_native_kernel(self):
        config = DRAMConfig()
        rng = random.Random(42)
        with_native = DRAMModel(config)
        pure = DRAMModel(config)
        finish_native = finish_pure = 0
        for _ in range(20):
            triples = _random_triples(rng, rng.randrange(1, 12), config)
            finish_native = with_native.service_decomposed(
                triples, False, finish_native
            )
            now_dram = -(-finish_pure // config.cpu_cycles_per_dram_cycle)
            finish, hits, conflicts = pure._service_py(triples, now_dram)
            finish_pure = finish * config.cpu_cycles_per_dram_cycle
            assert finish_native == finish_pure
        assert with_native.stats.get("dram.row_hits") > 0
        assert with_native.bank_open_row == pure.bank_open_row
        assert with_native.bank_ready == pure.bank_ready

    def test_service_py_runs_without_native(self, monkeypatch):
        import repro.mem.dram as dram_mod

        monkeypatch.setattr(dram_mod, "_native", None)
        dram = DRAMModel(DRAMConfig())
        finish = dram.service_addresses([0, 1, 2, 3], False, 0)
        assert finish > 0
        assert dram.stats.get("dram.row_hits") == 3


class TestControllerFallbacks:
    def _dummy_loop(self, controller, paths=40):
        now = 0
        for _ in range(paths):
            now = controller.dummy_path(now).finish_write
        return now, dict(controller.stats.counters)

    @pytest.mark.skipif(native.fastpath is None,
                        reason="native kernels unavailable")
    def test_non_native_stash_add_identical(self):
        config = SystemConfig.tiny()
        fast = PathORAMController(config, rng=random.Random(9))
        slow = PathORAMController(config, rng=random.Random(9))
        slow._native_bulk = None
        slow._native = None
        fast_out = self._dummy_loop(fast)
        slow_out = self._dummy_loop(slow)
        assert fast_out == slow_out

    @pytest.mark.skipif(native.fastpath is None,
                        reason="native kernels unavailable")
    def test_python_triples_branch_identical(self, monkeypatch):
        import repro.oram.controller as controller_mod

        config = SystemConfig.tiny()
        fast = PathORAMController(config, rng=random.Random(5))
        native_triples = {
            leaf: fast._path_dram_triples(leaf) for leaf in range(8)
        }
        monkeypatch.setattr(controller_mod, "_fastpath", None)
        slow = PathORAMController(config, rng=random.Random(5))
        for leaf, expected in native_triples.items():
            triples, blocks = slow._path_dram_triples(leaf)
            assert list(triples) == list(expected[0])
            assert blocks == expected[1]

    def test_reference_write_phase_runs(self, monkeypatch):
        # _write_path_reference is the retained oracle; make sure it still
        # drives a full dummy-path loop on its own.
        monkeypatch.setattr(
            PathORAMController,
            "_write_path",
            PathORAMController._write_path_reference,
        )
        controller = PathORAMController(
            SystemConfig.tiny(), rng=random.Random(2)
        )
        now, counters = self._dummy_loop(controller, paths=20)
        assert now > 0
        assert counters["paths.total"] == 20
