"""Additional coverage: errors, describe strings, small helpers, edge cases."""

import random

import pytest

from repro.config import DRAMConfig, SystemConfig
from repro.core.ir_stash import SStash
from repro.core.schemes import SCHEMES, build_scheme
from repro.errors import (
    ConfigError,
    ProtocolError,
    ReproError,
    StashOverflowError,
    TraceError,
)
from repro.mem.dram import DRAMModel, batch_from_addresses
from repro.mem.layout import TreeLayout
from repro.oram.treetop import TreeTopCache
from repro.oram.types import PathAccessRecord, PathType

from tests.conftest import make_oram


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (ConfigError, ProtocolError, StashOverflowError, TraceError):
            assert issubclass(exc, ReproError)

    def test_stash_overflow_is_protocol_error(self):
        assert issubclass(StashOverflowError, ProtocolError)

    def test_integrity_error_is_repro_error(self):
        from repro.oram.integrity import IntegrityError

        assert issubclass(IntegrityError, ReproError)


class TestDescribeStrings:
    def test_treetop_describe(self):
        top = TreeTopCache(make_oram(top=3))
        text = top.describe()
        assert "top 3 levels" in text
        assert "28 entries" in text

    def test_sstash_describe(self):
        sstash = SStash(make_oram(top=3))
        text = sstash.describe()
        assert "S-Stash" in text
        assert "TT table" in text


class TestSchemesMetadata:
    def test_descriptions_nonempty(self):
        for scheme in SCHEMES.values():
            assert scheme.description
            assert scheme.name

    def test_fig10_schemes_all_registered(self):
        from repro.experiments.fig10_performance import SCHEME_ORDER

        for name in SCHEME_ORDER:
            assert name in SCHEMES


class TestLayoutEdgeCases:
    def test_no_memory_levels_rejected(self):
        oram = make_oram(levels=4, top=3)
        # top 3 of 4 leaves one memory level: fine
        TreeLayout(oram, DRAMConfig())
        with pytest.raises(ConfigError):
            # z=0 on the only memory level -> still constructible?  The
            # layout requires at least one memory level; emptying it via
            # top_cached==levels is rejected at config level instead.
            make_oram(levels=4, top=4)

    def test_bucket_addresses_respect_z(self):
        oram = make_oram(levels=6, top=2).with_z_vector((4, 4, 1, 2, 3, 4))
        layout = TreeLayout(oram, DRAMConfig())
        assert len(layout.bucket_addresses(2, 0)) == 1
        assert len(layout.bucket_addresses(3, 0)) == 2
        assert len(layout.bucket_addresses(4, 0)) == 3


class TestDRAMHelpers:
    def test_batch_from_addresses(self):
        batch = batch_from_addresses([1, 2], True)
        assert all(access.is_write for access in batch)
        assert [access.phys_block for access in batch] == [1, 2]

    def test_access_latency_single(self):
        dram = DRAMModel(DRAMConfig())
        from repro.mem.request import MemAccess

        first = dram.access_latency(MemAccess(0), 0)
        assert first > 0


class TestPathAccessRecord:
    def test_defaults(self):
        record = PathAccessRecord(
            issue_cycle=5, leaf=3, path_type=PathType.DATA
        )
        assert record.read_addresses == []
        assert record.write_addresses == []


class TestEvictionStormYield:
    def test_queued_request_progresses_during_storm(self):
        """Even with the stash pinned above threshold, a queued demand
        request is eventually serviced (anti-starvation yield)."""
        from repro.oram.controller import MAX_CONSECUTIVE_EVICTIONS
        from repro.oram.types import Request, RequestKind

        config = SystemConfig.tiny()
        components = build_scheme("Baseline", config)
        controller = components.controller

        # Pin the stash above threshold artificially by monkeypatching the
        # threshold check input: move blocks from the tree into the stash.
        from repro.oram.tree import EMPTY

        tree = controller.tree
        moved = 0
        for level in range(tree.levels - 1, -1, -1):
            for position in range(1 << level):
                slots = tree.bucket(level, position)
                for i, block in enumerate(slots):
                    if block != EMPTY:
                        slots[i] = EMPTY
                        tree.level_used[level] -= 1
                        controller.stash.add(
                            block, controller.posmap.leaf_of(block)
                        )
                        moved += 1
                    if moved > controller.oram.eviction_threshold + 220:
                        break
                if moved > controller.oram.eviction_threshold + 220:
                    break
            if moved > controller.oram.eviction_threshold + 220:
                break

        request = Request(block=0, kind=RequestKind.READ, arrival=0)
        controller.enqueue(request)
        now = 0
        for _ in range(3 * MAX_CONSECUTIVE_EVICTIONS):
            result = controller.step(now, allow_dummy=False)
            if result is None or request.completion is not None:
                break
            now = max(now + 1, result.finish_write)
        assert request.completion is not None


class TestSeedIsolation:
    def test_controller_rngs_do_not_alias(self):
        """Two builds with the same seed produce identical trees."""
        a = build_scheme("Baseline", SystemConfig.tiny()).controller
        b = build_scheme("Baseline", SystemConfig.tiny()).controller
        assert a.posmap._leaf_of == b.posmap._leaf_of
        assert a.tree.level_used == b.tree.level_used
