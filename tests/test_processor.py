"""Unit tests for the trace-driven processor model."""

import pytest

from repro.config import CPUConfig
from repro.cpu.processor import MemoryOp, Processor
from repro.traces.trace import Trace


def make_trace(records):
    return Trace("t", records)


class Recorder:
    """Scriptable memory hierarchy: decides hit/miss per op."""

    def __init__(self, miss_blocks=()):
        self.ops = []
        self.miss_blocks = set(miss_blocks)
        self.next_token = 0
        self.tokens = {}

    def __call__(self, op: MemoryOp):
        self.ops.append(op)
        if op.block in self.miss_blocks:
            token = self.next_token
            self.next_token += 1
            self.tokens[token] = op
            return token
        return None


class TestExecution:
    def test_all_hits_runs_to_completion(self):
        trace = make_trace([(40, i, False) for i in range(10)])
        cpu = Processor(trace, CPUConfig())
        hierarchy = Recorder()
        cpu.advance_to(10**9, hierarchy)
        assert cpu.done
        assert len(hierarchy.ops) == 10
        assert cpu.finish_time == cpu.cpu_time

    def test_gap_to_cycles_uses_issue_width(self):
        trace = make_trace([(400, 1, False)])
        cpu = Processor(trace, CPUConfig(issue_width=4))
        cpu.advance_to(10**9, Recorder())
        assert cpu.cpu_time == 100

    def test_advance_stops_at_now(self):
        trace = make_trace([(400, i, False) for i in range(10)])
        cpu = Processor(trace, CPUConfig())
        cpu.advance_to(150, Recorder())
        # only ~2 records fit in 150 cycles (+1 overshoot record)
        assert 1 <= cpu._index <= 3

    def test_read_miss_blocks_at_rob_reach(self):
        trace = make_trace([(40, 0, False)] + [(40, i + 1, False) for i in range(20)])
        cpu = Processor(trace, CPUConfig(rob_size=128, issue_width=4))
        hierarchy = Recorder(miss_blocks={0})
        cpu.advance_to(10**9, hierarchy)
        assert not cpu.done
        # the core ran at most rob_reach cycles past the miss
        assert cpu.cpu_time <= 10 + 32 + 40

    def test_completion_unblocks_and_charges_stall(self):
        trace = make_trace([(40, 0, False)] + [(400, i + 1, False) for i in range(5)])
        cpu = Processor(trace, CPUConfig())
        hierarchy = Recorder(miss_blocks={0})
        cpu.advance_to(10**9, hierarchy)
        token = 0
        cpu.complete(token, 5000)
        cpu.advance_to(10**9, hierarchy)
        assert cpu.done
        assert cpu.cpu_time >= 5000
        assert cpu.stats.get("cpu.stall_cycles") > 0

    def test_mlp_limit_blocks(self):
        config = CPUConfig(max_outstanding_reads=2, rob_size=100000)
        trace = make_trace([(4, i, False) for i in range(10)])
        cpu = Processor(trace, config)
        hierarchy = Recorder(miss_blocks=set(range(10)))
        cpu.advance_to(10**9, hierarchy)
        assert len(hierarchy.ops) == 2  # third read blocked

    def test_write_buffer_blocks(self):
        config = CPUConfig(write_buffer=3)
        trace = make_trace([(4, i, True) for i in range(10)])
        cpu = Processor(trace, config)
        hierarchy = Recorder(miss_blocks=set(range(10)))
        cpu.advance_to(10**9, hierarchy)
        assert len(hierarchy.ops) == 3

    def test_writes_do_not_block_when_hitting(self):
        trace = make_trace([(4, i, True) for i in range(10)])
        cpu = Processor(trace, CPUConfig(write_buffer=2))
        cpu.advance_to(10**9, Recorder())
        assert cpu.done

    def test_done_requires_drained_outstanding(self):
        trace = make_trace([(4, 0, False)])
        cpu = Processor(trace, CPUConfig())
        hierarchy = Recorder(miss_blocks={0})
        cpu.advance_to(10**9, hierarchy)
        assert cpu.trace_exhausted()
        assert not cpu.done
        cpu.complete(0, 100)
        cpu.advance_to(10**9, hierarchy)
        assert cpu.done

    def test_retired_instructions(self):
        trace = make_trace([(100, 1, False), (50, 2, True)])
        cpu = Processor(trace, CPUConfig())
        cpu.advance_to(10**9, Recorder())
        assert cpu.retired_instructions == 150


class TestSchedulingHints:
    def test_next_request_time_projection(self):
        trace = make_trace([(400, 1, False)])
        cpu = Processor(trace, CPUConfig())
        assert cpu.next_request_time() == 100

    def test_next_request_time_none_when_blocked(self):
        trace = make_trace([(4, 0, False), (4, 1, False)])
        cpu = Processor(trace, CPUConfig(max_outstanding_reads=1))
        hierarchy = Recorder(miss_blocks={0, 1})
        cpu.advance_to(10**9, hierarchy)
        assert cpu.next_request_time() is None

    def test_next_request_time_none_when_done(self):
        trace = make_trace([(4, 0, False)])
        cpu = Processor(trace, CPUConfig())
        cpu.advance_to(10**9, Recorder())
        assert cpu.next_request_time() is None
