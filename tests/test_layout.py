"""Unit tests for the subtree-aware physical layout."""

import pytest

from repro.config import DRAMConfig, ORAMConfig
from repro.errors import ConfigError
from repro.mem.layout import TreeLayout, path_positions

from tests.conftest import make_oram


class TestSubtreeSelection:
    def test_k_fits_row(self):
        layout = TreeLayout(make_oram(), DRAMConfig())
        k = layout.subtree_levels
        # a k-level subtree of worst-case buckets must fit one row
        assert ((1 << k) - 1) * 4 <= DRAMConfig().row_blocks
        assert ((1 << (k + 1)) - 1) * 4 > DRAMConfig().row_blocks

    def test_wider_rows_pack_deeper_subtrees(self):
        narrow = TreeLayout(make_oram(), DRAMConfig(row_bytes=2048))
        wide = TreeLayout(make_oram(), DRAMConfig(row_bytes=8192))
        assert wide.subtree_levels > narrow.subtree_levels


class TestAddressing:
    def test_addresses_unique_across_tree(self):
        oram = make_oram(levels=8, top=2)
        layout = TreeLayout(oram, DRAMConfig())
        seen = set()
        for level in range(2, 8):
            for position in range(1 << level):
                for addr in layout.bucket_addresses(level, position):
                    assert addr not in seen
                    seen.add(addr)
        assert len(seen) == sum(4 << level for level in range(2, 8))

    def test_cached_level_rejected(self):
        layout = TreeLayout(make_oram(top=3), DRAMConfig())
        with pytest.raises(ConfigError):
            layout.slot_address(1, 0, 0)

    def test_slot_out_of_range_rejected(self):
        layout = TreeLayout(make_oram(top=3), DRAMConfig())
        with pytest.raises(ConfigError):
            layout.slot_address(4, 0, 4)

    def test_zero_z_levels_skipped_in_path(self):
        oram = make_oram(levels=8, top=2)
        oram = oram.with_z_vector((4, 4, 0, 4, 4, 4, 4, 4))
        layout = TreeLayout(oram, DRAMConfig())
        assert len(layout.path_addresses(0)) == 5 * 4

    def test_path_addresses_length(self):
        oram = make_oram(levels=9, top=3)
        layout = TreeLayout(oram, DRAMConfig())
        assert len(layout.path_addresses(0)) == oram.blocks_per_path()

    def test_path_addresses_cached(self):
        layout = TreeLayout(make_oram(), DRAMConfig())
        first = layout.path_addresses(7)
        second = layout.path_addresses(7)
        assert first is second

    def test_subtree_locality(self):
        """A path touches at most ceil(depth/k) + small padding rows."""
        oram = make_oram(levels=9, top=3)
        dram = DRAMConfig()
        layout = TreeLayout(oram, dram)
        depth = 9 - 3
        max_rows = -(-depth // layout.subtree_levels) + 1
        for leaf in (0, 5, (1 << 8) - 1):
            rows = {addr // dram.row_blocks for addr in layout.path_addresses(leaf)}
            assert len(rows) <= max_rows

    def test_base_row_offsets_addresses(self):
        oram = make_oram(levels=8, top=2)
        dram = DRAMConfig()
        base = TreeLayout(oram, dram)
        shifted = TreeLayout(oram, dram, base_row=base.end_row())
        overlap = set(base.path_addresses(3)) & set(shifted.path_addresses(3))
        assert not overlap

    def test_capacity_covers_memory_slots(self):
        oram = make_oram(levels=9, top=3)
        layout = TreeLayout(oram, DRAMConfig())
        assert layout.capacity_blocks() >= oram.memory_slots()


class TestPathPositions:
    def test_root_to_leaf(self):
        positions = path_positions(4, leaf=5)
        assert positions == [(0, 0), (1, 1), (2, 2), (3, 5)]

    def test_leftmost_path(self):
        positions = path_positions(3, leaf=0)
        assert positions == [(0, 0), (1, 0), (2, 0)]
