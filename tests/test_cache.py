"""Unit tests for the set-associative cache and the LLC."""

import pytest

from repro.cache.cache import SetAssocCache
from repro.cache.llc import LastLevelCache
from repro.config import CacheConfig


@pytest.fixture
def cache():
    return SetAssocCache(CacheConfig(sets=4, ways=2))


@pytest.fixture
def llc():
    return LastLevelCache(CacheConfig(sets=4, ways=2))


def same_set_blocks(cache, count, set_index=0):
    """Blocks that all map to one set."""
    sets = cache.config.sets
    return [set_index + i * sets for i in range(count)]


class TestBasicOperations:
    def test_miss_then_hit(self, cache):
        hit, _ = cache.access(10, False)
        assert not hit
        hit, _ = cache.access(10, False)
        assert hit

    def test_write_sets_dirty(self, cache):
        cache.access(10, True)
        assert cache.is_dirty(10)

    def test_read_does_not_clear_dirty(self, cache):
        cache.access(10, True)
        cache.access(10, False)
        assert cache.is_dirty(10)

    def test_probe_does_not_touch_lru(self, cache):
        a, b, c = same_set_blocks(cache, 3)
        cache.access(a, False)
        cache.access(b, False)
        cache.probe(a)  # must NOT refresh a
        _, evicted = cache.access(c, False)
        assert evicted.block == a

    def test_lru_eviction_order(self, cache):
        a, b, c = same_set_blocks(cache, 3)
        cache.access(a, False)
        cache.access(b, False)
        cache.access(a, False)  # refresh a; b is now LRU
        _, evicted = cache.access(c, False)
        assert evicted.block == b

    def test_evicted_line_carries_dirty(self, cache):
        a, b, c = same_set_blocks(cache, 3)
        cache.access(a, True)
        cache.access(b, False)
        _, evicted = cache.access(c, False)
        assert evicted.block == a and evicted.dirty

    def test_insert_no_hit_count(self, cache):
        cache.insert(5, dirty=True)
        assert cache.stats.get("cache.hits") == 0
        assert cache.probe(5)
        assert cache.is_dirty(5)

    def test_insert_existing_merges_dirty(self, cache):
        cache.insert(5, dirty=False)
        cache.insert(5, dirty=True)
        assert cache.is_dirty(5)

    def test_invalidate(self, cache):
        cache.access(5, True)
        line = cache.invalidate(5)
        assert line.dirty
        assert not cache.probe(5)
        assert cache.invalidate(5) is None

    def test_mark_clean_preserves_lru_position(self, cache):
        a, b, c = same_set_blocks(cache, 3)
        cache.access(a, True)
        cache.access(b, False)
        cache.mark_clean(a)
        # a is still the LRU line despite mark_clean
        assert cache.is_lru(a)
        _, evicted = cache.access(c, False)
        assert evicted.block == a and not evicted.dirty

    def test_occupancy_and_dirty_count(self, cache):
        cache.access(1, True)
        cache.access(2, False)
        assert cache.occupancy() == 2
        assert cache.dirty_count() == 1

    def test_contents_snapshot(self, cache):
        cache.access(1, True)
        cache.access(2, False)
        assert cache.contents() == {1: True, 2: False}


class TestLRUInspection:
    def test_lru_line_empty_set(self, cache):
        assert cache.lru_line(0) is None

    def test_lru_line_reports_oldest(self, cache):
        a, b = same_set_blocks(cache, 2)
        cache.access(a, True)
        cache.access(b, False)
        assert cache.lru_line(cache.set_index(a)) == (a, True)

    def test_is_lru(self, cache):
        a, b = same_set_blocks(cache, 2)
        cache.access(a, False)
        cache.access(b, False)
        assert cache.is_lru(a)
        assert not cache.is_lru(b)
        assert not cache.is_lru(999)


class TestDirtyLRUScan:
    def test_finds_dirty_lru(self, llc):
        llc.access(0, True)
        found = llc.find_dirty_lru(now=0)
        assert found == (0, 0)

    def test_skips_clean_lru(self, llc):
        a, b = same_set_blocks(llc, 2, set_index=1)
        llc.access(a, False)   # clean LRU in set 1
        llc.access(b, True)    # dirty but MRU
        found = llc.find_dirty_lru(now=0)
        assert found is None

    def test_round_robin_advances(self, llc):
        llc.access(0, True)  # set 0
        llc.access(1, True)  # set 1
        first = llc.find_dirty_lru(now=0)
        second = llc.find_dirty_lru(now=0)
        assert first != second
        assert {first[0], second[0]} == {0, 1}

    def test_pause_after_fruitless_sweep(self, llc):
        assert llc.find_dirty_lru(now=0) is None
        # paused: even if a dirty line appears, search stays quiet
        llc.access(0, True)
        assert llc.find_dirty_lru(now=1) is None
        assert llc.find_dirty_lru(now=llc.SEARCH_PAUSE + 1) is not None

    def test_max_sets_budget(self, llc):
        llc.access(3, True)  # dirty line only in set 3
        # budget of 1 set starting at cursor 0 must fail without pausing
        # the full sweep
        assert llc.find_dirty_lru(now=0, max_sets=1) is None
