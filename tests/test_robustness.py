"""Robustness tests: unusual but legal inputs must not break the system."""

import pytest

from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.errors import TraceError
from repro.sim.runner import run_trace
from repro.sim.simulator import Simulator
from repro.traces.trace import Trace


@pytest.fixture
def config():
    return SystemConfig.tiny()


class TestDegenerateTraces:
    def test_single_record_trace(self, config):
        trace = Trace("one", [(10, 0, False)])
        result = run_trace("Baseline", trace, config)
        assert result.cycles > 0

    def test_single_write_trace(self, config):
        trace = Trace("w", [(10, 0, True)])
        result = run_trace("Baseline", trace, config)
        assert result.counters["requests.read"] == 1  # write-allocate fetch

    def test_same_block_hammer(self, config):
        trace = Trace("hammer", [(5, 7, i % 2 == 0) for i in range(300)])
        result = run_trace("Baseline", trace, config)
        # one fetch; everything after hits the LLC
        assert result.counters["hierarchy.demand_misses"] == 1

    def test_alternating_two_blocks(self, config):
        records = [(5, i % 2, False) for i in range(200)]
        result = run_trace("IR-ORAM", Trace("alt", records), config)
        assert result.counters["hierarchy.demand_misses"] == 2

    def test_zero_gap_burst(self, config):
        trace = Trace("burst", [(0, i, False) for i in range(64)])
        result = run_trace("Baseline", trace, config)
        assert result.cycles > 0

    def test_highest_user_block(self, config):
        top_block = config.oram.user_blocks - 1
        trace = Trace("edge", [(10, top_block, True), (10, 0, False)])
        result = run_trace("Baseline", trace, config)
        assert result.cycles > 0


class TestDegenerateConfigs:
    def test_no_tree_top_cache(self):
        config = SystemConfig.tiny(top_cached_levels=1)
        # top_cached_levels=0 would mean no on-chip top at all; our layout
        # requires >=1 memory level which this still satisfies
        trace = Trace("t", [(10, i, False) for i in range(30)])
        result = run_trace("Baseline", trace, config)
        assert result.cycles > 0

    def test_deep_top_cache(self):
        config = SystemConfig.tiny(top_cached_levels=6)
        trace = Trace("t", [(10, i, False) for i in range(30)])
        result = run_trace("IR-Stash", trace, config)
        assert result.cycles > 0

    def test_tiny_stash_relies_on_eviction(self):
        config = SystemConfig.tiny(stash_capacity=40, eviction_threshold=25)
        trace = Trace("t", [(8, i * 7 % 800, i % 3 == 0) for i in range(250)])
        result = run_trace("Baseline", trace, config)
        assert result.cycles > 0
        # small threshold must actually engage the eviction machinery
        assert result.background_evictions() >= 0

    def test_single_channel_dram(self):
        from dataclasses import replace

        from repro.config import DRAMConfig

        config = SystemConfig.tiny()
        narrow = replace(config, dram=DRAMConfig(channels=1))
        trace = Trace("t", [(10, i, False) for i in range(40)])
        fast = run_trace("Baseline", trace, config)
        slow = run_trace("Baseline", trace, narrow)
        assert slow.cycles > fast.cycles


class TestSimulatorGuards:
    def test_progress_guard_constant(self):
        assert Simulator.MAX_IDLE_ITERATIONS >= 1000

    def test_empty_trace_rejected_upstream(self):
        with pytest.raises(TraceError):
            from repro.traces.synthetic import random_trace
            import random

            random_trace(0, 10, random.Random(1))
