"""Tests for the extension experiments: timing ablation and Z-search."""

import pytest

from repro.config import SystemConfig
from repro.experiments import ablation_timing, zsearch
from repro.experiments import common
from repro.sim.runner import random_trace_evaluator


@pytest.fixture(autouse=True)
def _fresh_cache():
    common.clear_cache()
    yield
    common.clear_cache()


class TestAblation:
    def test_runs_with_and_without_protection(self):
        result = ablation_timing.run(
            SystemConfig.tiny(), records=300, workloads=["gcc", "lbm"]
        )
        assert len(result.rows) == 3
        assert len(result.headers) == 5
        geo = result.rows[-1]
        for value in geo[1:]:
            assert value > 0.5  # sane speedups in both modes


class TestZSearchEndToEnd:
    def test_real_evaluator_search(self):
        config = SystemConfig.scaled(levels=10)
        evaluate = random_trace_evaluator(config, records=500, seed=3)
        from repro.core.ir_alloc import find_z_allocation

        best = find_z_allocation(
            config.oram,
            evaluate,
            max_space_reduction=0.05,
            max_eviction_increase=0.20,
        )
        # the search must shrink some middle bucket while respecting the
        # space constraint and monotonicity
        assert best.blocks_per_path() <= config.oram.blocks_per_path()
        assert best.space_reduction_vs_uniform() <= 0.05
        memory = best.z_per_level[config.oram.top_cached_levels:]
        assert all(a <= b for a, b in zip(memory, memory[1:]))

    def test_zsearch_experiment_table(self):
        result = zsearch.run(
            SystemConfig.scaled(levels=9), records=300,
            max_space_reduction=0.06,
        )
        metrics = dict(
            (row[0], (row[1], row[2])) for row in result.rows
        )
        assert "blocks per path (PL)" in metrics
        uniform_pl, searched_pl = metrics["blocks per path (PL)"]
        assert searched_pl <= uniform_pl
