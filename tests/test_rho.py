"""Unit tests for the Rho (relaxed hierarchical ORAM) controller."""

import pytest

from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.oram.rho import RhoController, scaled_small_levels
from repro.oram.types import PathType, Request, RequestKind
from repro.sim.runner import make_workload
from repro.sim.simulator import Simulator


@pytest.fixture
def rho():
    return build_scheme("Rho", SystemConfig.tiny()).controller


def drive(controller, request, now=0, limit=200):
    controller.enqueue(request)
    slots = 0
    while request.completion is None and slots < limit:
        result = controller.step(now, allow_dummy=True)
        assert result is not None
        now = max(now + 1, result.finish_write)
        slots += 1
    return now


class TestSizing:
    def test_small_levels_scale_with_llc(self):
        assert scaled_small_levels(25, llc_lines=32768) in (17, 18, 19)
        assert scaled_small_levels(15, llc_lines=2048) <= 14

    def test_small_tree_never_taller_than_main(self):
        assert scaled_small_levels(5, llc_lines=1 << 20) == 4


class TestPattern:
    def test_pattern_alternates_main_and_small(self, rho):
        """With an empty queue, slots alternate dummy types 1:2."""
        types = []
        now = 0
        for _ in range(9):
            result = rho.step(now, allow_dummy=True)
            assert result.issued_path
            size = len(
                rho.small_layout.path_addresses(0)
            )
            types.append(result.path_type)
            now = max(now + 1, result.finish_write)
        smalls = rho.stats.get("rho.small_dummies")
        mains = rho.stats.get("paths.PTm") - smalls
        assert mains == 3
        assert smalls == 6

    def test_promotion_after_main_access(self, rho):
        request = Request(block=3, kind=RequestKind.READ, arrival=0)
        drive(rho, request)
        assert 3 in rho.small_map
        assert not rho.posmap.is_mapped(3)
        assert rho.stats.get("rho.promotions") >= 1

    def test_second_access_hits_small_structures(self, rho):
        first = Request(block=3, kind=RequestKind.READ, arrival=0)
        now = drive(rho, first)
        second = Request(block=3, kind=RequestKind.READ, arrival=now)
        drive(rho, second, now=now)
        hits = (
            rho.stats.get("rho.small_hits")
            + rho.stats.get("rho.small_stash_hits")
        )
        assert hits >= 1

    def test_small_budget_enforced(self):
        config = SystemConfig.tiny()
        controller = RhoController(config, small_levels=4)
        now = 0
        for block in range(controller.small_budget + 20):
            request = Request(block=block, kind=RequestKind.READ, arrival=now)
            now = drive(controller, request, now=now, limit=400)
        active = len(controller.small_map) - len(controller._evicting)
        assert active <= controller.small_budget
        assert controller.stats.get("rho.small_evictions") > 0

    def test_extraction_round_trip(self):
        config = SystemConfig.tiny()
        controller = RhoController(config, small_levels=3)
        now = 0
        blocks = list(range(controller.small_budget + 8))
        for block in blocks:
            request = Request(block=block, kind=RequestKind.READ, arrival=now)
            now = drive(controller, request, now=now, limit=400)
        # flush pending migration work
        for _ in range(300):
            if not controller.has_any_real_work():
                break
            result = controller.step(now, allow_dummy=True)
            if result is None:
                break
            now = max(now + 1, result.finish_write)
        reinserted = controller.stats.get("rho.main_reinserts")
        assert reinserted > 0
        # re-inserted blocks are mapped again in the main tree
        for block in blocks:
            in_small = block in controller.small_map
            pending = block in controller._pending_main_insert
            assert in_small or pending or controller.posmap.is_mapped(block)

    def test_full_run_all_paths_same_two_shapes(self):
        config = SystemConfig.tiny()
        components = build_scheme("Rho", config)
        sizes = set()
        components.controller.observer = lambda rec: sizes.add(
            len(rec.read_addresses)
        )
        trace = make_workload("random", config, 250, seed=4)
        Simulator(components, trace).run()
        # main-tree paths and small-tree paths: exactly two public shapes
        assert len(sizes) <= 2
