"""Tests for the ``repro.api`` facade and the legacy shims over it."""

import json
import warnings

import pytest

from repro import api
from repro.__main__ import main
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.sim.runner import make_workload, run_benchmark, run_trace

TINY = SystemConfig.tiny()


def fingerprint(result):
    return (result.cycles, result.path_counts, dict(result.counters))


class TestRunSpec:
    def test_frozen_and_hashable(self):
        spec = api.RunSpec(scheme="Baseline", workload="gcc")
        with pytest.raises(Exception):
            spec.scheme = "IR-ORAM"
        assert hash(spec) == hash(api.RunSpec(scheme="Baseline", workload="gcc"))

    def test_resolve_named_configs(self):
        assert api.RunSpec().resolve_config() == SystemConfig.scaled()
        assert (
            api.RunSpec(config_name="scaled", levels=11).resolve_config()
            == SystemConfig.scaled(levels=11)
        )
        assert api.RunSpec(config_name="paper").resolve_config() == (
            SystemConfig.paper()
        )
        assert api.RunSpec(config_name="tiny").resolve_config() == (
            SystemConfig.tiny()
        )

    def test_explicit_config_wins(self):
        spec = api.RunSpec(config=TINY, config_name="paper")
        assert spec.resolve_config() == TINY

    def test_unknown_config_name(self):
        with pytest.raises(ConfigError):
            api.RunSpec(config_name="warehouse").resolve_config()

    def test_with_obs(self):
        spec = api.RunSpec().with_obs(api.ObsOptions(ring_size=10))
        assert spec.obs.ring_size == 10
        assert api.RunSpec().obs.ring_size == 0


class TestObsOptions:
    def test_disabled_by_default(self):
        obs = api.ObsOptions()
        assert not obs.tracing and not obs.enabled

    def test_metrics_only_needs_no_tracer(self):
        obs = api.ObsOptions(metrics_out="m.json")
        assert obs.enabled and not obs.tracing

    def test_any_trace_option_enables_tracing(self):
        assert api.ObsOptions(trace_out="t.jsonl").tracing
        assert api.ObsOptions(ring_size=5).tracing
        assert api.ObsOptions(progress_every=10).tracing
        assert api.ObsOptions(callback=lambda event: None).tracing


class TestFacadeEquivalence:
    def test_run_matches_legacy_run_benchmark(self):
        out = api.run(api.RunSpec(
            scheme="Baseline", workload="gcc", records=300, seed=11,
            config=TINY,
        ))
        with pytest.warns(DeprecationWarning):
            legacy = run_benchmark(
                "Baseline", "gcc", TINY, records=300, seed=11
            )
        assert fingerprint(out.result) == fingerprint(legacy)

    def test_run_matches_legacy_run_trace(self):
        trace = make_workload("mix", TINY, 300, seed=5)
        out = api.run(api.RunSpec(
            scheme="IR-Alloc", workload=trace.name, seed=3,
            config=TINY, trace=trace,
        ))
        with pytest.warns(DeprecationWarning):
            legacy = run_trace("IR-Alloc", trace, TINY, seed=3)
        assert fingerprint(out.result) == fingerprint(legacy)

    def test_deterministic_for_fixed_seed(self):
        spec = api.RunSpec(
            scheme="IR-ORAM", workload="mix", records=250, seed=9, config=TINY
        )
        assert fingerprint(api.run(spec).result) == fingerprint(
            api.run(spec).result
        )

    def test_wall_time_recorded(self):
        out = api.run(api.RunSpec(records=150, config=TINY))
        assert out.wall_s > 0


class TestRunMany:
    def test_input_order_and_serial_equivalence(self):
        specs = [
            api.RunSpec(scheme=scheme, workload="gcc", records=200,
                        seed=7, config=TINY)
            for scheme in ("Baseline", "IR-Alloc", "IR-Stash")
        ]
        batch = api.run_many(specs, jobs=1)
        assert [out.spec.scheme for out in batch] == [
            "Baseline", "IR-Alloc", "IR-Stash"
        ]
        for spec, out in zip(specs, batch):
            assert fingerprint(out.result) == fingerprint(api.run(spec).result)

    def test_parallel_matches_serial(self):
        specs = [
            api.RunSpec(scheme="Baseline", workload="gcc", records=200,
                        seed=seed, config=TINY)
            for seed in (1, 2)
        ]
        serial = [fingerprint(out.result) for out in api.run_many(specs, jobs=1)]
        parallel = [
            fingerprint(out.result) for out in api.run_many(specs, jobs=2)
        ]
        assert serial == parallel


class TestShimsDeprecation:
    def test_run_benchmark_warns(self):
        with pytest.warns(DeprecationWarning, match="run_benchmark"):
            run_benchmark("Baseline", "gcc", TINY, records=100)

    def test_run_trace_warns(self):
        trace = make_workload("gcc", TINY, 100, seed=2)
        with pytest.warns(DeprecationWarning, match="run_trace"):
            run_trace("Baseline", trace, TINY)

    def test_make_workload_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_workload("gcc", TINY, 50)

    def test_facade_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.run(api.RunSpec(records=100, config=TINY))


class TestCLI:
    def test_run_with_obs_flags(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        code = main([
            "run", "Baseline", "gcc", "--records", "200", "--levels", "9",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
            "--progress-every", "50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles=" in out and "busy:" in out
        assert trace.exists() and metrics.exists()
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["sim.cycles"] > 0

    def test_inspect_command(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main([
            "run", "Baseline", "gcc", "--records", "200", "--levels", "9",
            "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "path.read" in out
        assert main(["inspect", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0

    def test_compare_with_jobs(self, capsys):
        code = main([
            "compare", "gcc", "--schemes", "Baseline", "IR-Alloc",
            "--records", "200", "--levels", "9", "--jobs", "2",
        ])
        assert code == 0
        assert "speedup=" in capsys.readouterr().out

    def test_config_flag(self, capsys):
        code = main([
            "run", "Baseline", "gcc", "--records", "150", "--levels", "9",
            "--config", "scaled",
        ])
        assert code == 0
        assert "cycles=" in capsys.readouterr().out
