"""Property-based tests (hypothesis) on core data structures and invariants."""

import random
from collections import OrderedDict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssocCache
from repro.config import CacheConfig, DRAMConfig, ORAMConfig
from repro.core.ir_stash import _md5_index
from repro.mem.dram import DRAMModel
from repro.mem.layout import TreeLayout
from repro.oram.stash import Stash
from repro.oram.tree import EMPTY, ORAMTree
from repro.oram.types import Namespace

from tests.conftest import make_oram

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestTreeProperties:
    @common_settings
    @given(
        leaf_a=st.integers(0, (1 << 8) - 1),
        leaf_b=st.integers(0, (1 << 8) - 1),
    )
    def test_deepest_common_level_is_prefix_length(self, leaf_a, leaf_b):
        tree = ORAMTree(make_oram(levels=9, top=3))
        depth = tree.deepest_common_level(leaf_a, leaf_b)
        # paths agree at every level up to depth and diverge right after
        for level in range(depth + 1):
            assert tree.path_position(leaf_a, level) == tree.path_position(
                leaf_b, level
            )
        if depth < 8:
            assert tree.path_position(leaf_a, depth + 1) != (
                tree.path_position(leaf_b, depth + 1)
            )

    @common_settings
    @given(data=st.data())
    def test_place_then_clear_conserves(self, data):
        tree = ORAMTree(make_oram(levels=7, top=2))
        placements = data.draw(
            st.lists(
                st.tuples(st.integers(0, 6), st.integers(0, 63)),
                min_size=1,
                max_size=40,
            )
        )
        placed = 0
        for i, (level, raw_position) in enumerate(placements):
            position = raw_position % (1 << level)
            if tree.place(level, position, 1000 + i):
                placed += 1
        assert tree.total_used() == placed
        for leaf in range(64):
            tree.read_and_clear(leaf)
        assert tree.total_used() == 0
        assert all(count == 0 for count in tree.level_used)

    @common_settings
    @given(leaf=st.integers(0, 63))
    def test_read_and_clear_only_touches_path(self, leaf):
        tree = ORAMTree(make_oram(levels=7, top=2))
        rng = random.Random(leaf)
        blocks = {}
        for i in range(30):
            level = rng.randrange(7)
            position = rng.randrange(1 << level)
            if tree.place(level, position, i):
                blocks[i] = (level, position)
        removed = dict(tree.read_and_clear(leaf))
        for block, level in removed.items():
            assert blocks[block][1] == tree.path_position(leaf, level)


class TestLayoutProperties:
    @common_settings
    @given(leaf=st.integers(0, (1 << 8) - 1))
    def test_path_addresses_unique_and_stable(self, leaf):
        layout = TreeLayout(make_oram(levels=9, top=3), DRAMConfig())
        addrs = layout.path_addresses(leaf)
        assert len(addrs) == len(set(addrs))
        assert addrs == layout.path_addresses(leaf)

    @common_settings
    @given(
        leaf_a=st.integers(0, (1 << 8) - 1),
        leaf_b=st.integers(0, (1 << 8) - 1),
    )
    def test_paths_share_exactly_common_prefix_slots(self, leaf_a, leaf_b):
        oram = make_oram(levels=9, top=3)
        layout = TreeLayout(oram, DRAMConfig())
        tree = ORAMTree(oram)
        shared = set(layout.path_addresses(leaf_a)) & set(
            layout.path_addresses(leaf_b)
        )
        depth = tree.deepest_common_level(leaf_a, leaf_b)
        shared_levels = max(0, depth - 3 + 1)  # memory levels only (>= top)
        assert len(shared) == shared_levels * 4


class TestCacheProperties:
    @common_settings
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 40), st.booleans()),
            min_size=1,
            max_size=120,
        )
    )
    def test_matches_reference_lru_model(self, ops):
        config = CacheConfig(sets=4, ways=2)
        cache = SetAssocCache(config)
        reference = [OrderedDict() for _ in range(4)]
        for block, is_write in ops:
            lines = reference[block % 4]
            if block in lines:
                lines.move_to_end(block)
                if is_write:
                    lines[block] = True
            else:
                if len(lines) >= 2:
                    lines.popitem(last=False)
                lines[block] = is_write
            cache.access(block, is_write)
        model = {}
        for lines in reference:
            model.update(lines)
        assert cache.contents() == model

    @common_settings
    @given(
        blocks=st.lists(st.integers(0, 1000), min_size=1, max_size=100)
    )
    def test_occupancy_never_exceeds_capacity(self, blocks):
        config = CacheConfig(sets=4, ways=2)
        cache = SetAssocCache(config)
        for block in blocks:
            cache.access(block, False)
        assert cache.occupancy() <= config.lines
        for index in range(config.sets):
            lru = cache.lru_line(index)
            if lru is not None:
                assert cache.is_lru(lru[0])


class TestStashProperties:
    @common_settings
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 255)),
            min_size=1,
            max_size=80,
        )
    )
    def test_add_remove_consistency(self, ops):
        stash = Stash(1000)
        model = {}
        for block, leaf in ops:
            if block in model:
                assert stash.remove(block) == model.pop(block)
            else:
                stash.add(block, leaf)
                model[block] = leaf
        assert len(stash) == len(model)
        for block, leaf in model.items():
            assert stash.leaf_of(block) == leaf


class TestNamespaceProperties:
    @common_settings
    @given(block=st.integers(0, 4095))
    def test_posmap_chain_terminates_at_posmap3(self, block):
        ns = Namespace(make_oram(levels=12, user_blocks=4096))
        hops = 0
        current = block
        while ns.parent_block(current) is not None:
            current = ns.parent_block(current)
            hops += 1
            assert hops <= 2
        from repro.oram.types import BlockKind

        assert ns.kind_of(current) in (BlockKind.POSMAP2,)
        index = ns.posmap3_index(current)
        assert 0 <= index < ns.config.posmap3_entries

    @common_settings
    @given(user=st.integers(0, 4095))
    def test_fanout_grouping(self, user):
        ns = Namespace(make_oram(levels=12, user_blocks=4096))
        pm1 = ns.posmap1_block(user)
        group = [u for u in range(4096) if ns.posmap1_block(u) == pm1]
        assert len(group) == 16
        assert user in group


class TestDRAMProperties:
    @common_settings
    @given(
        addresses=st.lists(st.integers(0, 4000), min_size=1, max_size=60),
        start=st.integers(0, 10_000),
    )
    def test_finish_after_start_and_monotone(self, addresses, start):
        dram = DRAMModel(DRAMConfig())
        finish = dram.service_addresses(addresses, False, start)
        assert finish >= start
        later = dram.service_addresses(addresses, False, finish)
        assert later >= finish

    @common_settings
    @given(addresses=st.lists(st.integers(0, 4000), min_size=1, max_size=60))
    def test_counters_track_batch_size(self, addresses):
        dram = DRAMModel(DRAMConfig())
        dram.service_addresses(addresses, False, 0)
        assert dram.stats.get("dram.accesses") == len(addresses)
        hits = dram.stats.get("dram.row_hits")
        conflicts = dram.stats.get("dram.row_conflicts")
        assert hits + conflicts <= len(addresses)


class TestMD5IndexProperties:
    @common_settings
    @given(block=st.integers(0, 2**40), sets=st.sampled_from([1, 8, 64, 1024]))
    def test_in_range_and_stable(self, block, sets):
        index = _md5_index(block, sets)
        assert 0 <= index < sets
        assert index == _md5_index(block, sets)

    def test_distributes_evenly(self):
        counts = [0] * 16
        for block in range(4096):
            counts[_md5_index(block, 16)] += 1
        assert max(counts) < 2 * min(counts)
