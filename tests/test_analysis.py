"""Tests for the analysis utilities: sweeps and report rendering."""

import pytest

from repro.analysis.report import render_markdown, write_report
from repro.analysis.sweep import KNOBS, SweepResult, sweep_parameter
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult


class TestSweep:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError):
            sweep_parameter("nope", [1, 2])

    def test_all_knobs_produce_valid_configs(self):
        config = SystemConfig.tiny()
        samples = {
            "issue_interval": 500,
            "top_cached_levels": 2,
            "plb_sets": 4,
            "stash_capacity": 80,
            "eviction_threshold": 60,
        }
        for name, transform in KNOBS.items():
            candidate = transform(config, samples[name])
            assert candidate.oram.total_blocks() <= candidate.oram.tree_slots()

    def test_issue_interval_sweep_monotone_dummy_cost(self):
        sweep = sweep_parameter(
            "issue_interval",
            [200, 800],
            scheme="Baseline",
            workload="gcc",
            config=SystemConfig.tiny(),
            records=500,
        )
        assert len(sweep.points) == 2
        assert sweep.speedups()[0] == pytest.approx(1.0)
        table = sweep.table()
        assert len(table) == 2
        assert all(len(row) == len(SweepResult.HEADERS) for row in table)

    def test_top_levels_sweep_reduces_traffic(self):
        sweep = sweep_parameter(
            "top_cached_levels",
            [1, 4],
            workload="random",
            config=SystemConfig.tiny(),
            records=400,
        )
        deep, shallow = sweep.points
        assert (
            shallow.result.memory_accesses() < deep.result.memory_accesses()
        )

    def test_best_returns_fastest(self):
        sweep = sweep_parameter(
            "plb_sets",
            [2, 16],
            workload="mcf",
            config=SystemConfig.tiny(),
            records=400,
        )
        assert sweep.best().cycles == min(p.cycles for p in sweep.points)


class TestReport:
    def _experiment(self):
        return ExperimentResult(
            experiment_id="Fig. X",
            title="demo",
            headers=["a", "b"],
            rows=[["k", 1.23456]],
            paper_claim="something",
            notes=["a note"],
        )

    def test_render_markdown_structure(self):
        text = render_markdown([self._experiment()], title="T")
        assert text.startswith("# T")
        assert "## Fig. X: demo" in text
        assert "| a | b |" in text
        assert "| k | 1.235 |" in text
        assert "> a note" in text

    def test_render_sweep(self):
        sweep = sweep_parameter(
            "issue_interval",
            [300],
            workload="gcc",
            config=SystemConfig.tiny(),
            records=300,
        )
        text = render_markdown([sweep])
        assert "## Sweep: issue_interval" in text

    def test_write_report(self, tmp_path):
        path = write_report([self._experiment()], tmp_path / "report.md")
        assert path.read_text().startswith("# Results")

    def test_render_rejects_garbage(self):
        with pytest.raises(TypeError):
            render_markdown([object()])
