"""Tests for the conformance subsystem (``repro.validate``).

Covers the three pillars: the online invariant auditor (catches every
injected corruption class, stays bit-identical to unaudited runs), the
lockstep differential oracle (serial and through the warm-pool engine),
and the golden corpus / fuzzer machinery.
"""

import os

import pytest

from repro import api
from repro.config import SystemConfig
from repro.core.schemes import SCHEMES, build_scheme
from repro.errors import AuditError
from repro.validate import (
    InvariantAuditor,
    attach_auditor,
    drive_lockstep,
    engine_equivalence,
    generate_ops,
    zoo_lockstep,
)
from repro.validate import fuzz as fuzz_mod
from repro.validate import golden

AUDIT_SCHEMES = ("Baseline", "IR-ORAM", "LLC-D", "Rho", "Ring")


def warmed_controller(scheme="Baseline", records=40, seed=5):
    """A controller with some real traffic already through it."""
    config = SystemConfig.tiny()
    components = build_scheme(scheme, config)
    ops = generate_ops(records, config.oram.user_blocks, seed,
                       idle_fraction=0.0)
    from repro.oram.types import Request, RequestKind

    controller = components.controller
    now = 0
    for _, block, is_write in ops:
        request = Request(block=block, kind=RequestKind.READ, arrival=now,
                          is_write=is_write)
        controller.enqueue(request)
        for _ in range(400):
            if request.completion is not None:
                break
            result = controller.step(now, allow_dummy=False)
            now = now + 1 if result is None else max(
                now + 1, result.finish_write
            )
    return controller


class TestAuditorCatchesCorruption:
    """Each corruption class from the fuzzer's fault catalog is caught."""

    @pytest.fixture
    def audited(self):
        controller = warmed_controller()
        return controller, InvariantAuditor(controller, every=1)

    def test_clean_machine_passes(self, audited):
        controller, auditor = audited
        report = auditor.audit_now()
        assert report.blocks_verified == controller.namespace.total_blocks

    @pytest.mark.parametrize("fault_name", sorted(fuzz_mod.FAULTS))
    def test_fault_detected(self, audited, fault_name):
        controller, auditor = audited
        auditor.audit_now()  # sane before the corruption
        fuzz_mod.FAULTS[fault_name](controller)
        with pytest.raises(AuditError):
            auditor.audit_now()

    def test_stash_bound_violation_detected(self, audited):
        controller, auditor = audited
        controller.stash.peak_occupancy = (
            controller.oram.stash_capacity + 1
        )
        with pytest.raises(AuditError, match="stash bound"):
            auditor.audit_now()

    def test_queue_mirror_divergence_detected(self, audited):
        controller, auditor = audited
        victim = controller.namespace.user_blocks  # first posmap block
        controller._limbo.add(victim)
        with pytest.raises(AuditError):
            auditor.audit_now()

    def test_merkle_corruption_detected(self):
        from repro.oram.integrity import attach_integrity

        controller = warmed_controller()
        attach_integrity(controller)
        auditor = InvariantAuditor(controller, every=1)
        auditor.audit_now()
        # forge a stored hash: invisible to the location sweep, so only
        # the Merkle spot check can catch it
        controller.integrity.forge_stored_hash(1, 0)
        with pytest.raises(AuditError, match="Merkle"):
            auditor.audit_now()

    def test_timing_rate_violation_detected(self):
        from repro.oram.controller import SlotResult

        controller = warmed_controller()
        auditor = InvariantAuditor(controller, every=10**9,
                                   check_rate=True)

        def slot(start):
            return SlotResult(issued_path=True, path_type=None,
                              start=start, finish_read=start,
                              finish_write=start, completions=[])

        auditor.observe(slot(0))
        auditor.observe(slot(controller.oram.issue_interval))
        with pytest.raises(AuditError, match="timing-channel"):
            auditor.observe(
                slot(2 * controller.oram.issue_interval - 1)
            )


class TestBitIdentity:
    """Auditor-on runs are cycle- and counter-bit-identical (tentpole
    acceptance)."""

    @pytest.mark.parametrize("scheme", AUDIT_SCHEMES)
    def test_audited_run_identical(self, scheme):
        spec = api.RunSpec(scheme=scheme, workload="mix", records=250,
                           seed=9, config_name="tiny")
        plain = api.run(spec)
        audited = api.run(
            spec.with_obs(api.ObsOptions(audit=True, audit_every=8))
        )
        assert plain.result.cycles == audited.result.cycles
        assert plain.result.counters == audited.result.counters
        assert plain.result.instructions == audited.result.instructions

    def test_repro_audit_env_identical(self, monkeypatch):
        spec = api.RunSpec(scheme="IR-ORAM", workload="random",
                           records=200, seed=4, config_name="tiny")
        plain = api.run(spec)
        monkeypatch.setenv("REPRO_AUDIT", "16")
        audited = api.run(spec)
        assert plain.result.cycles == audited.result.cycles
        assert plain.result.counters == audited.result.counters

    def test_audit_events_reach_tracer(self):
        spec = api.RunSpec(
            scheme="Baseline", workload="mix", records=150, seed=3,
            config_name="tiny",
            obs=api.ObsOptions(audit=True, audit_every=8, ring_size=4096),
        )
        out = api.run(spec)
        audit_events = [e for e in out.events() if e.kind == "audit"]
        assert audit_events
        assert audit_events[-1].data["audits"] >= 1


class TestLockstepOracle:
    def test_single_scheme(self):
        config = SystemConfig.tiny()
        ops = generate_ops(50, config.oram.user_blocks, 2)
        result = drive_lockstep("Baseline", ops, seed=2)
        assert result.served > 0
        assert result.audits > 0

    def test_zoo_transcripts_agree(self):
        results = zoo_lockstep(ops_count=60, seed=6)
        assert set(results) == set(SCHEMES)
        digests = {r.read_digest() for r in results.values()}
        assert len(digests) == 1

    def test_read_divergence_raises(self):
        config = SystemConfig.tiny()
        ops = generate_ops(40, config.oram.user_blocks, 8)
        # corrupting the posmap mid-run must surface as an AuditError
        # (invariant sweep), never as a silent wrong read
        fault = (len(ops) // 2, fuzz_mod.FAULTS["corrupt-mapping"])
        with pytest.raises(AuditError):
            drive_lockstep("Baseline", ops, seed=8, fault=fault)

    def test_engine_equivalence_serial_vs_parallel(self):
        mismatches = engine_equivalence(
            schemes=("Baseline", "IR-ORAM", "Rho"), records=150, jobs=2,
        )
        assert mismatches == []


class TestGoldenCorpus:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden, "GOLDEN_RECORDS", 120)
        monkeypatch.setattr(
            golden, "GOLDEN_WORKLOADS", ("random",), raising=True
        )
        path = str(tmp_path / "golden.json")
        golden.save(golden.snapshot(), path)
        assert golden.check(path) == []

    def test_corrupted_entry_caught(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden, "GOLDEN_RECORDS", 120)
        monkeypatch.setattr(
            golden, "GOLDEN_WORKLOADS", ("random",), raising=True
        )
        path = str(tmp_path / "golden.json")
        document = golden.snapshot()
        key = sorted(document["entries"])[0]
        document["entries"][key]["cycles"] += 1  # digest now stale
        golden.save(document, path)
        problems = golden.verify_integrity(golden.load(path))
        assert any("corrupted" in p for p in problems)

    def test_committed_corpus_is_internally_consistent(self):
        # the committed file's digests must verify without running anything
        document = golden.load(golden.DEFAULT_PATH)
        assert golden.verify_integrity(document) == []
        assert len(document["entries"]) == 2 * len(SCHEMES)


class TestFuzzer:
    def test_injected_faults_all_caught(self, tmp_path):
        report = fuzz_mod.fuzz(
            len(fuzz_mod.FAULTS) * 2, base_seed=21, inject_faults=True,
            ops_count=30, artifact_dir=str(tmp_path),
        )
        assert report.ok, [f.signature for f in report.failures]

    def test_failure_persists_shrinks_and_replays(self, tmp_path):
        config = SystemConfig.tiny()
        case = fuzz_mod.FuzzCase(
            scheme="Baseline", seed=3,
            ops=generate_ops(40, config.oram.user_blocks, 3),
            fault=("drop-block", 10),
        )
        signature = fuzz_mod.run_case(case)
        assert signature is not None and "AuditError" in signature
        minimal = fuzz_mod.shrink(case, signature)
        assert len(minimal.ops) < len(case.ops)
        path = fuzz_mod.persist(minimal, signature, str(tmp_path))
        replayed_case, replayed_signature = fuzz_mod.replay(path)
        assert replayed_signature == signature
        assert replayed_case.ops == minimal.ops

    def test_clean_zoo_survives_fuzzing(self, tmp_path):
        report = fuzz_mod.fuzz(
            6, base_seed=300, inject_faults=False, ops_count=30,
            artifact_dir=str(tmp_path),
        )
        assert report.ok, [f.signature for f in report.failures]
        assert not os.listdir(tmp_path)  # no artifacts for a clean run
