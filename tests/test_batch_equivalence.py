"""Whole-run batch fastpath equivalence: batched, per-access, pure Python.

The native ``run_batch`` kernel executes thousands of dummy paths per
Python call; the contract (docs/simulator.md, "Batched native fastpath")
is that batching is *pure execution strategy* — simulated cycles,
counters, path counts, RNG stream, and stash/tree/DRAM state are
bit-identical whether slots drain through the batch kernel, the
per-access native helpers, or the pure-Python fallbacks.  These tests
pin that contract for every registered scheme, audited runs included,
and for checkpoint/resume digests with natives on and off.
"""

import os
import random

import pytest

from repro import api
from repro.config import SystemConfig
from repro.core.schemes import SCHEMES, build_scheme
from repro.sim.runner import run_benchmark
from repro.validate import golden

ALL_SCHEMES = sorted(SCHEMES)
KERNEL_SCHEMES = ["Baseline", "IR-Stash", "IR-Alloc", "IR-ORAM"]
#: uneven chunk sizes so batch boundaries never line up with anything
KERNEL_CHUNKS = (1, 3, 64, 120)


def _disable_natives(monkeypatch):
    """Force every pure-Python fallback, including the batch kernel."""
    import repro.mem.dram as dram
    import repro.oram.controller as controller
    import repro.oram.stash as stash
    import repro.oram.tree as tree

    monkeypatch.setattr(dram, "_native", None)
    monkeypatch.setattr(tree, "_native", None)
    monkeypatch.setattr(stash, "_native", None)
    monkeypatch.setattr(controller, "_fastpath", None)


def _fingerprint(result):
    return (
        result.cycles,
        tuple(sorted(result.path_counts.items())),
        tuple(sorted(result.counters.items())),
    )


def _run_sim(scheme, seed=11, records=200):
    config = SystemConfig.tiny()
    return run_benchmark(scheme, "random", config, records=records, seed=seed)


def _controller_state(controller):
    stash = controller.stash
    return (
        controller.rng.getstate(),
        dict(stash._entries),
        dict(stash._seq),
        {k: dict(v) for k, v in stash._by_prefix.items()},
        stash._next_seq,
        stash.peak_occupancy,
        list(controller.tree.level_used),
        list(controller.dram.bank_ready),
        list(controller.dram.bank_open_row),
        list(controller.dram.bus_free),
        dict(controller.stats.counters),
    )


class TestKernelLockstep:
    """run_dummy_batch vs the dummy_path loop, state compared mid-run."""

    @pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
    def test_batch_matches_per_path_loop(self, scheme):
        from repro.perf import native

        if native.fastpath is None:
            pytest.skip("native kernels unavailable; nothing to compare")

        def build(natives):
            config = SystemConfig.scaled(levels=13)
            controller = build_scheme(
                scheme, config, rng=random.Random(7)
            ).controller
            if not natives:
                controller._native_bulk = None
                controller._fastpath = None
            return controller

        batched = build(natives=True)
        assert batched._native_bulk is not None
        reference = build(natives=False)
        interval = 50
        now_a = now_b = 0
        for chunk in KERNEL_CHUNKS:
            issued, now_a, _ = batched.run_dummy_batch(now_a, chunk, interval)
            assert issued == chunk
            for _ in range(chunk):
                res = reference.dummy_path(now_b)
                now_b = max(now_b + interval, res.finish_write)
            # Full controller state, not just cycles: RNG stream, stash
            # index internals, per-level occupancy, DRAM bank state.
            assert _controller_state(batched) == _controller_state(reference)
            assert now_a == now_b


class TestFullRunEquivalence:
    """Whole simulations across every scheme and execution strategy."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_batch_vs_no_batch(self, scheme, monkeypatch):
        batched = _fingerprint(_run_sim(scheme))
        monkeypatch.setenv("REPRO_BATCH_SLOTS", "0")
        per_access = _fingerprint(_run_sim(scheme))
        assert batched == per_access

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_batch_vs_pure_python(self, scheme, monkeypatch):
        batched = _fingerprint(_run_sim(scheme))
        _disable_natives(monkeypatch)
        pure = _fingerprint(_run_sim(scheme))
        assert batched == pure

    @pytest.mark.parametrize("scheme", ["Baseline", "IR-ORAM", "Decoupled"])
    def test_audited_runs_identical(self, scheme, monkeypatch):
        """REPRO_AUDIT flushes the batch at every slot boundary; the
        invariant auditor must see identical state either way."""
        monkeypatch.setenv("REPRO_AUDIT", "1")
        batched = _fingerprint(_run_sim(scheme))
        monkeypatch.setenv("REPRO_BATCH_SLOTS", "0")
        per_access = _fingerprint(_run_sim(scheme))
        assert batched == per_access


class TestCheckpointBatchGuard:
    """Resume digests are identical with the fastpath on and off."""

    @pytest.mark.parametrize("scheme", ["Baseline", "IR-ORAM"])
    def test_resume_digest_matches_without_natives(
        self, scheme, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = api.RunSpec(
            scheme=scheme,
            workload="mix",
            records=golden.GOLDEN_RECORDS,
            seed=golden.GOLDEN_SEED,
            config_name="tiny",
        )

        def checkpoint_and_resume(tag):
            path = str(tmp_path / f"{tag}.ckpt")
            full = api.run(spec, checkpoint_every=60, checkpoint_path=path)
            assert os.path.exists(path)
            resumed = api.resume_run(path)
            return (
                golden.entry_from(full)["digest"],
                golden.entry_from(resumed)["digest"],
                resumed.cycles,
            )

        with_natives = checkpoint_and_resume("native")
        _disable_natives(monkeypatch)
        without_natives = checkpoint_and_resume("pure")
        assert with_natives == without_natives
        # Checkpointed and uninterrupted digests agree in both modes.
        assert with_natives[0] == with_natives[1]


class TestBatchExecution:
    """The batch kernel actually runs — and says so in the run stats."""

    def test_batch_counters_surface_in_stats(self, monkeypatch):
        from repro.perf import native

        if native.fastpath is None:
            pytest.skip("native kernels unavailable")
        monkeypatch.setenv("REPRO_BATCH_SLOTS", "256")
        out = api.run(
            api.RunSpec(
                scheme="Baseline",
                workload="random",
                records=200,
                seed=5,
                config_name="tiny",
            )
        )
        assert out.stats.get("engine.batch.paths") > 0
        assert out.stats.get("engine.batch.calls") > 0
        # Execution bookkeeping never leaks into simulated counters.
        assert "engine.batch.paths" not in out.result.counters


class TestDecoupledScheme:
    """Palermo-style decoupling defers every dummy write burst."""

    def test_defers_every_write_and_saves_cycles(self):
        decoupled = _run_sim("Decoupled", seed=9)
        baseline = _run_sim("Baseline", seed=9)
        deferred = decoupled.counters.get("decouple.deferred_writes")
        assert deferred is not None and deferred > 0
        assert deferred == sum(decoupled.path_counts.values())
        assert decoupled.cycles < baseline.cycles
