"""End-to-end tests for the ``repro validate`` CLI subcommand."""

import json
import os

import pytest

from repro.__main__ import main
from repro.validate import golden


@pytest.fixture(autouse=True)
def small_matrix(monkeypatch):
    """Shrink the golden matrix so CLI round trips stay fast."""
    monkeypatch.setattr(golden, "GOLDEN_RECORDS", 120)
    monkeypatch.setattr(golden, "GOLDEN_WORKLOADS", ("random",))


def test_regen_then_check_round_trip(tmp_path, capsys):
    path = str(tmp_path / "golden.json")
    assert main(["validate", "--regen", "--golden", path]) == 0
    assert os.path.exists(path)
    assert main(["validate", "--check", "--golden", path]) == 0
    out = capsys.readouterr().out
    assert "golden check OK" in out
    assert "lockstep oracle OK" in out
    assert "validate: PASS" in out


def test_check_fails_on_corrupted_golden(tmp_path, capsys):
    path = str(tmp_path / "golden.json")
    assert main(["validate", "--regen", "--golden", path]) == 0
    document = golden.load(path)
    key = sorted(document["entries"])[0]
    document["entries"][key]["cycles"] += 1  # stale digest too
    golden.save(document, path)
    assert main(["validate", "--check", "--golden", path]) == 1
    err = capsys.readouterr().err
    assert "corrupted" in err


def test_check_fails_on_drifted_golden(tmp_path, capsys):
    path = str(tmp_path / "golden.json")
    assert main(["validate", "--regen", "--golden", path]) == 0
    document = golden.load(path)
    key = sorted(document["entries"])[0]
    entry = document["entries"][key]
    entry["cycles"] += 1
    entry["digest"] = golden.entry_digest(entry)  # consistent but wrong
    golden.save(document, path)
    assert main(["validate", "--check", "--golden", path]) == 1
    err = capsys.readouterr().err
    assert "cycles" in err


def test_missing_golden_reports_cleanly(tmp_path, capsys):
    path = str(tmp_path / "nope.json")
    assert main(["validate", "--check", "--golden", path]) == 1
    assert "--regen" in capsys.readouterr().err


def test_fuzz_inject_faults_and_replay(tmp_path, capsys):
    artifact_dir = str(tmp_path / "failures")
    assert main([
        "validate", "--fuzz", "4", "--inject-faults",
        "--seed", "17", "--artifact-dir", artifact_dir,
    ]) == 0
    assert "0 failure(s)" in capsys.readouterr().out


def test_committed_corpus_covers_every_scheme(capsys):
    """The checked-in corpus must track the scheme zoo — including
    Pyramid — and every entry digest must be self-consistent, so a
    drifted or hand-edited corpus fails before any simulation runs."""
    from repro.core.schemes import SCHEMES

    document = golden.load(golden.DEFAULT_PATH)
    covered = {key.split("|")[0] for key in document["entries"]}
    assert covered == set(SCHEMES)
    assert "Pyramid" in covered
    assert len(document["entries"]) == 2 * len(SCHEMES)
    for key, entry in document["entries"].items():
        assert entry["digest"] == golden.entry_digest(entry), key


def test_distinguish_cli_smoke(tmp_path, capsys):
    """One clean scheme and one mutant through the real CLI path."""
    artifact_dir = str(tmp_path / "distinguish")
    assert main([
        "validate", "--distinguish",
        "--schemes", "Baseline", "--mutants", "skip-dummies",
        "--artifact-dir", artifact_dir,
    ]) == 0
    out = capsys.readouterr().out
    assert "scheme Baseline: clean" in out
    assert "mutant skip-dummies: DISTINGUISHABLE" in out
    assert "distinguish: PASS" in out
    artifacts = os.listdir(artifact_dir)
    assert len(artifacts) == 2

    # replaying a persisted verdict routes to the distinguisher, not
    # the fuzzer, and reproduces bit-for-bit
    path = os.path.join(artifact_dir, sorted(artifacts)[0])
    assert main(["validate", "--distinguish", "--replay", path]) == 0
    assert "bit-for-bit" in capsys.readouterr().out


def test_replay_reproduces_persisted_artifact(tmp_path, capsys):
    from repro.config import SystemConfig
    from repro.validate import fuzz as fuzz_mod
    from repro.validate.oracle import generate_ops

    config = SystemConfig.tiny()
    case = fuzz_mod.FuzzCase(
        scheme="Baseline", seed=3,
        ops=generate_ops(30, config.oram.user_blocks, 3),
        fault=("duplicate-block", 8),
    )
    signature = fuzz_mod.run_case(case)
    assert signature is not None
    path = fuzz_mod.persist(case, signature, str(tmp_path))
    assert main(["validate", "--replay", path]) == 0
    out = capsys.readouterr().out
    assert "reproduced" in out

    # an artifact whose failure no longer reproduces exits nonzero
    payload = case.to_dict()
    payload["fault"] = None
    payload["signature"] = signature
    clean = str(tmp_path / "clean.json")
    with open(clean, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    assert main(["validate", "--replay", clean]) == 1
