"""Tests for the warm-pool execution engine and its artifact caches."""

import json
import os

import pytest

from repro import api
from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.oram.controller import PathORAMController
from repro.oram.tree import ORAMTree
from repro.perf import engine
from repro.perf.parallel import SimPoint, run_points
from repro.stats import Stats


@pytest.fixture(autouse=True)
def isolated_engine(tmp_path, monkeypatch):
    """Every test gets a private cache dir and a fresh engine."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    engine.reset()
    yield
    engine.reset()


def _points(schemes, records=200, seed=7):
    config = SystemConfig.tiny()
    return [
        SimPoint(scheme, "mix", records=records, seed=seed, config=config)
        for scheme in schemes
    ]


class TestFingerprint:
    def test_stable_and_equal_for_equal_configs(self):
        a = SystemConfig.tiny()
        b = SystemConfig.tiny()
        assert a.fingerprint() == b.fingerprint()
        assert len(a.fingerprint()) == 16

    def test_any_field_change_changes_it(self):
        base = SystemConfig.tiny()
        variants = [
            SystemConfig.tiny(levels=10),
            base.with_oram(base.oram.with_z_vector(
                [3] + list(base.oram.z_per_level[1:])
            )),
            SystemConfig.scaled(),
        ]
        prints = {config.fingerprint() for config in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)


class TestBitIdentity:
    def test_artifact_injection_is_invisible(self):
        spec = api.RunSpec(
            scheme="IR-ORAM", workload="mix", records=250,
            config=SystemConfig.tiny(),
        )
        cold = api.run(spec)
        warm = api.run(spec, artifacts=engine.get_cache())
        warm2 = api.run(spec, artifacts=engine.get_cache())
        assert cold.cycles == warm.cycles == warm2.cycles
        assert cold.result.counters == warm.result.counters
        assert cold.result.counters == warm2.result.counters

    def test_engine_counters_stay_out_of_results(self):
        spec = api.RunSpec(
            scheme="Baseline", workload="mix", records=200,
            config=SystemConfig.tiny(),
        )
        out = api.run(spec, artifacts=engine.get_cache())
        assert not any(
            key.startswith("engine.") for key in out.result.counters
        )
        assert any(
            key.startswith("engine.") for key in out.stats.counters
        )

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_run_points_matches_serial_loop(self, jobs):
        points = _points(["Baseline", "IR-ORAM", "LLC-D", "Rho"])
        serial = [
            api.run(api.RunSpec(
                scheme=p.scheme, workload=p.workload, records=p.records,
                seed=p.seed, config=p.config,
            ))
            for p in points
        ]
        results, wall = run_points(points, jobs=jobs)
        assert wall > 0
        assert [item.point for item in results] == points
        for ref, item in zip(serial, results):
            assert ref.result.cycles == item.result.cycles
            assert ref.result.counters == item.result.counters

    def test_run_many_engine_backed(self):
        specs = [
            api.RunSpec(scheme=scheme, workload="mix", records=150,
                        config=SystemConfig.tiny())
            for scheme in ("Baseline", "IR-Stash")
        ]
        serial = api.run_many(specs, jobs=1)
        parallel = api.run_many(specs, jobs=2)
        assert [out.cycles for out in serial] == [
            out.cycles for out in parallel
        ]


class TestArtifactCache:
    def test_memory_hits_after_first_run(self):
        cache = engine.get_cache()
        config = SystemConfig.tiny()
        spec = api.RunSpec(scheme="Baseline", workload="mix", records=150,
                           config=config)
        api.run(spec, artifacts=cache)
        before = dict(cache.counters)
        api.run(spec, artifacts=cache)
        for key in ("engine.trace_hits", "engine.layout_hits",
                    "engine.triples_hits"):
            assert cache.counters[key] > before.get(key, 0)

    def test_disk_round_trip_warm_start(self):
        points = _points(["Baseline", "LLC-D"])
        cold, _ = run_points(points, jobs=1)
        engine.get_cache().flush()
        engine.reset()  # simulate a brand-new process, same cache dir
        warm, _ = run_points(points, jobs=1)
        agg = engine.aggregate_engine_counters(warm)
        assert agg.get("engine.triples_disk_hits", 0) > 0
        assert agg.get("engine.trace_disk_hits", 0) > 0
        for a, b in zip(cold, warm):
            assert a.result.cycles == b.result.cycles
            assert a.result.counters == b.result.counters

    def test_disk_cache_can_be_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        points = _points(["Baseline"])
        run_points(points, jobs=1)
        engine.get_cache().flush()
        assert not os.path.exists(
            os.path.join(engine.cache_root(), "triples")
        )

    def test_trace_reconstruction_identical(self):
        from repro.sim.runner import make_workload

        cache = engine.get_cache()
        config = SystemConfig.tiny()
        first = cache.trace_for("mix", config, 200, 11)
        cache.flush()
        engine.reset()
        reloaded = engine.get_cache().trace_for("mix", config, 200, 11)
        direct = make_workload("mix", config, 200, 11)
        assert reloaded.name == first.name == direct.name
        assert list(reloaded.records) == list(first.records)
        assert list(reloaded.records) == list(direct.records)

    def test_attach_skips_rho(self):
        cache = engine.get_cache()
        config = SystemConfig.tiny()
        components = build_scheme("Rho", config, Stats())
        controller = components.controller
        layout_before = controller.layout
        cache.attach(controller)
        assert controller.layout is layout_before

    def test_attach_shares_layout_between_plain_controllers(self):
        cache = engine.get_cache()
        config = SystemConfig.tiny()
        first = build_scheme("Baseline", config, Stats()).controller
        second = build_scheme("LLC-D", config, Stats()).controller
        cache.attach(first)
        cache.attach(second)
        assert first.layout is second.layout
        assert first._path_dram is second._path_dram


class TestPathDramFifo:
    def test_fifo_evicts_oldest_not_everything(self, monkeypatch):
        monkeypatch.setattr(ORAMTree, "PATH_CACHE_LIMIT", 3)
        controller = PathORAMController(SystemConfig.tiny())
        controller._path_dram.clear()
        for leaf in (0, 1, 2):
            controller._path_dram_triples(leaf)
        assert sorted(controller._path_dram) == [0, 1, 2]
        controller._path_dram_triples(3)  # evicts leaf 0 only
        assert sorted(controller._path_dram) == [1, 2, 3]
        controller._path_dram_triples(4)  # evicts leaf 1 only
        assert sorted(controller._path_dram) == [2, 3, 4]

    def test_reinserted_leaf_yields_same_triples(self, monkeypatch):
        monkeypatch.setattr(ORAMTree, "PATH_CACHE_LIMIT", 2)
        controller = PathORAMController(SystemConfig.tiny())
        controller._path_dram.clear()
        original = controller._path_dram_triples(0)
        controller._path_dram_triples(1)
        controller._path_dram_triples(2)  # leaf 0 falls out
        assert 0 not in controller._path_dram
        assert controller._path_dram_triples(0) == original


class TestZSearchCache:
    def test_second_search_is_a_disk_hit(self):
        config = SystemConfig.tiny()
        first = engine.cached_z_allocation(config, records=80, seed=5)
        cache = engine.get_cache()
        misses = cache.counters.get("engine.zsearch_misses", 0)
        second = engine.cached_z_allocation(config, records=80, seed=5)
        assert cache.counters.get("engine.zsearch_hits", 0) >= 1
        assert cache.counters.get("engine.zsearch_misses", 0) == misses
        assert tuple(second.z_per_level) == tuple(first.z_per_level)

    def test_different_parameters_miss(self):
        config = SystemConfig.tiny()
        engine.cached_z_allocation(config, records=80, seed=5)
        cache = engine.get_cache()
        engine.cached_z_allocation(config, records=80, seed=6)
        assert cache.counters.get("engine.zsearch_misses", 0) >= 2

    def test_memoized_evaluator_calls_once_per_vector(self):
        calls = []

        def evaluate(oram):
            calls.append(tuple(oram.z_per_level))
            return {"cycles": 100.0, "evictions": 0.0}

        wrapped = engine.memoized_evaluator(evaluate)
        oram = SystemConfig.tiny().oram
        assert wrapped(oram) == wrapped(oram)
        assert len(calls) == 1


class TestPriors:
    def test_observe_predict_round_trip(self, tmp_path):
        store = engine.PriorStore(str(tmp_path / "priors.json"))
        store.observe_point("Baseline", "mix", 1000, 2.0)
        assert store.predict("points", "Baseline/mix") == pytest.approx(
            0.002
        )
        # EWMA folds new observations in instead of overwriting.
        store.observe_point("Baseline", "mix", 1000, 4.0)
        assert store.predict("points", "Baseline/mix") == pytest.approx(
            0.003
        )

    def test_save_and_reload(self, tmp_path):
        path = str(tmp_path / "priors.json")
        store = engine.PriorStore(path)
        store.observe("experiments", "Fig. 10", 12.5)
        store.save()
        reloaded = engine.PriorStore(path)
        assert reloaded.predict("experiments", "Fig. 10") == 12.5

    def test_corrupt_store_degrades_gracefully(self, tmp_path):
        path = tmp_path / "priors.json"
        path.write_text("{not json", encoding="utf-8")
        store = engine.PriorStore(str(path))
        assert store.predict("points", "anything") is None

    def test_unknown_point_cost_ranks_by_records(self, tmp_path):
        store = engine.PriorStore(str(tmp_path / "priors.json"))
        assert store.point_cost("X", "y", 2000) > store.point_cost(
            "X", "y", 100
        )

    def test_run_points_records_priors(self):
        run_points(_points(["Baseline"]), jobs=1)
        priors_path = os.path.join(engine.cache_root(), "priors.json")
        with open(priors_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert "Baseline/mix" in data.get("points", {})


class TestEngineMap:
    def test_cost_order_does_not_change_results(self):
        items = list(range(6))
        plain = engine.engine_map(_double, items, jobs=2)
        costed = engine.engine_map(
            _double, items, jobs=2, cost=lambda n: -n
        )
        assert plain == costed == [n * 2 for n in items]

    def test_pool_persists_between_calls(self):
        engine.engine_map(_double, [1, 2, 3], jobs=2)
        engine.engine_map(_double, [4, 5, 6], jobs=2)
        counters = engine.engine_counters()
        assert counters.get("engine.pool_starts") == 1
        assert counters.get("engine.pool_reuses", 0) >= 1

    def test_env_change_recreates_pool(self, monkeypatch):
        engine.engine_map(_double, [1, 2, 3], jobs=2)
        monkeypatch.setenv("REPRO_FASTPATH", os.environ.get(
            "REPRO_FASTPATH", "1"
        ) + "x")
        engine.engine_map(_double, [4, 5, 6], jobs=2)
        assert engine.engine_counters().get("engine.pool_starts") == 2

    def test_serial_never_touches_pool(self):
        assert engine.engine_map(_double, [1, 2, 3], jobs=1) == [2, 4, 6]
        assert engine.engine_counters().get("engine.pool_starts") is None


def _double(n):
    return n * 2


class TestBenchProfile:
    def test_profile_report_shape(self, monkeypatch):
        from repro.perf import bench

        monkeypatch.setattr(bench, "SMOKE_SCHEMES", ["Baseline"])
        monkeypatch.setattr(bench, "SMOKE_WORKLOADS", ["random"])
        monkeypatch.setattr(bench, "SMOKE_RECORDS", 120)
        monkeypatch.setattr(bench, "SMOKE_KERNEL_PATHS", 100)
        monkeypatch.setattr(bench, "KERNEL_SCHEMES", ["Baseline"])
        report = bench.run_bench(smoke=True, jobs=4, profile=True)
        assert report["jobs"] == 1  # profiling forces serial
        sections = set(report["profile"])
        # "batch" rides along whenever the native batch kernel ran.
        assert sections - {"batch"} == {"suite", "kernel"}
        for name in ("suite", "kernel"):
            rows = report["profile"][name]
            assert rows and all(
                {"func", "calls", "tottime", "cumtime"} <= set(row)
                for row in rows
            )
        for row in report["profile"].get("batch", []):
            assert {"phase", "ms"} <= set(row)
        assert "engine" in report
        text = bench.format_report(report)
        assert "profile [suite]" in text
        if "batch" in sections:
            assert "profile [batch]" in text
