"""Chaos tests: the supervised engine under crashes, hangs, and torn caches.

Every recovery path must return exactly what the serial loop returns —
fault tolerance that changes results would be worse than crashing.
Faults are injected deterministically (marker files claimed with
``O_CREAT | O_EXCL`` make each one fire exactly once), so these tests are
seed-stable across runs and ``--jobs`` values.
"""

import json
import os
import time

import pytest

from repro import api
from repro.config import SystemConfig
from repro.errors import EngineFaultError
from repro.perf import engine
from repro.validate.chaos import ChaosPlan, ChaosWorker, tear_cache_files


@pytest.fixture(autouse=True)
def isolated_engine(tmp_path, monkeypatch):
    """Every test gets a private cache dir and a fresh engine."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    engine.reset()
    yield
    engine.set_event_hook(None)
    engine.reset()


class FaultyDouble:
    """Picklable worker over ``(index, value)``: fault once, then double.

    ``crash``/``hang``/``explode`` name the indices that fault on their
    first dispatch (claimed via marker files, so re-dispatches run
    clean); ``explode_always`` raises on every dispatch.
    """

    def __init__(
        self,
        marker_dir,
        crash=(),
        hang=(),
        explode=(),
        explode_always=(),
        hang_s=30.0,
    ):
        self.marker_dir = str(marker_dir)
        self.crash = tuple(crash)
        self.hang = tuple(hang)
        self.explode = tuple(explode)
        self.explode_always = tuple(explode_always)
        self.hang_s = hang_s

    def _claim(self, kind, index):
        path = os.path.join(self.marker_dir, f"{kind}-{index}")
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            return False

    def __call__(self, task):
        index, value = task
        if index in self.crash and self._claim("crash", index):
            os._exit(17)
        if index in self.hang and self._claim("hang", index):
            time.sleep(self.hang_s)
        if index in self.explode and self._claim("explode", index):
            raise RuntimeError(f"injected fault at {index}")
        if index in self.explode_always:
            raise RuntimeError(f"permanent fault at {index}")
        return value * 2


class ParentSafeCrash:
    """Crashes (once per index) only inside pool workers, never in the
    parent — safe for exercising the degrade-to-serial path in-process."""

    def __init__(self, marker_dir, parent_pid):
        self.marker_dir = str(marker_dir)
        self.parent_pid = parent_pid

    def __call__(self, task):
        index, value = task
        if os.getpid() != self.parent_pid:
            path = os.path.join(self.marker_dir, f"crash-{index}")
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                os._exit(17)
            except FileExistsError:
                pass
        return value * 2


def _tasks(n):
    return [(index, index + 10) for index in range(n)]


def _expected(n):
    return [(index + 10) * 2 for index in range(n)]


class TestSupervision:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_worker_crash_recovers_in_order(self, tmp_path, jobs):
        worker = FaultyDouble(tmp_path / "m", crash=(2,))
        (tmp_path / "m").mkdir()
        before = engine.engine_counters()
        out = engine.engine_map(worker, _tasks(8), jobs=jobs)
        assert out == _expected(8)
        counters = engine.engine_counters()
        assert counters.get("engine.retries", 0) > before.get(
            "engine.retries", 0
        )
        assert counters.get("engine.respawns", 0) >= 1

    def test_hang_past_timeout_is_killed_and_retried(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1")
        (tmp_path / "m").mkdir()
        worker = FaultyDouble(tmp_path / "m", hang=(1,), hang_s=30.0)
        start = time.monotonic()
        out = engine.engine_map(worker, _tasks(4), jobs=2)
        assert out == _expected(4)
        assert time.monotonic() - start < 25  # the 30 s sleep was killed
        counters = engine.engine_counters()
        assert counters.get("engine.timeouts", 0) >= 1
        assert counters.get("engine.respawns", 0) >= 1

    def test_transient_exception_is_retried(self, tmp_path):
        (tmp_path / "m").mkdir()
        worker = FaultyDouble(tmp_path / "m", explode=(3,))
        out = engine.engine_map(worker, _tasks(6), jobs=2)
        assert out == _expected(6)
        assert engine.engine_counters().get("engine.retries", 0) >= 1

    def test_deterministic_failure_exhausts_budget(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "1")
        (tmp_path / "m").mkdir()
        worker = FaultyDouble(tmp_path / "m", explode_always=(2,))
        with pytest.raises(EngineFaultError, match="task 2"):
            engine.engine_map(worker, _tasks(5), jobs=2)

    def test_degrades_to_serial_after_respawn_budget(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MAX_RESPAWNS", "0")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "10")
        (tmp_path / "m").mkdir()
        worker = ParentSafeCrash(tmp_path / "m", parent_pid=os.getpid())
        out = engine.engine_map(worker, _tasks(6), jobs=2)
        assert out == _expected(6)
        assert engine.engine_counters().get("engine.degraded", 0) == 1

    def test_event_hook_sees_recovery(self, tmp_path):
        (tmp_path / "m").mkdir()
        events = []
        engine.set_event_hook(lambda kind, **data: events.append(kind))
        worker = FaultyDouble(tmp_path / "m", crash=(1,))
        engine.engine_map(worker, _tasks(4), jobs=2)
        assert "engine.retry" in events
        assert "engine.respawn" in events


class TestSweepBitIdentity:
    """Injected faults during a real scheme sweep must not change results."""

    SCHEMES = ["Baseline", "IR-ORAM", "Rho", "IR-DWB"]

    def _specs(self):
        return [
            api.RunSpec(
                scheme=scheme, workload="mix", records=120, seed=11,
                config=SystemConfig.tiny(),
            )
            for scheme in self.SCHEMES
        ]

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_crash_mid_sweep_bit_identical(
        self, tmp_path, monkeypatch, jobs
    ):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "4")
        specs = self._specs()
        serial = [api.run(spec) for spec in specs]
        markers = tmp_path / "markers"
        markers.mkdir()
        plan = ChaosPlan.make(
            len(specs), seed=3, marker_dir=str(markers), crashes=1, hangs=0
        )
        assert plan.crash_indices  # the plan actually injects something
        outs = engine.engine_map(
            ChaosWorker(plan), list(enumerate(specs)), jobs=jobs
        )
        for want, got in zip(serial, outs):
            assert got.cycles == want.cycles
            assert got.result.counters == want.result.counters
        assert engine.engine_counters().get("engine.respawns", 0) >= 1

    def test_hang_mid_sweep_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "10")
        specs = self._specs()
        serial = [api.run(spec) for spec in specs]
        markers = tmp_path / "markers"
        markers.mkdir()
        plan = ChaosPlan.make(
            len(specs), seed=5, marker_dir=str(markers), crashes=0, hangs=1
        )
        assert plan.hang_indices
        outs = engine.engine_map(
            ChaosWorker(plan), list(enumerate(specs)), jobs=2
        )
        for want, got in zip(serial, outs):
            assert got.cycles == want.cycles
            assert got.result.counters == want.result.counters
        assert engine.engine_counters().get("engine.timeouts", 0) >= 1


class TestCorruptionQuarantine:
    def test_torn_artifact_is_quarantined_not_swallowed(self):
        cache = engine.get_cache()
        path = cache._disk_path("traces", "deadbeef")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"\x80\x04 torn mid-write")
        assert cache._disk_load("traces", "deadbeef") is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert cache.counters.get("engine.cache.corrupt") == 1
        assert engine.engine_counters().get("engine.cache.corrupt") == 1

    def test_missing_artifact_is_silent(self):
        cache = engine.get_cache()
        assert cache._disk_load("traces", "nothere") is None
        assert cache.counters.get("engine.cache.corrupt") is None

    def test_torn_priors_quarantined_and_ignored(self, tmp_path):
        priors_path = tmp_path / "cache" / "priors.json"
        priors_path.parent.mkdir(parents=True, exist_ok=True)
        priors_path.write_text("{torn mid-")
        store = engine.PriorStore(str(priors_path))
        assert store.data == {}
        assert not priors_path.exists()
        assert priors_path.with_suffix(".json.corrupt").exists()
        assert engine.engine_counters().get("engine.cache.corrupt") == 1

    def test_priors_survive_round_trip_after_quarantine(self, tmp_path):
        priors_path = tmp_path / "cache" / "priors.json"
        priors_path.parent.mkdir(parents=True, exist_ok=True)
        priors_path.write_text("not json at all")
        store = engine.PriorStore(str(priors_path))
        store.observe_point("Baseline", "mix", 100, 0.5)
        store.save()
        again = engine.PriorStore(str(priors_path))
        assert again.predict("points", "Baseline/mix") is not None

    def test_store_is_atomic_no_tmp_left_behind(self):
        cache = engine.get_cache()
        cache._disk_store("traces", "abc123", {"some": "value"})
        directory = os.path.dirname(cache._disk_path("traces", "abc123"))
        assert not [
            name for name in os.listdir(directory) if name.endswith(".tmp")
        ]
        assert cache._disk_load("traces", "abc123") == {"some": "value"}

    def test_tear_cache_files_is_deterministic(self, tmp_path):
        for name in ("a", "b", "c", "d"):
            (tmp_path / f"{name}.pkl").write_bytes(b"x" * 64)
        first = tear_cache_files(str(tmp_path), seed=9)
        for name in ("a", "b", "c", "d"):
            (tmp_path / f"{name}.pkl").write_bytes(b"x" * 64)
        second = tear_cache_files(str(tmp_path), seed=9)
        assert first == second


class TestChaosPlan:
    def test_plan_is_deterministic(self, tmp_path):
        a = ChaosPlan.make(12, seed=7, marker_dir=str(tmp_path))
        b = ChaosPlan.make(12, seed=7, marker_dir=str(tmp_path))
        assert a.crash_indices == b.crash_indices
        assert a.hang_indices == b.hang_indices
        assert not set(a.crash_indices) & set(a.hang_indices)

    def test_claim_fires_once(self, tmp_path):
        plan = ChaosPlan.make(4, seed=7, marker_dir=str(tmp_path))
        assert plan.claim("crash", 0) is True
        assert plan.claim("crash", 0) is False
        assert plan.claim("hang", 0) is True
