"""Integration tests for the full-system simulator."""

import random

import pytest

from repro.config import SystemConfig
from repro.core.schemes import SCHEMES, build_scheme
from repro.oram.types import PathType
from repro.sim.results import SimulationResult
from repro.sim.runner import make_workload, run_benchmark, run_trace
from repro.sim.simulator import Simulator
from repro.traces.synthetic import random_trace, zipf_trace
from repro.traces.trace import Trace


@pytest.fixture
def config():
    return SystemConfig.tiny()


def quick_run(scheme, config, records=250, workload="random", seed=5):
    return run_benchmark(scheme, workload, config, records=records, seed=seed)


class TestEndToEnd:
    def test_baseline_completes(self, config):
        result = quick_run("Baseline", config)
        assert result.cycles > 0
        assert result.total_paths() > 0
        assert result.counters["requests.read"] > 0

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_every_scheme_completes(self, scheme, config):
        result = quick_run(scheme, config, records=200)
        assert result.cycles > 0

    def test_deterministic_given_seed(self, config):
        first = quick_run("Baseline", config, seed=3)
        second = quick_run("Baseline", config, seed=3)
        assert first.cycles == second.cycles
        assert first.path_counts == second.path_counts

    def test_different_seed_differs(self, config):
        first = quick_run("Baseline", config, seed=3)
        second = quick_run("Baseline", config, seed=4)
        assert first.cycles != second.cycles

    def test_llc_filters_requests(self, config):
        rng = random.Random(1)
        hot = zipf_trace(400, 64, rng, alpha=1.5)
        result = run_trace("Baseline", hot, config)
        # with a 64-block footprint and a larger LLC, almost everything hits
        assert result.counters["hierarchy.demand_misses"] < 100

    def test_writeback_requests_generated(self, config):
        result = quick_run("Baseline", config, records=1200, workload="lbm")
        assert result.counters.get("requests.wb", 0) > 0

    def test_llc_d_generates_reinserts(self, config):
        result = quick_run("LLC-D", config, records=1200, workload="lbm")
        assert result.counters.get("requests.reinsert", 0) > 0
        assert result.counters.get("requests.wb", 0) == 0

    def test_dummy_paths_only_with_timing_protection(self, config):
        with_protection = quick_run("Baseline", config, workload="gcc",
                                    records=600)
        no_protection = SystemConfig.tiny(timing_protection=False)
        without = quick_run("Baseline", no_protection, workload="gcc",
                            records=600)
        assert without.path_counts[PathType.DUMMY.value] == 0
        assert with_protection.cycles > 0

    def test_instructions_accounted(self, config):
        result = quick_run("Baseline", config, records=300)
        assert result.instructions > 0
        assert 0 < result.ipc < 8

    def test_utilization_snapshots_recorded(self, config):
        trace = make_workload("random", config, 300, seed=2)
        components = build_scheme("Baseline", config)
        result = Simulator(components, trace).run(utilization_snapshots=3)
        assert len(result.utilization_series) >= 3
        for _, snapshot in result.utilization_series:
            assert len(snapshot) == config.oram.levels
            assert all(0.0 <= u <= 1.0 for u in snapshot)


class TestSimulationResult:
    @pytest.fixture
    def result(self, config):
        return quick_run("Baseline", config, records=400)

    def test_distribution_sums_to_one(self, result):
        dist = result.path_type_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_speedup_identity(self, result):
        assert result.speedup_over(result) == pytest.approx(1.0)

    def test_memory_accesses_positive(self, result):
        assert result.memory_accesses() > 0

    def test_posmap_paths_consistent(self, result):
        assert result.posmap_paths() == (
            result.path_counts[PathType.POS1.value]
            + result.path_counts[PathType.POS2.value]
        )

    def test_eviction_cycle_share_bounded(self, result):
        assert 0.0 <= result.eviction_cycle_share() <= 1.0


class TestSchemeBehaviour:
    def test_ir_alloc_reduces_memory_traffic(self, config):
        baseline = quick_run("Baseline", config, records=600)
        ir_alloc = quick_run("IR-Alloc", config, records=600)
        base_per_path = baseline.memory_accesses() / baseline.total_paths()
        alloc_per_path = ir_alloc.memory_accesses() / ir_alloc.total_paths()
        assert alloc_per_path < base_per_path

    def test_ir_alloc_faster_on_intense_workload(self):
        config = SystemConfig.scaled(levels=13)
        baseline = quick_run("Baseline", config, records=1500, workload="mcf")
        ir_alloc = quick_run("IR-Alloc", config, records=1500, workload="mcf")
        assert ir_alloc.cycles < baseline.cycles

    def test_ir_stash_never_more_posmap_paths(self):
        config = SystemConfig.scaled(levels=13)
        baseline = quick_run("Baseline", config, records=1500, workload="dee")
        ir_stash = quick_run("IR-Stash", config, records=1500, workload="dee")
        assert ir_stash.posmap_paths() <= baseline.posmap_paths()

    def test_rho_conserves_user_blocks(self, config):
        components = build_scheme("Rho", config)
        trace = make_workload("random", config, 400, seed=9)
        Simulator(components, trace).run()
        controller = components.controller
        ns = controller.namespace
        from repro.oram.tree import EMPTY

        holders = {}
        for level in range(controller.tree.levels):
            for position in range(1 << level):
                for block in controller.tree.bucket(level, position):
                    if block != EMPTY:
                        holders[block] = holders.get(block, 0) + 1
        for level in range(controller.small_tree.levels):
            for position in range(1 << level):
                for block in controller.small_tree.bucket(level, position):
                    if block != EMPTY:
                        holders[block] = holders.get(block, 0) + 1
        for holder in (
            controller.stash.blocks(),
            controller.small_stash.blocks(),
            list(controller.plb._cache.contents()),
            list(controller._limbo),
            list(controller.main_insert_queue),
        ):
            for block in holder:
                holders[block] = holders.get(block, 0) + 1
        # every namespace block is held exactly once
        for block in range(ns.total_blocks):
            assert holders.get(block, 0) == 1, f"block {block}"
