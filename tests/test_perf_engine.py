"""Tests for the parallel experiment engine and the bench harness."""

import pytest

from repro.config import SystemConfig
from repro.perf import bench
from repro.perf.parallel import SimPoint, default_jobs, fanout, fanout_map
from repro.analysis.sweep import sweep_parameter


def _tiny_points():
    config = SystemConfig.tiny()
    return [
        SimPoint("Baseline", "random", records=120, seed=3, config=config),
        SimPoint("IR-Stash", "random", records=120, seed=3, config=config),
        SimPoint("Baseline", "mix", records=120, seed=4, config=config),
    ]


class TestFanout:
    def test_serial_matches_parallel(self):
        serial = fanout(_tiny_points(), jobs=1)
        parallel = fanout(_tiny_points(), jobs=2)
        assert len(serial) == len(parallel) == 3
        for a, b in zip(serial, parallel):
            assert a.point == b.point
            assert a.result.cycles == b.result.cycles
            assert a.result.counters == b.result.counters

    def test_order_preserved(self):
        points = _tiny_points()
        results = fanout(points, jobs=2)
        assert [item.point for item in results] == points

    def test_fanout_map_identity(self):
        items = list(range(7))
        assert fanout_map(_square, items, jobs=1) == [n * n for n in items]
        assert fanout_map(_square, items, jobs=3) == [n * n for n in items]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


def _square(n):
    return n * n


class TestSweepJobs:
    def test_sweep_parallel_identical(self):
        config = SystemConfig.tiny()
        kwargs = dict(
            values=[50, 100],
            scheme="Baseline",
            workload="random",
            config=config,
            records=120,
            seed=5,
        )
        serial = sweep_parameter("issue_interval", jobs=1, **kwargs)
        parallel = sweep_parameter("issue_interval", jobs=2, **kwargs)
        assert [p.cycles for p in serial.points] == [
            p.cycles for p in parallel.points
        ]


class TestBench:
    @pytest.fixture(scope="class")
    def report(self):
        # Trimmed smoke run: enough to exercise every report field.
        original = (
            bench.SMOKE_SCHEMES,
            bench.SMOKE_WORKLOADS,
            bench.SMOKE_RECORDS,
            bench.SMOKE_KERNEL_PATHS,
            bench.KERNEL_SCHEMES,
        )
        bench.SMOKE_SCHEMES = ["Baseline"]
        bench.SMOKE_WORKLOADS = ["random"]
        bench.SMOKE_RECORDS = 150
        bench.SMOKE_KERNEL_PATHS = 200
        bench.KERNEL_SCHEMES = ["Baseline"]
        try:
            yield bench.run_bench(smoke=True, jobs=1)
        finally:
            (
                bench.SMOKE_SCHEMES,
                bench.SMOKE_WORKLOADS,
                bench.SMOKE_RECORDS,
                bench.SMOKE_KERNEL_PATHS,
                bench.KERNEL_SCHEMES,
            ) = original

    def test_report_shape(self, report):
        assert report["suite"] == "smoke"
        assert report["points"] and report["kernel"]
        for row in report["points"]:
            assert row["paths_per_s"] > 0
            assert row["cycles"] > 0
        assert report["suite_paths_per_s"] > 0

    def test_check_passes_against_self(self, report):
        assert bench.check_report(report, report) == []

    def test_check_flags_regression(self, report):
        inflated = dict(report)
        inflated["suite_paths_per_s"] = report["suite_paths_per_s"] * 10
        inflated["kernel"] = [
            dict(row, paths_per_s=row["paths_per_s"] * 10)
            for row in report["kernel"]
        ]
        failures = bench.check_report(report, inflated, max_regression=2.0)
        assert any("suite" in f for f in failures)
        assert any("kernel" in f for f in failures)

    def test_save_load_round_trip(self, report, tmp_path):
        path = tmp_path / "bench.json"
        bench.save_report(report, str(path))
        assert bench.load_report(str(path)) == report

    def test_format_report(self, report):
        text = bench.format_report(report)
        assert "Baseline" in text
        assert "paths/s" in text
