"""Unit tests for the DRAM timing model."""

import pytest

from repro.config import DRAMConfig
from repro.mem.dram import DRAMModel, batch_from_addresses
from repro.mem.request import MemAccess
from repro.stats import Stats


@pytest.fixture
def dram():
    return DRAMModel(DRAMConfig())


class TestDecompose:
    def test_rows_stripe_across_channels(self, dram):
        cfg = dram.config
        channels = [
            dram.decompose(row * cfg.row_blocks)[0] for row in range(cfg.channels)
        ]
        assert sorted(channels) == list(range(cfg.channels))

    def test_same_row_same_bank(self, dram):
        cfg = dram.config
        a = dram.decompose(0)
        b = dram.decompose(cfg.row_blocks - 1)
        assert a == b

    def test_decompose_delegates_to_batch(self, dram):
        # decompose and decompose_batch share one arithmetic: the scalar
        # (channel, bank, row) must match the flat triple for any address.
        cfg = dram.config
        for phys in (0, 1, 63, 64, 1000, 123457):
            channel, bank, row = dram.decompose(phys)
            flat = dram.decompose_batch([phys])
            assert flat == [channel * cfg.banks_per_channel + bank,
                            channel, row]


class TestTiming:
    def test_single_access_latency(self, dram):
        cfg = dram.config
        finish = dram.access_latency(MemAccess(0), start_cycle=0)
        expected = (cfg.t_rcd + cfg.t_cas + cfg.t_burst) * (
            cfg.cpu_cycles_per_dram_cycle
        )
        assert finish == expected

    def test_row_hit_faster_than_miss(self, dram):
        first = dram.access_latency(MemAccess(0), 0)
        second = dram.access_latency(MemAccess(1), first)
        third_row = dram.config.row_blocks * dram.config.channels  # same bank
        third = dram.access_latency(MemAccess(third_row), second)
        assert second - first < third - second

    def test_row_hit_counters(self, dram):
        dram.service_batch(batch_from_addresses([0, 1, 2, 3], False), 0)
        assert dram.stats.get("dram.row_hits") == 3
        assert dram.stats.get("dram.accesses") == 4

    def test_row_conflict_counted(self, dram):
        cfg = dram.config
        same_bank_stride = cfg.row_blocks * cfg.channels * cfg.banks_per_channel
        dram.service_batch(
            batch_from_addresses([0, same_bank_stride], False), 0
        )
        assert dram.stats.get("dram.row_conflicts") == 1

    def test_channel_parallelism(self, dram):
        cfg = dram.config
        # one block in each channel: should finish far faster than 4 blocks
        # in one channel's single bank row-conflicting
        parallel_addrs = [
            row * cfg.row_blocks for row in range(cfg.channels)
        ]
        finish_parallel = dram.service_batch(
            batch_from_addresses(parallel_addrs, False), 0
        )
        dram2 = DRAMModel(cfg)
        stride = cfg.row_blocks * cfg.channels * cfg.banks_per_channel
        serial_addrs = [i * stride for i in range(cfg.channels)]
        finish_serial = dram2.service_batch(
            batch_from_addresses(serial_addrs, False), 0
        )
        assert finish_parallel < finish_serial

    def test_monotonic_completion(self, dram):
        finish1 = dram.service_batch(batch_from_addresses([0, 1], False), 0)
        finish2 = dram.service_batch(batch_from_addresses([2, 3], False), finish1)
        assert finish2 >= finish1

    def test_start_cycle_respected(self, dram):
        finish = dram.service_batch(batch_from_addresses([0], False), 1000)
        assert finish > 1000

    def test_empty_batch(self, dram):
        finish = dram.service_batch([], 123)
        # empty batches complete at (rounded) start
        assert finish >= 123 - dram.config.cpu_cycles_per_dram_cycle
        assert finish <= 123 + dram.config.cpu_cycles_per_dram_cycle

    def test_write_counters(self, dram):
        dram.service_addresses([0, 1], True, 0)
        dram.service_addresses([2], False, 0)
        assert dram.stats.get("dram.writes") == 2
        assert dram.stats.get("dram.reads") == 1

    def test_mixed_batch_split_counts(self, dram):
        batch = [MemAccess(0, False), MemAccess(1, True)]
        dram.service_batch(batch, 0)
        assert dram.stats.get("dram.reads") == 1
        assert dram.stats.get("dram.writes") == 1

    def test_mixed_batch_counters_match_per_access(self, dram):
        # 3 reads, 2 writes, 1 read: grouped into maximal runs, yet the
        # per-direction counters must equal a per-access loop's.
        batch = [
            MemAccess(0, False), MemAccess(1, False), MemAccess(2, False),
            MemAccess(64, True), MemAccess(65, True),
            MemAccess(3, False),
        ]
        dram.service_batch(batch, 0)
        assert dram.stats.get("dram.reads") == 4
        assert dram.stats.get("dram.writes") == 2
        assert dram.stats.get("dram.accesses") == 6

        reference = DRAMModel(dram.config)
        finish = 0
        for access in batch:
            finish = reference.service_batch([access], finish)
        assert reference.stats.get("dram.reads") == 4
        assert reference.stats.get("dram.writes") == 2

    def test_mixed_batch_runs_pipeline(self, dram):
        # Same-direction runs keep the batch path's bank/bus pipelining,
        # so a grouped mixed batch never finishes later than servicing
        # every access as its own one-element batch.
        batch = [MemAccess(addr, False) for addr in range(4)]
        batch += [MemAccess(64 + addr, True) for addr in range(4)]
        grouped_finish = dram.service_batch(batch, 0)

        reference = DRAMModel(dram.config)
        finish = 0
        for access in batch:
            finish = reference.service_batch([access], finish)
        assert grouped_finish <= finish
        # The 4-read run gets 3 row hits and the 4-write run 3 more; the
        # one-by-one loop would see the same rows but pay bus turnaround
        # sequencing per element.  Row-hit counts still agree.
        assert dram.stats.get("dram.row_hits") == reference.stats.get(
            "dram.row_hits"
        )

    def test_single_direction_batch_unchanged_by_mixed_path(self, dram):
        # A pure batch must not take the run-splitting path.
        finish = dram.service_batch(batch_from_addresses([0, 1, 2], False), 0)
        reference = DRAMModel(dram.config)
        assert finish == reference.service_addresses([0, 1, 2], False, 0)

    def test_reset_state_preserves_counters(self, dram):
        dram.service_addresses([0, 1], False, 0)
        hits = dram.stats.get("dram.row_hits")
        dram.reset_state()
        assert dram.stats.get("dram.row_hits") == hits
        # after reset the row must be re-activated (no hit)
        dram.service_addresses([0], False, 0)
        assert dram.stats.get("dram.row_hits") == hits

    def test_row_hit_rate(self, dram):
        dram.service_addresses(list(range(8)), False, 0)
        assert dram.row_hit_rate() == pytest.approx(7 / 8)


class TestMemAccess:
    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemAccess(-1)
