"""Unit tests for the IR-ORAM core: IR-Alloc, IR-Stash, IR-DWB, schemes."""

import random

import pytest

from repro.config import ORAMConfig, SystemConfig
from repro.core.ir_alloc import (
    PAPER_ALLOC_CONFIGS,
    AllocPlan,
    apply_alloc_plan,
    find_z_allocation,
    scale_plan,
)
from repro.core.ir_dwb import DWBEngine
from repro.core.ir_stash import SStash, _md5_index
from repro.core.schemes import SCHEMES, build_scheme
from repro.errors import ConfigError, ProtocolError
from repro.oram.rho import RhoController

from tests.conftest import make_oram


class TestAllocPlans:
    def test_paper_pl_values(self):
        assert PAPER_ALLOC_CONFIGS["IR-Alloc1"].blocks_per_path() == 43
        assert PAPER_ALLOC_CONFIGS["IR-Alloc2"].blocks_per_path() == 42
        assert PAPER_ALLOC_CONFIGS["IR-Alloc3"].blocks_per_path() == 37
        assert PAPER_ALLOC_CONFIGS["IR-Alloc4"].blocks_per_path() == 36
        assert PAPER_ALLOC_CONFIGS["IR-ORAM"].blocks_per_path() == 43

    def test_uniform_plan_pl(self):
        assert AllocPlan("u", ()).blocks_per_path() == 60
        assert AllocPlan("u0", (), top_cached=0).blocks_per_path() == 100

    def test_z_vector_ranges(self):
        plan = PAPER_ALLOC_CONFIGS["IR-Alloc4"]
        z = plan.z_vector()
        assert z[10] == 1 and z[15] == 1
        assert z[16] == 2 and z[18] == 2
        assert z[19] == 4 and z[9] == 4

    def test_invalid_range_rejected(self):
        plan = AllocPlan("bad", ((5, 12, 2),))  # starts above cached top
        with pytest.raises(ConfigError):
            plan.z_vector()

    def test_scale_plan_monotone_and_bounded(self):
        plan = PAPER_ALLOC_CONFIGS["IR-ORAM"]
        z = scale_plan(plan, levels=15, top_cached=6)
        assert len(z) == 15
        memory = z[6:]
        assert all(a <= b for a, b in zip(memory, memory[1:]))
        assert set(memory) <= {2, 3, 4}

    def test_scale_plan_identity_geometry(self):
        plan = PAPER_ALLOC_CONFIGS["IR-Alloc1"]
        assert scale_plan(plan, 25, 10) == plan.z_vector()

    def test_apply_alloc_plan_direct_and_scaled(self):
        paper_oram = ORAMConfig.uniform(
            levels=25, user_blocks=1 << 20, top_cached_levels=10
        )
        direct = apply_alloc_plan(paper_oram, PAPER_ALLOC_CONFIGS["IR-Alloc4"])
        assert direct.blocks_per_path() == 36
        scaled_oram = SystemConfig.scaled().oram
        scaled = apply_alloc_plan(scaled_oram, PAPER_ALLOC_CONFIGS["IR-Alloc4"])
        assert scaled.blocks_per_path() < scaled_oram.blocks_per_path()

    def test_space_constraint_paper_scale(self):
        paper_oram = ORAMConfig.uniform(
            levels=25, user_blocks=1 << 20, top_cached_levels=10
        )
        for name, plan in PAPER_ALLOC_CONFIGS.items():
            shrunk = apply_alloc_plan(paper_oram, plan)
            assert shrunk.space_reduction_vs_uniform() < 0.01, name


class TestZSearch:
    def test_greedy_search_reduces_blocks_under_constraints(self):
        config = make_oram(levels=9, top=3)

        def evaluate(candidate):
            # synthetic model: cycles proportional to PL, evictions grow as
            # slots shrink
            pl = candidate.blocks_per_path()
            reduction = candidate.space_reduction_vs_uniform()
            return {"cycles": 1000.0 * pl, "evictions": 100.0 * (1 + 40 * reduction)}

        best = find_z_allocation(
            config, evaluate, max_space_reduction=0.05, max_eviction_increase=0.5
        )
        assert best.blocks_per_path() < config.blocks_per_path()
        assert best.space_reduction_vs_uniform() <= 0.05
        memory = best.z_per_level[3:]
        assert all(a <= b for a, b in zip(memory, memory[1:]))

    def test_search_keeps_uniform_when_nothing_helps(self):
        config = make_oram(levels=9, top=3)

        def evaluate(candidate):
            return {"cycles": 1.0, "evictions": 1.0}  # no improvement possible

        best = find_z_allocation(config, evaluate)
        assert best.z_per_level == config.z_per_level


class TestSStash:
    @pytest.fixture
    def sstash(self):
        return SStash(make_oram(levels=9, top=3), ways=2)

    def test_md5_index_deterministic_and_bounded(self):
        values = {_md5_index(block, 16) for block in range(200)}
        assert values <= set(range(16))
        assert _md5_index(7, 16) == _md5_index(7, 16)

    def test_addressable(self, sstash):
        assert sstash.addressable_by_block

    def test_place_and_lookup(self, sstash):
        assert not sstash.lookup_by_address(5)
        sstash.on_place(5)
        assert sstash.lookup_by_address(5)
        assert sstash.resident_count() == 1

    def test_double_place_rejected(self, sstash):
        sstash.on_place(5)
        with pytest.raises(ProtocolError):
            sstash.on_place(5)

    def test_remove_missing_rejected(self, sstash):
        with pytest.raises(ProtocolError):
            sstash.on_remove(5)

    def test_set_conflict_constraint(self, sstash):
        target = _md5_index(0, sstash.sets)
        conflicting = [
            b for b in range(3000) if _md5_index(b, sstash.sets) == target
        ]
        sstash.on_place(conflicting[0])
        sstash.on_place(conflicting[1])
        assert not sstash.may_place(conflicting[2])
        sstash.on_remove(conflicting[0])
        assert sstash.may_place(conflicting[2])

    def test_tt_table_size(self, sstash):
        # (2^3 - 1) buckets x 4 pointers x 12 bits
        assert sstash.tt_table_bits() == 7 * 4 * 12

    def test_paper_tt_overhead(self):
        oram = ORAMConfig.uniform(
            levels=25, user_blocks=1 << 20, top_cached_levels=10
        )
        sstash = SStash(oram)
        # Section VI-F: (2^10 - 1) * 4 pointers of 12 bits ~ 6 KB
        assert sstash.tt_table_bits() == (2**10 - 1) * 4 * 12
        assert 5.9 < sstash.tt_table_bits() / 8 / 1024 < 6.1


class TestDWBEngine:
    @pytest.fixture
    def system(self):
        return build_scheme("IR-DWB", SystemConfig.tiny())

    def test_no_candidate_returns_none(self, system):
        assert system.controller.dwb.dummy_slot(0) is None

    def test_flush_cleans_line(self, system):
        controller, llc = system.controller, system.llc
        dwb = controller.dwb
        llc.access(3, is_write=True)
        now = 0
        slots = 0
        while llc.is_dirty(3) and slots < 10:
            result = dwb.dummy_slot(now)
            assert result is not None
            now = max(now + 1000, result.finish_write)
            slots += 1
        assert not llc.is_dirty(3)
        assert llc.probe(3)  # still resident, just clean
        assert controller.stats.get("dwb.writebacks_completed") == 1
        assert 1 <= slots <= 3  # stage machine: up to three paths

    def test_abort_when_no_longer_lru(self, system):
        controller, llc = system.controller, system.llc
        dwb = controller.dwb
        sets = llc.config.sets
        llc.access(3, is_write=True)
        llc.access(3 + sets, is_write=True)
        first = dwb.dummy_slot(0)
        if dwb.stage != 0:
            # make the locked line MRU: flush must abort
            block = dwb.ptr[1]
            llc.access(block, is_write=False)
            other = 2 * sets + block
            llc.access(other, is_write=True)
            dwb.dummy_slot(5000)
            assert controller.stats.get("dwb.aborts") >= 1

    def test_stage_recorded(self, system):
        controller, llc = system.controller, system.llc
        llc.access(3, is_write=True)
        controller.dwb.dummy_slot(0)
        start_stages = controller.stats.histogram("dwb.start_stage")
        assert sum(start_stages.values()) == 1
        assert set(start_stages) <= {1, 2, 3}


class TestSchemes:
    def test_all_schemes_build(self):
        config = SystemConfig.tiny()
        for name in SCHEMES:
            components = build_scheme(name, config)
            assert components.controller is not None
            assert components.llc is not None

    def test_unknown_scheme_lists_options(self):
        with pytest.raises(KeyError, match="Baseline"):
            build_scheme("nope", SystemConfig.tiny())

    def test_ir_oram_composition(self):
        components = build_scheme("IR-ORAM", SystemConfig.tiny())
        assert components.controller.dwb is not None
        assert components.controller.treetop.addressable_by_block
        oram = components.config.oram
        assert min(oram.z_per_level[oram.top_cached_levels:]) < 4

    def test_dwb_with_delayed_remap_rejected(self):
        from repro.core.schemes import _baseline
        from repro.stats import Stats

        with pytest.raises(ConfigError):
            _baseline(
                SystemConfig.tiny(), Stats(), random.Random(1),
                dwb=True, delayed_remap=True,
            )

    def test_rho_builds_small_tree(self):
        components = build_scheme("Rho", SystemConfig.tiny())
        controller = components.controller
        assert isinstance(controller, RhoController)
        assert controller.small_oram.levels < components.config.oram.levels
        assert controller.small_budget > 0
