"""Unit tests for the stash, position map, PLB, and tree-top structures."""

import random

import pytest

from repro.config import ORAMConfig
from repro.errors import ProtocolError, StashOverflowError
from repro.oram.plb import PLB
from repro.oram.posmap import UNMAPPED, PositionMap
from repro.oram.stash import Stash
from repro.oram.treetop import TreeTopCache
from repro.oram.types import Namespace

from tests.conftest import make_oram


class TestStash:
    def test_add_and_lookup(self):
        stash = Stash(10)
        stash.add(5, leaf=3)
        assert 5 in stash
        assert stash.leaf_of(5) == 3
        assert len(stash) == 1

    def test_remove_returns_leaf(self):
        stash = Stash(10)
        stash.add(5, 3)
        assert stash.remove(5) == 3
        assert 5 not in stash

    def test_remove_missing_raises(self):
        with pytest.raises(ProtocolError):
            Stash(10).remove(1)

    def test_leaf_of_missing_raises(self):
        with pytest.raises(ProtocolError):
            Stash(10).leaf_of(1)

    def test_update_leaf(self):
        stash = Stash(10)
        stash.add(5, 3)
        stash.update_leaf(5, 9)
        assert stash.leaf_of(5) == 9

    def test_update_leaf_missing_raises(self):
        with pytest.raises(ProtocolError):
            Stash(10).update_leaf(5, 9)

    def test_overflow_only_when_enforced(self):
        stash = Stash(2)
        stash.add(1, 0)
        stash.add(2, 0)
        stash.add(3, 0)  # soft overflow allowed
        assert len(stash) == 3
        with pytest.raises(StashOverflowError):
            stash.add(4, 0, enforce_capacity=True)

    def test_peak_occupancy(self):
        stash = Stash(10)
        for block in range(5):
            stash.add(block, 0)
        stash.remove(0)
        assert stash.peak_occupancy == 5

    def test_threshold_and_excess(self):
        stash = Stash(4)
        for block in range(5):
            stash.add(block, 0)
        assert stash.over_threshold(4)
        assert not stash.over_threshold(5)
        assert stash.occupancy_excess() == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ProtocolError):
            Stash(0)


class TestNamespace:
    @pytest.fixture
    def ns(self):
        return Namespace(make_oram(levels=12, user_blocks=4096))

    def test_regions(self, ns):
        assert ns.posmap1_base == 4096
        assert ns.posmap2_base == 4096 + 256
        assert ns.total_blocks == 4096 + 256 + 16

    def test_kind_of(self, ns):
        from repro.oram.types import BlockKind

        assert ns.kind_of(0) is BlockKind.USER
        assert ns.kind_of(4096) is BlockKind.POSMAP1
        assert ns.kind_of(4096 + 256) is BlockKind.POSMAP2
        with pytest.raises(ValueError):
            ns.kind_of(ns.total_blocks)

    def test_posmap1_block_groups_of_16(self, ns):
        assert ns.posmap1_block(0) == 4096
        assert ns.posmap1_block(15) == 4096
        assert ns.posmap1_block(16) == 4097

    def test_posmap2_block(self, ns):
        assert ns.posmap2_block(4096) == ns.posmap2_base
        assert ns.posmap2_block(4096 + 16) == ns.posmap2_base + 1

    def test_parent_chain(self, ns):
        pm1 = ns.posmap1_block(100)
        pm2 = ns.posmap2_block(pm1)
        assert ns.parent_block(100) == pm1
        assert ns.parent_block(pm1) == pm2
        assert ns.parent_block(pm2) is None

    def test_path_type_for(self, ns):
        from repro.oram.types import PathType

        assert ns.path_type_for(5) is PathType.DATA
        assert ns.path_type_for(4096) is PathType.POS1
        assert ns.path_type_for(ns.posmap2_base) is PathType.POS2


class TestPositionMap:
    @pytest.fixture
    def posmap(self):
        oram = make_oram()
        ns = Namespace(oram)
        return PositionMap(ns, oram.leaves, random.Random(1))

    def test_initial_mapping_in_range(self, posmap):
        for block in range(0, posmap.namespace.total_blocks, 97):
            assert 0 <= posmap.leaf_of(block) < posmap.leaves

    def test_remap_changes_and_counts(self, posmap):
        posmap.remap(5)
        assert posmap.remap_count == 1
        assert 0 <= posmap.leaf_of(5) < posmap.leaves

    def test_discard_and_restore(self, posmap):
        posmap.discard(5)
        assert not posmap.is_mapped(5)
        with pytest.raises(ProtocolError):
            posmap.leaf_of(5)
        leaf = posmap.restore(5)
        assert posmap.leaf_of(5) == leaf

    def test_restore_mapped_block_raises(self, posmap):
        with pytest.raises(ProtocolError):
            posmap.restore(5)

    def test_remap_uniformity(self, posmap):
        leaves = [posmap.remap(0) for _ in range(2000)]
        low = sum(1 for leaf in leaves if leaf < posmap.leaves // 2)
        assert 800 < low < 1200


class TestPLB:
    @pytest.fixture
    def plb(self):
        return PLB(make_oram(plb_sets=4, plb_ways=2))

    def test_fill_then_hit(self, plb):
        plb.fill(100)
        assert plb.lookup(100)
        assert plb.contains(100)

    def test_miss_counted(self, plb):
        assert not plb.lookup(100)
        assert plb.stats.get("plb.lookup_misses") == 1

    def test_eviction_returned(self, plb):
        blocks = [4 * i for i in range(3)]  # same set (4 sets)
        victims = [plb.fill(block) for block in blocks]
        assert victims[0] is None and victims[1] is None
        assert victims[2].block == blocks[0]

    def test_mark_dirty_then_evict_carries_dirty(self, plb):
        blocks = [4 * i for i in range(3)]
        plb.fill(blocks[0])
        plb.mark_dirty(blocks[0])
        plb.fill(blocks[1])
        victim = plb.fill(blocks[2])
        assert victim.block == blocks[0] and victim.dirty

    def test_flush_dirty(self, plb):
        plb.fill(1, dirty=True)
        plb.fill(2, dirty=False)
        dirty = plb.flush_dirty()
        assert dirty == [1]
        assert plb.flush_dirty() == []

    def test_occupancy(self, plb):
        plb.fill(1)
        plb.fill(2)
        assert plb.occupancy() == 2


class TestTreeTopCache:
    def test_covers_levels(self):
        top = TreeTopCache(make_oram(top=3))
        assert top.covers_level(0)
        assert top.covers_level(2)
        assert not top.covers_level(3)

    def test_not_addressable(self):
        top = TreeTopCache(make_oram(top=3))
        assert not top.addressable_by_block
        assert not top.lookup_by_address(42)

    def test_capacity_entries(self):
        top = TreeTopCache(make_oram(top=3))
        assert top.capacity_entries() == 4 * (1 + 2 + 4)

    def test_placement_hooks_count(self):
        top = TreeTopCache(make_oram(top=3))
        assert top.may_place(1)
        top.on_place(1)
        top.on_remove(1)
        assert top.stats.get("treetop.placed") == 1
        assert top.stats.get("treetop.removed") == 1
