"""Unit and property tests for the Ring ORAM controller.

The hypothesis properties pin the four protocol invariants the ISSUE
names: ReadPath touches exactly one slot per bucket, valid-slot
accounting survives EarlyReshuffle, EvictPath follows the
reverse-lexicographic schedule, and the ring stash stays within its
bound (tracked via the high-water mark).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.oram.ring import (
    RING_EVICT_RATE,
    RING_S,
    RING_Z,
    RingController,
    _bit_reverse,
    scaled_ring_levels,
)
from repro.oram.tree import EMPTY
from repro.oram.types import PathType, Request, RequestKind
from repro.sim.runner import make_workload
from repro.sim.simulator import Simulator
from repro.validate.invariants import InvariantAuditor

from tests.conftest import derived_seed


@pytest.fixture
def ring():
    return build_scheme("Ring", SystemConfig.tiny()).controller


def drive(controller, request, now=0, limit=200):
    controller.enqueue(request)
    slots = 0
    while request.completion is None and slots < limit:
        result = controller.step(now, allow_dummy=True)
        assert result is not None
        now = max(now + 1, result.finish_write)
        slots += 1
    assert request.completion is not None
    return now


def drive_blocks(controller, blocks, rng, now=0):
    for block in blocks:
        request = Request(
            block=block,
            kind=RequestKind.READ,
            arrival=now,
            is_write=rng.random() < 0.4,
        )
        now = drive(controller, request, now=now, limit=400)
    return now


class TestSizing:
    def test_ring_levels_scale_with_llc(self):
        assert scaled_ring_levels(25, llc_lines=32768) >= 10
        assert scaled_ring_levels(9, llc_lines=256) <= 8

    def test_ring_tree_never_taller_than_main(self):
        assert scaled_ring_levels(5, llc_lines=1 << 20) == 4

    def test_bucket_geometry(self, ring):
        assert ring.ring_oram.z_per_level[0] == RING_Z + RING_S
        for _, _, bucket in ring.iter_ring_buckets():
            assert len(bucket.slots) == RING_Z + RING_S


class TestPromotionAndHits:
    def test_promotion_after_main_access(self, ring):
        request = Request(block=3, kind=RequestKind.READ, arrival=0)
        drive(ring, request)
        assert 3 in ring.ring_map
        assert not ring.posmap.is_mapped(3)
        assert ring.stats.get("ring.promotions") >= 1

    def test_second_access_hits_ring_structures(self, ring):
        first = Request(block=3, kind=RequestKind.READ, arrival=0)
        now = drive(ring, first)
        second = Request(block=3, kind=RequestKind.READ, arrival=now)
        drive(ring, second, now=now)
        hits = (
            ring.stats.get("ring.hits")
            + ring.stats.get("ring.stash_hits")
        )
        assert hits >= 1

    def test_ring_budget_enforced(self, rng):
        controller = build_scheme("Ring", SystemConfig.tiny()).controller
        drive_blocks(
            controller, range(controller.ring_budget + 20), rng
        )
        active = len(controller.ring_map) - len(controller._evicting)
        assert active <= controller.ring_budget
        assert controller.stats.get("ring.evictions") > 0

    def test_extraction_round_trip(self, rng):
        controller = build_scheme("Ring", SystemConfig.tiny()).controller
        blocks = list(range(controller.ring_budget + 8))
        now = drive_blocks(controller, blocks, rng)
        for _ in range(600):
            if not controller.has_any_real_work():
                break
            result = controller.step(now, allow_dummy=True)
            if result is None:
                break
            now = max(now + 1, result.finish_write)
        assert controller.stats.get("ring.main_reinserts") > 0
        for block in blocks:
            in_ring = block in controller.ring_map
            pending = block in controller._pending_main_insert
            assert in_ring or pending or controller.posmap.is_mapped(block)


class TestReadPathOneTouch:
    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_read_path_touches_one_slot_per_bucket(self, seed):
        """Before any reshuffle burst, a ReadPath's footprint holds at
        most one address per (level, position) bucket."""
        controller = build_scheme(
            "Ring", SystemConfig.tiny(), rng=random.Random(seed)
        ).controller
        layout = controller.ring_layout
        levels = controller.ring_oram.levels
        per_path = []

        def observe(record):
            if len(record.read_addresses) == levels:
                per_path.append((record.leaf, list(record.read_addresses)))

        controller.observer = observe
        rng = random.Random(seed ^ 0xA5)
        drive_blocks(controller, [rng.randrange(60) for _ in range(40)], rng)
        assert per_path, "no plain ReadPath observed"
        for leaf, addresses in per_path:
            # prefix before any appended reshuffle burst: exactly one
            # address inside each bucket along the path to ``leaf``
            prefix = addresses[:levels]
            assert len(prefix) == levels
            for level, address in enumerate(prefix):
                position = leaf >> (levels - 1 - level)
                bucket = layout.bucket_addresses(level, position)
                assert address in bucket

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_touched_slots_never_rereads(self, seed):
        """Between reshuffles a bucket's touched set only grows, never
        re-touches, and its counter always equals the set size."""
        controller = build_scheme(
            "Ring", SystemConfig.tiny(), rng=random.Random(seed)
        ).controller
        rng = random.Random(seed ^ 0x5A)
        drive_blocks(controller, [rng.randrange(30) for _ in range(50)], rng)
        for _, _, bucket in controller.iter_ring_buckets():
            assert bucket.count == len(bucket.touched)
            assert bucket.count < RING_S
            for slot in bucket.touched:
                # a touched slot never covers a live real block
                assert bucket.slots[slot] == EMPTY


class TestEarlyReshuffle:
    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_valid_slots_survive_reshuffle(self, seed):
        """Reshuffling preserves exactly the bucket's real blocks and
        resets its counters; total real-block custody is conserved."""
        controller = build_scheme(
            "Ring", SystemConfig.tiny(), rng=random.Random(seed)
        ).controller
        reshuffles = {"n": 0}
        original = controller._ring_reshuffle

        def checked(bucket):
            before = sorted(b for b in bucket.slots if b != EMPTY)
            original(bucket)
            after = sorted(b for b in bucket.slots if b != EMPTY)
            assert after == before
            assert bucket.count == 0
            assert not bucket.touched
            reshuffles["n"] += 1

        controller._ring_reshuffle = checked
        rng = random.Random(seed ^ 0x3C)
        drive_blocks(controller, [rng.randrange(40) for _ in range(60)], rng)
        assert reshuffles["n"] == controller.stats.get(
            "ring.early_reshuffles"
        )
        assert reshuffles["n"] > 0

    def test_counter_reaching_s_forces_reshuffle(self, ring, rng):
        drive_blocks(ring, [rng.randrange(20) for _ in range(80)], rng)
        # the run must have produced reshuffles, and no bucket may sit at
        # or above the S threshold between accesses
        assert ring.stats.get("ring.early_reshuffles") > 0
        for _, _, bucket in ring.iter_ring_buckets():
            assert bucket.count < RING_S


class TestEvictSchedule:
    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_reverse_lexicographic_order(self, seed):
        """EvictPath leaves follow bit_reverse(G) in issue order."""
        controller = build_scheme(
            "Ring", SystemConfig.tiny(), rng=random.Random(seed)
        ).controller
        levels = controller.ring_oram.levels
        evict_leaves = []

        def observe(record):
            if (
                record.path_type is PathType.EVICTION
                and len(record.read_addresses) == RING_Z * levels
            ):
                evict_leaves.append(record.leaf)

        controller.observer = observe
        rng = random.Random(seed ^ 0x77)
        drive_blocks(controller, [rng.randrange(50) for _ in range(40)], rng)
        assert len(evict_leaves) >= 2
        expected = [
            _bit_reverse(g % controller.ring_leaves, levels - 1)
            for g in range(len(evict_leaves))
        ]
        assert evict_leaves == expected

    def test_evict_rate_bounds_reads_between_evictions(self, ring, rng):
        drive_blocks(ring, [rng.randrange(50) for _ in range(40)], rng)
        assert ring._ring_reads_since_evict <= RING_EVICT_RATE
        assert ring.stats.get("ring.evict_paths") > 0

    def test_bit_reverse_is_an_involution(self):
        for bits in (1, 3, 7):
            for value in range(1 << bits):
                assert _bit_reverse(_bit_reverse(value, bits), bits) == value


class TestStashBound:
    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_stash_high_water_stays_bounded(self, seed):
        controller = build_scheme(
            "Ring", SystemConfig.tiny(), rng=random.Random(seed)
        ).controller
        rng = random.Random(seed ^ 0xE1)
        drive_blocks(controller, [rng.randrange(80) for _ in range(60)], rng)
        capacity = controller.ring_oram.stash_capacity
        assert controller.ring_stash.peak_occupancy <= capacity
        assert len(controller.ring_stash) <= capacity


class TestAuditorIntegration:
    def test_audited_run_stays_clean(self, request):
        seed = derived_seed(request.node.nodeid, salt=2) % (2**32)
        controller = build_scheme(
            "Ring", SystemConfig.tiny(), rng=random.Random(seed)
        ).controller
        auditor = InvariantAuditor(controller)
        rng = random.Random(seed ^ 0x99)
        now = 0
        for index in range(120):
            req = Request(
                block=rng.randrange(40), kind=RequestKind.READ, arrival=now
            )
            now = drive(controller, req, now=now, limit=400)
            if index % 10 == 0:
                auditor.audit_now()
        auditor.audit_now()
        assert auditor.audits > 0


class TestFullRun:
    def test_simulated_run_exposes_ring_counters(self):
        config = SystemConfig.tiny()
        components = build_scheme("Ring", config)
        trace = make_workload("random", config, 250, seed=4)
        Simulator(components, trace).run()
        stats = components.stats
        assert stats.get("paths.ring_tree") > 0
        assert stats.get("ring.evict_paths") > 0
        assert stats.get("ring.early_reshuffles") > 0
        assert stats.get("ring.dummies") > 0

    def test_native_batch_disabled(self):
        assert RingController.SUPPORTS_NATIVE_BATCH is False
