"""Tests for the CLI entry point and result persistence."""

import pytest

from repro.__main__ import build_parser, main
from repro.config import SystemConfig
from repro.errors import ReproError
from repro.sim.persistence import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.sim.runner import run_benchmark


class TestCLI:
    def test_parser_rejects_unknown_scheme(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "NotAScheme", "gcc"])

    def test_schemes_command(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "IR-ORAM" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "random" in out

    def test_run_command(self, capsys):
        code = main(
            ["run", "Baseline", "gcc", "--records", "300", "--levels", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles=" in out and "PTd" in out

    def test_compare_command(self, capsys):
        code = main(
            [
                "compare", "gcc",
                "--schemes", "Baseline", "IR-Alloc",
                "--records", "300", "--levels", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup=" in out

    def test_zsearch_command(self, capsys):
        code = main(
            ["zsearch", "--records", "250", "--levels", "9",
             "--max-space-reduction", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "z vector" in out


class TestPersistence:
    @pytest.fixture
    def result(self):
        return run_benchmark(
            "Baseline", "gcc", SystemConfig.tiny(), records=200
        )

    def test_round_trip(self, result, tmp_path):
        path = save_results([result], tmp_path / "results.json")
        loaded = load_results(path)
        assert len(loaded) == 1
        restored = loaded[0]
        assert restored.cycles == result.cycles
        assert restored.path_counts == result.path_counts
        assert restored.hit_levels == result.hit_levels
        assert restored.speedup_over(result) == pytest.approx(1.0)

    def test_int_keys_survive(self, result, tmp_path):
        result.hit_levels = {3: 5.0, "stash": 2.0}
        path = save_results([result], tmp_path / "r.json")
        restored = load_results(path)[0]
        assert restored.hit_levels == {3: 5.0, "stash": 2.0}

    def test_version_check(self, result):
        payload = result_to_dict(result)
        payload["version"] = 99
        with pytest.raises(ReproError):
            result_from_dict(payload)

    def test_non_list_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ReproError):
            load_results(path)
