"""Seed-sweep equivalence: optimized hot paths vs the reference write phase.

The optimized write phase (leaf-prefix stash index + optional C kernels)
must be *bit-identical* to the retained reference implementation
(``PathORAMController._write_path_reference``): same cycles, same path
counts, same counters, for any seed.  These tests run whole simulations
both ways and compare everything.
"""

import random

import pytest

from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.oram.controller import PathORAMController
from repro.sim.runner import run_benchmark
from repro.sim.simulator import Simulator
from repro.traces.synthetic import random_trace

SCHEMES = ["Baseline", "IR-Stash", "IR-ORAM"]
SEEDS = [1, 2, 3, 4, 5]


def _fingerprint(result):
    return (
        result.cycles,
        tuple(sorted(result.path_counts.items())),
        tuple(sorted(result.counters.items())),
    )


def _run(scheme, seed, reference=False, monkeypatch=None):
    config = SystemConfig.tiny()
    if reference:
        monkeypatch.setattr(
            PathORAMController,
            "_write_path",
            PathORAMController._write_path_reference,
        )
    return run_benchmark(scheme, "random", config, records=220, seed=seed)


class TestWritePhaseEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_reference_identical(self, scheme, seed, monkeypatch):
        optimized = _fingerprint(_run(scheme, seed))
        reference = _fingerprint(
            _run(scheme, seed, reference=True, monkeypatch=monkeypatch)
        )
        assert optimized == reference

    def test_reference_is_actually_different_code(self):
        assert (
            PathORAMController._write_path
            is not PathORAMController._write_path_reference
        )


class TestNativeFallbackEquivalence:
    """The pure-Python fallbacks must match the C kernels exactly."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fallback_identical(self, scheme, monkeypatch):
        from repro.perf import native

        if native.fastpath is None:
            pytest.skip("native kernels unavailable; nothing to compare")
        with_native = _fingerprint(_run(scheme, seed=11))

        import repro.mem.dram as dram
        import repro.oram.controller as controller
        import repro.oram.stash as stash
        import repro.oram.tree as tree

        monkeypatch.setattr(dram, "_native", None)
        monkeypatch.setattr(tree, "_native", None)
        monkeypatch.setattr(stash, "_native", None)
        monkeypatch.setattr(controller, "_fastpath", None)
        without_native = _fingerprint(_run(scheme, seed=11))
        assert with_native == without_native


class TestEvictionPressureEquivalence:
    """A tiny stash forces background evictions through both write phases."""

    def test_under_eviction_pressure(self, monkeypatch):
        from dataclasses import replace

        config = SystemConfig.tiny()
        config = config.with_oram(
            replace(config.oram, eviction_threshold=8)
        )

        def run(reference):
            if reference:
                monkeypatch.setattr(
                    PathORAMController,
                    "_write_path",
                    PathORAMController._write_path_reference,
                )
            components = build_scheme(
                "Baseline", config, rng=random.Random(3)
            )
            trace = random_trace(200, config.oram.user_blocks, random.Random(3))
            result = Simulator(components, trace).run()
            monkeypatch.undo()
            return _fingerprint(result)

        assert run(reference=False) == run(reference=True)
