"""Edge-case tests: request types, runner, result helpers, run_all wiring."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.experiments.run_all import ALL_EXPERIMENTS
from repro.oram.types import PathType, Request, RequestKind
from repro.sim.results import SimulationResult
from repro.sim.runner import make_workload, run_benchmark
from repro.traces.benchmarks import BENCHMARKS, benchmark_trace


class TestRequest:
    def test_merge_counts_waiters(self):
        request = Request(block=1, kind=RequestKind.READ, arrival=0)
        request.merge()
        request.merge()
        assert request.waiters == 3

    def test_defaults(self):
        request = Request(block=1, kind=RequestKind.WRITEBACK, arrival=5)
        assert request.completion is None
        assert request.paths_used == 0
        assert not request.is_write


class TestPathType:
    def test_is_posmap(self):
        assert PathType.POS1.is_posmap
        assert PathType.POS2.is_posmap
        assert not PathType.DATA.is_posmap
        assert not PathType.DUMMY.is_posmap

    def test_values_stable(self):
        # experiment counters key off these strings
        assert PathType.DATA.value == "PTd"
        assert PathType.DUMMY.value == "PTm"
        assert PathType.POS1.value == "PTp.pos1"


class TestRunner:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            make_workload("nope", SystemConfig.tiny(), 100)

    def test_workload_names(self):
        config = SystemConfig.tiny()
        for name in ("mix", "random", "gcc"):
            trace = make_workload(name, config, 50)
            assert len(trace) >= 48

    def test_run_benchmark_default_config(self):
        result = run_benchmark("Baseline", "gcc",
                               SystemConfig.tiny(), records=100)
        assert isinstance(result, SimulationResult)


class TestDistanceScale:
    def test_scales_scan_region(self, ):
        import random

        model = BENCHMARKS["gcc"]
        small = benchmark_trace(
            model, 16384, 600, random.Random(1), distance_scale=0.25
        )
        large = benchmark_trace(
            model, 16384, 600, random.Random(1), distance_scale=1.0
        )
        # a smaller scan region means fewer distinct blocks
        assert small.footprint() <= large.footprint() * 1.2


class TestRunAllWiring:
    def test_every_regenerator_registered(self):
        names = [name for name, _ in ALL_EXPERIMENTS]
        for expected in (
            "Table I", "Table II", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5",
            "Fig. 6", "Fig. 7", "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13",
            "Fig. 14", "Fig. 15", "Fig. 16", "Ablation", "Z-search",
        ):
            assert expected in names

    def test_ids_unique(self):
        names = [name for name, _ in ALL_EXPERIMENTS]
        assert len(names) == len(set(names))


class TestExport:
    def test_export_subset(self, tmp_path):
        from repro.experiments.export import export

        path = export(str(tmp_path / "out.md"), ids=["Table I", "Fig. 7"])
        text = path.read_text()
        assert "Table I" in text
        assert "Fig. 7" in text
        assert "Fig. 10" not in text
