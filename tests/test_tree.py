"""Unit tests for the ORAM tree."""

import random

import pytest

from repro.errors import ProtocolError
from repro.oram.tree import EMPTY, ORAMTree

from tests.conftest import make_oram


@pytest.fixture
def tree():
    return ORAMTree(make_oram(levels=6, top=2))


class TestGeometry:
    def test_bucket_index_heap_order(self):
        assert ORAMTree.bucket_index(0, 0) == 0
        assert ORAMTree.bucket_index(1, 1) == 2
        assert ORAMTree.bucket_index(3, 5) == 12

    def test_bucket_bounds_checked(self, tree):
        with pytest.raises(ProtocolError):
            tree.bucket(6, 0)
        with pytest.raises(ProtocolError):
            tree.bucket(2, 4)

    def test_path_position(self, tree):
        # leaf 5 = 0b00101 over 6 levels (leaf bits = 5 of 32 leaves)
        assert tree.path_position(5, 0) == 0
        assert tree.path_position(5, 5) == 5
        assert tree.path_position(31, 1) == 1

    def test_path_buckets_skips_zero_z(self):
        oram = make_oram(levels=6, top=2).with_z_vector((4, 4, 0, 4, 4, 4))
        tree = ORAMTree(oram)
        levels = [level for level, _, _ in tree.path_buckets(0)]
        assert 2 not in levels
        assert levels == [0, 1, 3, 4, 5]

    def test_deepest_common_level(self, tree):
        assert tree.deepest_common_level(0, 0) == 5
        assert tree.deepest_common_level(0, 31) == 0
        assert tree.deepest_common_level(0b10000, 0b10001) == 4

    def test_sparse_representation_above_limit(self):
        oram = make_oram(levels=22, top=8, user_blocks=1 << 18)
        tree = ORAMTree(oram)
        assert not tree._dense
        bucket = tree.bucket(21, 12345)
        assert bucket == [EMPTY] * 4


class TestPlacement:
    def test_place_fills_first_free_slot(self, tree):
        assert tree.place(3, 2, 77)
        assert tree.bucket(3, 2)[0] == 77
        assert tree.level_used[3] == 1

    def test_place_rejects_full_bucket(self, tree):
        for block in range(4):
            assert tree.place(3, 2, block)
        assert not tree.place(3, 2, 99)
        assert tree.level_used[3] == 4

    def test_free_slots(self, tree):
        assert tree.free_slots(2, 1) == 4
        tree.place(2, 1, 5)
        assert tree.free_slots(2, 1) == 3

    def test_read_and_clear_returns_blocks_with_levels(self, tree):
        tree.place(0, 0, 10)
        tree.place(5, 7, 20)
        removed = dict(tree.read_and_clear(7))
        assert removed == {10: 0, 20: 5}
        assert tree.total_used() == 0

    def test_read_and_clear_misses_other_paths(self, tree):
        tree.place(5, 7, 20)
        removed = tree.read_and_clear(8)
        assert removed == []
        assert tree.level_used[5] == 1

    def test_utilization_accounting(self, tree):
        tree.place(1, 0, 1)
        tree.place(1, 1, 2)
        util = tree.level_utilization()
        assert util[1] == pytest.approx(2 / 8)
        tree.read_and_clear(0)
        assert tree.level_utilization()[1] == pytest.approx(1 / 8)


class TestInitialize:
    def test_all_blocks_placed_or_overflowed(self):
        oram = make_oram(levels=8, top=2)
        tree = ORAMTree(oram)
        rng = random.Random(7)
        leaves = {
            block: rng.randrange(oram.leaves)
            for block in range(oram.user_blocks)
        }
        overflow = tree.initialize(
            range(oram.user_blocks), leaves.__getitem__, rng
        )
        assert tree.total_used() + len(overflow) == oram.user_blocks
        # at ~50% provisioning, overflow should be rare
        assert len(overflow) < oram.user_blocks * 0.02

    def test_initialized_blocks_lie_on_their_paths(self):
        oram = make_oram(levels=7, top=2)
        tree = ORAMTree(oram)
        rng = random.Random(3)
        leaves = {
            block: rng.randrange(oram.leaves) for block in range(200)
        }
        tree.initialize(range(200), leaves.__getitem__, rng)
        for level in range(7):
            for position in range(1 << level):
                for block in tree.bucket(level, position):
                    if block == EMPTY:
                        continue
                    assert tree.path_position(leaves[block], level) == position

    def test_bottom_heavy_placement(self):
        oram = make_oram(levels=8, top=2)
        tree = ORAMTree(oram)
        rng = random.Random(5)
        leaves = {
            block: rng.randrange(oram.leaves)
            for block in range(oram.user_blocks)
        }
        tree.initialize(range(oram.user_blocks), leaves.__getitem__, rng)
        util = tree.level_utilization()
        assert util[7] > util[3]
