"""Checkpoint/resume tests: frozen runs must finish bit-identical.

The contract under test (docs/resilience.md): a run checkpointed every N
accesses and resumed from the latest checkpoint produces exactly the
cycles, counters, and golden digest of the uninterrupted run — for every
scheme, audited or not.  The golden corpus committed at
``benchmarks/golden/tiny.json`` supplies the ground truth, so these tests
also prove resumed runs match what *previous* builds recorded.
"""

import json
import os
import pickle
import tempfile

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import api
from repro.core.schemes import SCHEMES
from repro.errors import CheckpointError, ProtocolError
from repro.perf import engine
from repro.sim import checkpoint as ckpt_mod
from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.persistence import CampaignJournal
from repro.validate import golden


@pytest.fixture(autouse=True)
def isolated_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    engine.reset()
    yield
    engine.reset()


def _golden_spec(scheme, workload="mix"):
    return api.RunSpec(
        scheme=scheme,
        workload=workload,
        records=golden.GOLDEN_RECORDS,
        seed=golden.GOLDEN_SEED,
        config_name="tiny",
    )


def _corpus():
    return golden.load()["entries"]


class TestResumeMatchesGolden:
    @given(
        scheme=st.sampled_from(sorted(SCHEMES)),
        workload=st.sampled_from(golden.GOLDEN_WORKLOADS),
        every=st.integers(min_value=10, max_value=250),
        audit=st.booleans(),
    )
    def test_checkpoint_resume_reproduces_golden_digest(
        self, scheme, workload, every, audit
    ):
        """Checkpoint at a drawn cadence, resume, compare to the corpus."""
        expected = _corpus()[golden.entry_key(_golden_spec(scheme, workload))]
        spec = _golden_spec(scheme, workload)
        saved_audit = os.environ.get("REPRO_AUDIT")
        try:
            if audit:
                os.environ["REPRO_AUDIT"] = "1"
            else:
                os.environ.pop("REPRO_AUDIT", None)
            with tempfile.TemporaryDirectory() as scratch:
                path = os.path.join(scratch, "run.ckpt")
                full = api.run(
                    spec, checkpoint_every=every, checkpoint_path=path
                )
                assert golden.entry_from(full)["digest"] == expected["digest"]
                if os.path.exists(path):  # every > total paths writes none
                    resumed = api.resume_run(path)
                    entry = golden.entry_from(resumed)
                    assert entry["digest"] == expected["digest"]
                    assert resumed.cycles == expected["cycles"]
                    assert entry["counters"] == expected["counters"]
        finally:
            if saved_audit is None:
                os.environ.pop("REPRO_AUDIT", None)
            else:
                os.environ["REPRO_AUDIT"] = saved_audit

    def test_resume_is_deterministic(self, tmp_path):
        spec = _golden_spec("IR-ORAM")
        path = str(tmp_path / "run.ckpt")
        api.run(spec, checkpoint_every=60, checkpoint_path=path)
        first = api.resume_run(path)
        second = api.resume_run(path)
        assert first.cycles == second.cycles
        assert first.result.counters == second.result.counters

    def test_resumed_run_keeps_checkpointing(self, tmp_path):
        spec = _golden_spec("Baseline")
        path = str(tmp_path / "run.ckpt")
        full = api.run(spec, checkpoint_every=40, checkpoint_path=path)
        saves_full = full.stats.get("checkpoint.saves")
        assert saves_full and saves_full > 1
        before = os.path.getmtime(path)
        resumed = api.resume_run(path)
        # The resumed run re-arms the same cadence and rewrites the file.
        assert resumed.stats.get("checkpoint.saves") > 0
        assert os.path.getmtime(path) >= before

    def test_checkpoint_limit_bounds_saves(self, tmp_path):
        spec = _golden_spec("Baseline")
        path = str(tmp_path / "run.ckpt")
        out = api.run(
            spec, checkpoint_every=30, checkpoint_path=path,
            checkpoint_limit=1,
        )
        assert out.stats.get("checkpoint.saves") == 1

    def test_saves_counter_stays_out_of_result_counters(self, tmp_path):
        spec = _golden_spec("Baseline")
        path = str(tmp_path / "run.ckpt")
        out = api.run(spec, checkpoint_every=50, checkpoint_path=path)
        assert "checkpoint.saves" not in out.result.counters
        assert out.stats.get("checkpoint.saves") > 0


class TestCheckpointFormat:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "missing.ckpt"))

    def test_torn_file_raises(self, tmp_path):
        spec = _golden_spec("Baseline")
        path = str(tmp_path / "run.ckpt")
        api.run(spec, checkpoint_every=50, checkpoint_path=path)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="torn or unreadable"):
            load_checkpoint(path)

    def test_version_mismatch_raises(self, tmp_path, monkeypatch):
        spec = _golden_spec("Baseline")
        path = str(tmp_path / "run.ckpt")
        api.run(spec, checkpoint_every=50, checkpoint_path=path)
        payload = pickle.load(open(path, "rb"))
        payload.version = 999
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(path)

    def test_foreign_build_salt_refuses_resume(self, tmp_path, monkeypatch):
        spec = _golden_spec("Baseline")
        path = str(tmp_path / "run.ckpt")
        api.run(spec, checkpoint_every=50, checkpoint_path=path)
        monkeypatch.setattr(ckpt_mod, "_SALT", "deadbeef" * 8)
        with pytest.raises(CheckpointError, match="different simulator"):
            load_checkpoint(path)

    def test_not_a_checkpoint_raises(self, tmp_path):
        path = str(tmp_path / "junk.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"surprise": True}, handle)
        with pytest.raises(CheckpointError, match="SimulatorCheckpoint"):
            load_checkpoint(path)

    def test_write_is_atomic(self, tmp_path):
        spec = _golden_spec("Baseline")
        path = str(tmp_path / "run.ckpt")
        api.run(spec, checkpoint_every=40, checkpoint_path=path)
        leftovers = [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]
        assert leftovers == []
        payload = load_checkpoint(path)
        assert payload.access_index > 0
        assert payload.spec.scheme == "Baseline"

    def test_run_twice_is_refused(self):
        from repro.core.schemes import build_scheme
        from repro.sim.simulator import Simulator
        from repro.sim.runner import make_workload
        from repro.config import SystemConfig
        from repro.stats import Stats
        import random as random_mod

        config = SystemConfig.tiny()
        stats = Stats()
        components = build_scheme(
            "Baseline", config, stats, random_mod.Random(1)
        )
        trace = make_workload("mix", config, 50, 1)
        sim = Simulator(components, trace)
        sim.run()
        with pytest.raises(ProtocolError, match="use resume"):
            sim.run()


class TestCampaignResume:
    def _specs(self):
        return [
            api.RunSpec(
                scheme=scheme, workload="mix", records=120, seed=3,
                config_name="tiny",
            )
            for scheme in ["Baseline", "IR-ORAM", "Rho"]
        ]

    def test_campaign_skips_journaled_points(self, tmp_path, monkeypatch):
        journal_path = tmp_path / "journal.jsonl"
        calls = []
        real = engine.run_spec_warm

        def counting(spec):
            calls.append(spec.scheme)
            return real(spec)

        monkeypatch.setattr(engine, "run_spec_warm", counting)
        specs = self._specs()
        first = api.run_campaign(specs, str(journal_path), jobs=1)
        assert len(calls) == 3
        second = api.run_campaign(specs, str(journal_path), jobs=1)
        assert len(calls) == 3  # nothing re-simulated
        for a, b in zip(first, second):
            assert a.cycles == b.cycles
            assert a.counters == b.counters

    def test_partial_journal_resumes_remainder(self, tmp_path, monkeypatch):
        journal_path = tmp_path / "journal.jsonl"
        specs = self._specs()
        api.run_campaign(specs[:2], str(journal_path), jobs=1)
        calls = []
        real = engine.run_spec_warm

        def counting(spec):
            calls.append(spec.scheme)
            return real(spec)

        monkeypatch.setattr(engine, "run_spec_warm", counting)
        results = api.run_campaign(specs, str(journal_path), jobs=1)
        assert calls == ["Rho"]
        assert len(results) == 3

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        specs = self._specs()
        api.run_campaign(specs, str(journal_path), jobs=1)
        with open(journal_path, "a") as handle:
            handle.write('{"key": "half-written')  # crash mid-append
        journal = CampaignJournal(str(journal_path))
        assert len(journal) == 3

    def test_journal_results_round_trip_exactly(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        specs = self._specs()
        fresh = [api.run(spec).result for spec in specs]
        campaign = api.run_campaign(specs, str(journal_path), jobs=1)
        reloaded = api.run_campaign(specs, str(journal_path), jobs=1)
        for want, got, again in zip(fresh, campaign, reloaded):
            assert want.cycles == got.cycles == again.cycles
            assert want.counters == got.counters == again.counters


class TestCheckpointCLI:
    def test_cli_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "cli.ckpt")
        assert main([
            "run", "IR-ORAM", "mix", "--records", "200", "--seed", "11",
            "--levels", "11",
            "--checkpoint-every", "40", "--checkpoint-out", path,
        ]) == 0
        first = capsys.readouterr().out
        assert main(["run", "--resume", path]) == 0
        second = capsys.readouterr().out
        assert "(resumed)" in second
        # Same cycles line either way.
        def cycles_of(text):
            for line in text.splitlines():
                if "cycles=" in line:
                    return line.split("cycles=")[1].split()[0]
            raise AssertionError(f"no cycles in {text!r}")

        assert cycles_of(first) == cycles_of(second)

    def test_cli_requires_scheme_without_resume(self, capsys):
        from repro.__main__ import main

        assert main(["run"]) == 2
        assert "required unless --resume" in capsys.readouterr().err
