"""Unit tests for trace records, generators, mixing, and persistence.

Uses the per-test-deterministic ``rng`` fixture from ``conftest.py``.
"""

import pytest

from repro.errors import TraceError
from repro.traces.benchmarks import BENCHMARKS, benchmark_trace, table2_rows
from repro.traces.io import load_trace, save_trace
from repro.traces.mix import benchmark_mix_with_random_tail, mix_traces, standard_mix
from repro.traces.synthetic import random_trace, strided_trace, zipf_trace
from repro.traces.trace import Trace, concat


class TestTrace:
    def test_malformed_record_rejected(self):
        with pytest.raises(TraceError):
            Trace("bad", [(-1, 0, False)])

    def test_statistics(self):
        trace = Trace("t", [(1000, 1, False), (1000, 2, True), (0, 1, True)])
        assert trace.instructions() == 2000
        assert trace.reads() == 1
        assert trace.writes() == 2
        assert trace.footprint() == 2
        read_mpki, write_mpki = trace.mpki()
        assert read_mpki == pytest.approx(0.5)
        assert write_mpki == pytest.approx(1.0)

    def test_empty_trace_mpki(self):
        assert Trace("e", []).mpki() == (0.0, 0.0)

    def test_max_block_empty_raises(self):
        with pytest.raises(TraceError):
            Trace("e", []).max_block()

    def test_slice(self):
        trace = Trace("t", [(1, i, False) for i in range(10)])
        assert len(trace.slice(3)) == 3

    def test_concat(self):
        a = Trace("a", [(1, 0, False)])
        b = Trace("b", [(1, 1, True)])
        joined = concat("ab", [a, b])
        assert len(joined) == 2
        assert joined.records[1] == (1, 1, True)


class TestSynthetic:
    def test_random_trace_footprint(self, rng):
        trace = random_trace(500, 100, rng)
        assert trace.max_block() < 100
        assert len(trace) == 500

    def test_random_trace_write_fraction(self, rng):
        trace = random_trace(2000, 100, rng, write_fraction=0.5)
        assert 0.4 < trace.writes() / len(trace) < 0.6

    def test_random_trace_rejects_empty(self, rng):
        with pytest.raises(TraceError):
            random_trace(0, 100, rng)

    def test_zipf_skew(self, rng):
        trace = zipf_trace(3000, 1000, rng, alpha=1.2)
        counts = {}
        for _, block, _ in trace:
            counts[block] = counts.get(block, 0) + 1
        top = max(counts.values())
        assert top > 3 * len(trace) / len(counts)

    def test_strided_sequential(self, rng):
        trace = strided_trace(10, 100, rng, stride=1)
        blocks = [b for _, b, _ in trace]
        deltas = {(b2 - b1) % 100 for b1, b2 in zip(blocks, blocks[1:])}
        assert deltas == {1}


class TestBenchmarks:
    def test_all_thirteen_present(self):
        assert len(BENCHMARKS) == 13
        assert {"gcc", "mcf", "lbm", "xz"} <= set(BENCHMARKS)

    def test_table2_rows_match_models(self):
        rows = table2_rows()
        assert len(rows) == 13
        by_name = {row["benchmark"]: row for row in rows}
        assert by_name["lbm"]["write_mpki"] == 45.3
        assert by_name["mcf"]["read_mpki"] == 19.5

    def test_write_prob(self):
        assert BENCHMARKS["lbm"].write_prob == 1.0
        assert BENCHMARKS["mcf"].write_prob < 0.01

    def test_generated_length_and_bounds(self, rng):
        trace = benchmark_trace(BENCHMARKS["gcc"], 4096, 500, rng)
        assert len(trace) == 500
        assert trace.max_block() < 4096

    def test_region_confinement(self, rng):
        trace = benchmark_trace(
            BENCHMARKS["mcf"], 8192, 500, rng, base_block=4096, region_blocks=1024
        )
        blocks = [b for _, b, _ in trace]
        assert min(blocks) >= 4096
        assert max(blocks) < 4096 + 1024

    def test_write_mix_tracks_model(self, rng):
        trace = benchmark_trace(BENCHMARKS["xz"], 8192, 3000, rng)
        expected = BENCHMARKS["xz"].write_prob
        actual = trace.writes() / len(trace)
        assert abs(actual - expected) < 0.08

    def test_intensity_tracks_model(self, rng):
        model = BENCHMARKS["lbm"]
        trace = benchmark_trace(model, 65536, 4000, rng)
        read_mpki, write_mpki = trace.mpki()
        assert (read_mpki + write_mpki) == pytest.approx(model.l1_mpki, rel=0.4)

    def test_empty_count_rejected(self, rng):
        with pytest.raises(TraceError):
            benchmark_trace(BENCHMARKS["gcc"], 4096, 0, rng)


class TestMix:
    def test_mix_preserves_all_records(self, rng):
        a = Trace("a", [(1, 0, False)] * 10)
        b = Trace("b", [(1, 1, True)] * 5)
        mixed = mix_traces([a, b], rng)
        assert len(mixed) == 15
        assert sum(1 for _, blk, _ in mixed if blk == 1) == 5

    def test_mix_rejects_empty_list(self, rng):
        with pytest.raises(TraceError):
            mix_traces([], rng)

    def test_standard_mix_regions_disjoint(self, rng):
        mixed = standard_mix(12288, 300, rng)
        assert len(mixed) == 300
        assert mixed.max_block() < 12288

    def test_mix_with_random_tail_layout(self, rng):
        trace = benchmark_mix_with_random_tail(8192, 200, 50, rng)
        assert len(trace) >= 245  # mix rounding can drop a few records


class TestIO:
    def test_round_trip(self, tmp_path, rng):
        trace = random_trace(50, 64, rng, write_fraction=0.3)
        path = tmp_path / "trace.txt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.records == trace.records

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 X\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("# header\n5 3 W\n\n")
        trace = load_trace(path)
        assert trace.records == [(5, 3, True)]
