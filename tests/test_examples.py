"""Smoke tests: every example script runs end to end (reduced sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "gcc", "500")
    assert "IR-ORAM speedup over Baseline" in out


def test_scheme_comparison():
    out = run_example("scheme_comparison.py", "gcc", "600")
    assert "Baseline" in out and "IR-ORAM" in out


def test_utilization_study():
    out = run_example("utilization_study.py", "800")
    assert "Space utilization" in out
    assert "Tree-top reuse" in out


@pytest.mark.slow
def test_oblivious_kv_store():
    out = run_example("oblivious_kv_store.py")
    assert "oblivious: True" in out
