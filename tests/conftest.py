"""Shared fixtures for the test suite."""

import random

import pytest

from repro.config import CacheConfig, DRAMConfig, ORAMConfig, SystemConfig
from repro.core.schemes import build_scheme
from repro.stats import Stats


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def stats():
    return Stats()


@pytest.fixture
def tiny_config():
    """A small but fully functional platform (L=9)."""
    return SystemConfig.tiny()


@pytest.fixture
def tiny_oram(tiny_config):
    return tiny_config.oram


@pytest.fixture
def dram_config():
    return DRAMConfig()


@pytest.fixture
def cache_config():
    return CacheConfig(sets=8, ways=4)


@pytest.fixture
def baseline(tiny_config):
    """A freshly built Baseline scheme on the tiny platform."""
    return build_scheme("Baseline", tiny_config)


@pytest.fixture
def controller(baseline):
    return baseline.controller


def make_oram(levels=9, z=4, top=3, **kwargs) -> ORAMConfig:
    """Hand-rolled ORAM config helper for unit tests."""
    slots = z * ((1 << levels) - 1)
    defaults = dict(
        levels=levels,
        user_blocks=(slots // 2 * 15) // 16 // 16 * 16,
        z_per_level=(z,) * levels,
        top_cached_levels=top,
        stash_capacity=120,
        eviction_threshold=90,
        plb_sets=8,
        plb_ways=2,
    )
    defaults.update(kwargs)
    return ORAMConfig(**defaults)
