"""Shared fixtures for the test suite.

Determinism: every test runs with the global :mod:`random` state seeded
from a hash of its node id (XORed with ``REPRO_TEST_SEED`` when set), and
the ``rng`` fixture hands out a private generator derived the same way —
so any stray module-level randomness is reproducible per test, and a
failure replays by re-running that test alone.

Hypothesis depth is profile-driven: the default ``ci`` profile keeps
property tests fast; ``HYPOTHESIS_PROFILE=nightly`` (the scheduled
deep-conformance CI job) explores much further.
"""

import hashlib
import os
import random

import pytest

from repro.config import CacheConfig, DRAMConfig, ORAMConfig, SystemConfig
from repro.core.schemes import build_scheme
from repro.stats import Stats

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis ships with the image
    pass
else:
    _relaxed = dict(
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow, HealthCheck.data_too_large,
        ],
    )
    settings.register_profile("ci", max_examples=12, **_relaxed)
    settings.register_profile("nightly", max_examples=75, **_relaxed)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


#: global offset for derived per-test seeds (set to reproduce a CI shard)
REPRO_TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))


def derived_seed(nodeid: str, salt: int = 0) -> int:
    digest = hashlib.sha256(nodeid.encode()).digest()
    return (int.from_bytes(digest[:8], "big") ^ REPRO_TEST_SEED) + salt


@pytest.fixture(autouse=True)
def _seed_global_random(request):
    """Pin the module-level random state per test, restored afterwards."""
    state = random.getstate()
    random.seed(derived_seed(request.node.nodeid))
    yield
    random.setstate(state)


@pytest.fixture
def rng(request):
    """A private, per-test-deterministic random generator."""
    return random.Random(derived_seed(request.node.nodeid, salt=1))


@pytest.fixture
def stats():
    return Stats()


@pytest.fixture
def tiny_config():
    """A small but fully functional platform (L=9)."""
    return SystemConfig.tiny()


@pytest.fixture
def tiny_oram(tiny_config):
    return tiny_config.oram


@pytest.fixture
def dram_config():
    return DRAMConfig()


@pytest.fixture
def cache_config():
    return CacheConfig(sets=8, ways=4)


@pytest.fixture
def baseline(tiny_config):
    """A freshly built Baseline scheme on the tiny platform."""
    return build_scheme("Baseline", tiny_config)


@pytest.fixture
def controller(baseline):
    return baseline.controller


def make_oram(levels=9, z=4, top=3, **kwargs) -> ORAMConfig:
    """Hand-rolled ORAM config helper for unit tests."""
    slots = z * ((1 << levels) - 1)
    defaults = dict(
        levels=levels,
        user_blocks=(slots // 2 * 15) // 16 // 16 * 16,
        z_per_level=(z,) * levels,
        top_cached_levels=top,
        stash_capacity=120,
        eviction_threshold=90,
        plb_sets=8,
        plb_ways=2,
    )
    defaults.update(kwargs)
    return ORAMConfig(**defaults)
