"""Unit and protocol tests for the Path ORAM controller.

The central invariant is *block conservation*: at any point, every block of
the merged namespace lives in exactly one of — the tree, the stash, the
PLB (+ its victim buffer), or outside the ORAM by design (LLC-D blocks and
Rho's small tree).  The helper below audits the whole controller.
"""

import random

import pytest

from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.errors import ProtocolError
from repro.oram.controller import ONCHIP_LATENCY, PathORAMController
from repro.oram.tree import EMPTY
from repro.oram.types import PathType, Request, RequestKind


def audit_block_locations(controller, extra_holders=()):
    """Return {block: [holders]} for every namespace block."""
    locations = {b: [] for b in range(controller.namespace.total_blocks)}
    tree = controller.tree
    for level in range(tree.levels):
        for position in range(1 << level):
            for block in tree.bucket(level, position):
                if block != EMPTY:
                    locations[block].append(f"tree@L{level}")
    for block, _ in controller.stash.items():
        locations[block].append("stash")
    for block in controller.plb._cache.contents():
        locations[block].append("plb")
    for block in controller._limbo:
        locations[block].append("limbo")
    for holder_name, holder in extra_holders:
        for block in holder:
            locations[block].append(holder_name)
    return locations


def assert_conservation(controller, allowed_external=frozenset()):
    locations = audit_block_locations(controller)
    for block, holders in locations.items():
        if block in allowed_external:
            continue
        assert len(holders) == 1, f"block {block} held by {holders}"


def read_request(block, arrival=0):
    return Request(block=block, kind=RequestKind.READ, arrival=arrival)


@pytest.fixture
def controller():
    return build_scheme("Baseline", SystemConfig.tiny()).controller


class TestInitialization:
    def test_every_block_exactly_once(self, controller):
        assert_conservation(controller)

    def test_mapped_blocks_on_their_paths(self, controller):
        tree = controller.tree
        posmap = controller.posmap
        for level in range(tree.levels):
            for position in range(1 << level):
                for block in tree.bucket(level, position):
                    if block == EMPTY:
                        continue
                    leaf = posmap.leaf_of(block)
                    assert tree.path_position(leaf, level) == position

    def test_treetop_mirror_consistent(self):
        components = build_scheme("IR-Stash", SystemConfig.tiny())
        controller = components.controller
        tree = controller.tree
        resident = set()
        for level in range(controller.oram.top_cached_levels):
            for position in range(1 << level):
                for block in tree.bucket(level, position):
                    if block != EMPTY:
                        resident.add(block)
        assert resident == set(controller.treetop._resident)


class TestFullAccess:
    def test_serves_and_remaps(self, controller):
        request = read_request(0)
        chain = controller._translation_chain(0)
        for pm in chain:
            controller.fetch_posmap_block(pm, 0)
        before = controller.posmap.leaf_of(0)
        result = controller.full_access(0, PathType.DATA, 0, request)
        assert result.issued_path
        assert request.completion == result.finish_read
        assert result.finish_write >= result.finish_read > 0
        # remapped (new leaf drawn; may rarely collide, so check membership)
        assert 0 in controller.stash or controller.posmap.leaf_of(0) >= 0
        assert_conservation(controller)

    def test_conservation_over_many_accesses(self, controller):
        rng = random.Random(9)
        now = 0
        for _ in range(60):
            block = rng.randrange(controller.namespace.user_blocks)
            request = read_request(block, arrival=now)
            controller.enqueue(request)
            while controller.has_pending_work(now):
                result = controller.step(now, allow_dummy=False)
                if result is None:
                    break
                now = max(now + 1, result.finish_write)
        assert_conservation(controller)

    def test_path_counters(self, controller):
        chain = controller._translation_chain(5)
        for pm in chain:
            controller.fetch_posmap_block(pm, 0)
        controller.full_access(5, PathType.DATA, 0, read_request(5))
        assert controller.stats.get("paths.PTd") == 1
        assert controller.stats.get("paths.total") == 1 + len(chain)

    def test_memory_traffic_matches_pl(self, controller):
        chain = controller._translation_chain(5)
        for pm in chain:
            controller.fetch_posmap_block(pm, 0)
        before = controller.stats.get("mem.blocks_read")
        controller.full_access(5, PathType.DATA, 0, read_request(5))
        delta = controller.stats.get("mem.blocks_read") - before
        assert delta == controller.oram.blocks_per_path()


class TestInstantServicing:
    def test_stash_hit_served_instantly(self, controller):
        block = next(iter(controller.stash.blocks()), None)
        if block is None:
            controller.stash.add(0, controller.posmap.leaf_of(0))
            # remove the tree copy to keep conservation
            leaf = controller.posmap.leaf_of(0)
            for level, _, slots in controller.tree.path_buckets(leaf):
                if 0 in slots:
                    slots[slots.index(0)] = EMPTY
                    controller.tree.level_used[level] -= 1
            block = 0
        request = read_request(block, arrival=5)
        controller.enqueue(request)
        result = controller.step(5, allow_dummy=False)
        assert request in result.completions
        assert request.completion == 5 + ONCHIP_LATENCY

    def test_dummy_path_when_idle(self, controller):
        result = controller.step(0, allow_dummy=True)
        assert result is not None
        assert result.path_type is PathType.DUMMY

    def test_no_dummy_when_disallowed(self, controller):
        assert controller.step(0, allow_dummy=False) is None


class TestTimingProtectionShape:
    def test_all_path_types_same_footprint(self, controller):
        """Obliviousness: every path access touches the same addresses
        pattern regardless of type."""
        records = []
        controller.observer = records.append
        controller.dummy_path(0)
        chain = controller._translation_chain(3)
        now = 1000
        for pm in chain:
            controller.fetch_posmap_block(pm, now)
            now += 1000
        controller.full_access(3, PathType.DATA, now, read_request(3))
        sizes = {len(record.read_addresses) for record in records}
        assert len(sizes) == 1
        for record in records:
            assert sorted(record.read_addresses) == sorted(
                record.write_addresses
            )


class TestBackgroundEviction:
    def test_eviction_path_triggers_over_threshold(self, controller):
        # artificially inflate the stash above threshold with free blocks
        donor = []
        tree = controller.tree
        for level in range(tree.levels - 1, -1, -1):
            for position in range(1 << level):
                for slot, block in enumerate(tree.bucket(level, position)):
                    if block != EMPTY:
                        donor.append((block, level, position, slot))
                if len(donor) > controller.oram.eviction_threshold:
                    break
            if len(donor) > controller.oram.eviction_threshold:
                break
        for block, level, position, slot in donor:
            tree.bucket(level, position)[slot] = EMPTY
            tree.level_used[level] -= 1
            controller.stash.add(block, controller.posmap.leaf_of(block))
        result = controller.step(0, allow_dummy=False)
        assert result is not None
        assert result.path_type is PathType.EVICTION
        assert controller.stats.get("eviction.paths") == 1
        assert_conservation(controller)


class TestDelayedRemap:
    def test_read_extracts_block(self):
        components = build_scheme("LLC-D", SystemConfig.tiny())
        controller = components.controller
        assert controller.delayed_remap
        block = 7
        now = 0
        request = read_request(block)
        controller.enqueue(request)
        while request.completion is None:
            result = controller.step(now, allow_dummy=False)
            assert result is not None
            now = max(now + 1, result.finish_write)
        assert not controller.posmap.is_mapped(block)
        assert block not in controller.stash
        assert_conservation(controller, allowed_external={block})

    def test_reinsert_restores_mapping(self):
        components = build_scheme("LLC-D", SystemConfig.tiny())
        controller = components.controller
        block, now = 7, 0
        request = read_request(block)
        controller.enqueue(request)
        while request.completion is None:
            result = controller.step(now, allow_dummy=False)
            now = max(now + 1, result.finish_write)
        reinsert = Request(block=block, kind=RequestKind.REINSERT, arrival=now)
        controller.enqueue(reinsert)
        while reinsert.completion is None:
            result = controller.step(now, allow_dummy=False)
            assert result is not None
            now = max(now + 1, result.finish_write)
        assert controller.posmap.is_mapped(block)
        assert block in controller.stash
        assert_conservation(controller)


class TestPosmapExclusivePLB:
    def test_fetched_posmap_block_leaves_tree(self, controller):
        pm2 = controller.namespace.posmap2_base
        assert controller.posmap.is_mapped(pm2)
        controller.fetch_posmap_block(pm2, 0)
        assert controller.plb.contains(pm2)
        assert not controller.posmap.is_mapped(pm2)
        assert_conservation(controller)

    def test_victim_reinserted_via_stash(self):
        config = SystemConfig.tiny()
        controller = build_scheme("Baseline", config).controller
        ns = controller.namespace
        # fill the PLB far beyond capacity with pos2 fetches (parent always
        # on chip), forcing victim re-inserts
        now = 0
        capacity = config.oram.plb_sets * config.oram.plb_ways
        pm2_count = config.oram.posmap2_blocks
        fetched = 0
        for pm2 in range(ns.posmap2_base, ns.posmap2_base + pm2_count):
            if controller.plb.contains(pm2) or pm2 in controller._limbo:
                continue
            if pm2 in controller.stash:
                continue
            controller.fetch_posmap_block(pm2, now)
            now += 1000
            fetched += 1
        if fetched > capacity:
            assert controller.stats.get("plb.reinserts") > 0
        assert_conservation(controller)
