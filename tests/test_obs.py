"""Tests for the observability layer: events, sinks, breakdowns, exporters.

The load-bearing assertions are the two invariants the docs promise:
observation never changes results (bit-identical cycles/counters), and
``CycleBreakdown`` components sum exactly to the run's cycle count.
"""

import json

import pytest

from repro import api, stats_keys as sk
from repro.config import SystemConfig
from repro.core.schemes import SCHEMES
from repro.errors import ConfigError, ReproError
from repro.obs import (
    CallbackSink,
    CycleBreakdown,
    JsonlSink,
    MemorySink,
    TraceEvent,
    Tracer,
    events as ev,
    read_jsonl,
)
from repro.obs.inspect import format_summary, summarize_trace
from repro.sim.persistence import result_from_dict, result_to_dict
from repro.stats import Stats

TINY = SystemConfig.tiny()


class TestSinks:
    def test_memory_sink_ring_overflow(self):
        sink = MemorySink(capacity=5)
        for cycle in range(8):
            sink.emit(TraceEvent(kind=ev.PROGRESS, cycle=cycle))
        kept = sink.events()
        assert len(kept) == 5
        assert [event.cycle for event in kept] == [3, 4, 5, 6, 7]
        assert sink.dropped == 3
        assert sink.total_emitted == 8

    def test_memory_sink_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            MemorySink(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        original = [
            TraceEvent(ev.PATH_READ, 10, {"leaf": 3, "path_type": "PTd"}),
            TraceEvent(ev.STASH_HWM, 25, {"occupancy": 17}),
        ]
        for event in original:
            sink.emit(event)
        sink.close()
        assert read_jsonl(str(path)) == original

    def test_callback_sink(self):
        seen = []
        tracer = Tracer(sinks=[CallbackSink(seen.append)])
        tracer.emit(ev.PLB_HIT, 5, block=42)
        assert seen == [TraceEvent(ev.PLB_HIT, 5, {"block": 42})]
        assert tracer.events_emitted == 1

    def test_event_dict_round_trip(self):
        event = TraceEvent(ev.DRAM_BATCH, 99, {"accesses": 4, "write": True})
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestBitIdentical:
    @pytest.mark.parametrize("scheme", ["Baseline", "IR-ORAM"])
    def test_traced_run_is_bit_identical(self, scheme, tmp_path):
        spec = api.RunSpec(
            scheme=scheme, workload="mix", records=300, seed=13, config=TINY
        )
        plain = api.run(spec)
        traced = api.run(spec.with_obs(api.ObsOptions(
            trace_out=str(tmp_path / "t.jsonl"),
            ring_size=100,
            progress_every=25,
        )))
        assert traced.cycles == plain.cycles
        assert traced.result.counters == plain.result.counters
        assert traced.result.path_counts == plain.result.path_counts
        assert traced.breakdown.to_dict() == plain.breakdown.to_dict()
        assert traced.events()  # the ring actually captured something

    def test_untraced_run_has_no_tracer(self):
        out = api.run(api.RunSpec(records=150, config=TINY))
        assert out.stats.tracer is None
        assert out.events() == []


class TestBreakdown:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_components_sum_to_cycles(self, scheme):
        result = api.run(api.RunSpec(
            scheme=scheme, workload="mix", records=250, seed=7, config=TINY
        )).result
        breakdown = result.breakdown
        assert breakdown is not None
        assert breakdown.total == result.cycles
        assert sum(breakdown.components().values()) == result.cycles
        assert all(value >= 0 for value in breakdown.components().values())

    def test_fractions_sum_to_one(self):
        result = api.run(api.RunSpec(records=250, config=TINY)).result
        assert sum(result.breakdown.fractions().values()) == pytest.approx(1.0)

    def test_dict_round_trip(self):
        result = api.run(api.RunSpec(records=200, config=TINY)).result
        restored = CycleBreakdown.from_dict(result.breakdown.to_dict())
        assert restored == result.breakdown

    def test_persistence_round_trip(self):
        result = api.run(api.RunSpec(records=200, config=TINY)).result
        restored = result_from_dict(result_to_dict(result))
        assert restored.breakdown == result.breakdown

    def test_data_paths_dominate_demand_workload(self):
        breakdown = api.run(api.RunSpec(
            scheme="Baseline", workload="gcc", records=300, config=TINY
        )).result.breakdown
        assert breakdown.data_read + breakdown.data_write > 0


class TestTraceContents:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        api.run(api.RunSpec(
            scheme="IR-ORAM", workload="mix", records=400, seed=7,
            config=TINY,
            obs=api.ObsOptions(trace_out=str(path), progress_every=50),
        ))
        return str(path)

    def test_expected_kinds_present(self, trace_path):
        kinds = {event.kind for event in read_jsonl(trace_path)}
        assert {
            ev.ACCESS_START, ev.ACCESS_END, ev.PATH_READ, ev.PATH_WRITE,
            ev.DRAM_BATCH, ev.LLC_MISS, ev.PROGRESS,
        } <= kinds
        assert kinds <= set(ev.ALL_KINDS)

    def test_path_events_match_result_counts(self, trace_path):
        result = api.run(api.RunSpec(
            scheme="IR-ORAM", workload="mix", records=400, seed=7, config=TINY
        )).result
        events = read_jsonl(trace_path)
        reads = sum(1 for event in events if event.kind == ev.PATH_READ)
        writes = sum(1 for event in events if event.kind == ev.PATH_WRITE)
        assert reads == writes == int(result.total_paths())

    def test_inspect_summary(self, trace_path):
        summary = summarize_trace(trace_path)
        assert summary["events"] == len(read_jsonl(trace_path))
        assert summary["accesses_completed"] > 0
        assert summary["dram"]["accesses"] > 0
        assert 0.0 < summary["dram"]["row_hit_rate"] <= 1.0
        text = format_summary(summary)
        assert "events" in text and "latency" in text

    def test_inspect_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            summarize_trace(str(path))


class TestExporters:
    @pytest.fixture(scope="class")
    def stats(self):
        return api.run(api.RunSpec(records=250, config=TINY)).stats

    def test_prometheus_text(self, stats):
        text = stats.to_prometheus_text()
        assert f"repro_{sk.SIM_CYCLES.replace('.', '_')} " in text
        assert "# TYPE repro_sim_cycles counter" in text
        assert 'bucket="' in text  # histograms render as labeled samples

    def test_json_export(self, stats):
        payload = json.loads(stats.to_json())
        assert payload["counters"][sk.SIM_CYCLES] > 0
        assert set(payload) == {"counters", "histograms", "series"}

    def test_namespace_views(self, stats):
        assert "dram" in stats.namespaces()
        dram = stats.namespace("dram")
        assert dram["accesses"] == stats.get(sk.DRAM_ACCESSES)

    def test_progress_series_recorded(self):
        out = api.run(api.RunSpec(
            records=300, config=TINY,
            obs=api.ObsOptions(ring_size=10, progress_every=20),
        ))
        assert out.stats.series[sk.OBS_PROGRESS]

    def test_metrics_out_written(self, tmp_path):
        path = tmp_path / "metrics.json"
        api.run(api.RunSpec(
            records=150, config=TINY,
            obs=api.ObsOptions(metrics_out=str(path)),
        ))
        assert json.loads(path.read_text())["counters"][sk.SIM_CYCLES] > 0


class TestStatsKeys:
    def test_static_keys_unique_and_namespaced(self):
        keys = sk.all_static_keys()
        assert len(keys) == len(set(keys))
        assert all("." in key for key in keys)

    def test_key_builders_match_constants(self):
        from repro.oram.types import PathType, RequestKind

        assert sk.requests_key(RequestKind.WRITEBACK) == sk.REQUESTS_WRITEBACK
        assert sk.paths_key(PathType.DATA) == "paths.PTd"
        assert sk.cache_key("llc", "misses") == sk.LLC_MISSES

    def test_run_counters_are_known_keys(self):
        from repro.oram.types import PathType, RequestKind

        known = set(sk.all_static_keys())
        for path_type in PathType:
            known.add(sk.paths_key(path_type))
            known.add(sk.mem_blocks_key(path_type))
        for kind in RequestKind:
            known.add(sk.requests_key(kind))
        for scheme in ("Baseline", "IR-ORAM", "Rho", "LLC-D"):
            counters = api.run(api.RunSpec(
                scheme=scheme, workload="mix", records=200, config=TINY
            )).result.counters
            unknown = set(counters) - known
            assert not unknown, f"{scheme}: unregistered stat keys {unknown}"

    def test_keys_by_namespace_partition(self):
        grouped = sk.keys_by_namespace()
        flattened = sorted(key for keys in grouped.values() for key in keys)
        assert flattened == sk.all_static_keys()
        for namespace, keys in grouped.items():
            assert all(key.startswith(namespace + ".") for key in keys)
