"""Stateful property tests: the controller under random request sequences.

Hypothesis drives random interleavings of reads, writes, write-backs, and
idle (dummy) slots against the tiny platform, with the online
:class:`~repro.validate.invariants.InvariantAuditor` attached at cadence 1
— every issued path triggers a full sweep of the protocol invariants
(block conservation, path residency, stash bounds, PosMap/PLB
consistency, queue mirrors), and a final strict sweep runs at the end.
The timing-rate check stays off: this harness drives the controller
directly rather than through the Simulator clock.

Depth is controlled by the hypothesis profiles in ``conftest.py``
(``HYPOTHESIS_PROFILE=nightly`` explores far more interleavings).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.oram.tree import EMPTY
from repro.oram.types import Request, RequestKind
from repro.validate.invariants import attach_auditor

from tests.test_controller import assert_conservation

#: an operation is (kind, block seed, is_write)
operation = st.tuples(
    st.sampled_from(["read", "write", "idle"]),
    st.integers(0, 10_000),
    st.booleans(),
)


def run_operations(scheme, ops):
    config = SystemConfig.tiny()
    components = build_scheme(scheme, config)
    controller = components.controller
    # Direct drive bypasses the LLC, so attach to the bare controller
    # (skips the strict end-of-run LLC-residency leg) with the timing-rate
    # check off; cadence 1 sweeps on every issued path.
    auditor = attach_auditor(controller, every=1, check_rate=False)
    user = controller.namespace.user_blocks
    now, last_finish = 0, 0
    outside = set()  # blocks extracted by LLC-D semantics
    for kind, block_seed, is_write in ops:
        if kind == "idle":
            result = controller.step(now, allow_dummy=True)
        else:
            block = block_seed % user
            if block in outside:
                continue
            request = Request(
                block=block,
                kind=RequestKind.READ,
                arrival=now,
                is_write=(kind == "write") or is_write,
            )
            controller.enqueue(request)
            guard = 0
            result = None
            while request.completion is None and guard < 60:
                result = controller.step(now, allow_dummy=False)
                if result is None:
                    break
                now = max(now + 1, result.finish_write)
                guard += 1
            if controller.delayed_remap and request.completion is not None:
                outside.add(block)
        if result is not None:
            assert result.finish_write >= result.finish_read >= result.start
            last_finish = max(last_finish, result.finish_write)
            now = max(now + 1, result.finish_write)
    report = auditor.final_check()
    assert report.audits >= 1
    return controller, outside


class TestControllerStateMachine:
    @given(ops=st.lists(operation, min_size=5, max_size=60))
    def test_baseline_invariants(self, ops):
        controller, _ = run_operations("Baseline", ops)
        assert_conservation(controller)
        self._check_tree_consistency(controller)

    @given(ops=st.lists(operation, min_size=5, max_size=60))
    def test_ir_oram_invariants(self, ops):
        controller, _ = run_operations("IR-ORAM", ops)
        assert_conservation(controller)
        self._check_tree_consistency(controller)
        # the S-Stash mirror matches actual top-level residency
        resident = set()
        for level in range(controller.oram.top_cached_levels):
            for position in range(1 << level):
                for block in controller.tree.bucket(level, position):
                    if block != EMPTY:
                        resident.add(block)
        assert resident == set(controller.treetop._resident)

    @given(ops=st.lists(operation, min_size=5, max_size=60))
    def test_llcd_invariants(self, ops):
        controller, outside = run_operations("LLC-D", ops)
        assert_conservation(controller, allowed_external=outside)
        for block in outside:
            assert not controller.posmap.is_mapped(block)

    @given(ops=st.lists(operation, min_size=5, max_size=60))
    def test_rho_invariants(self, ops):
        # assert_conservation does not know Rho's small-tree custody; the
        # auditor's Rho-aware sweep inside run_operations covers it.
        controller, _ = run_operations("Rho", ops)
        self._check_tree_consistency(controller)

    @staticmethod
    def _check_tree_consistency(controller):
        tree, posmap = controller.tree, controller.posmap
        for level in range(tree.levels):
            for position in range(1 << level):
                for block in tree.bucket(level, position):
                    if block == EMPTY:
                        continue
                    leaf = posmap.leaf_of(block)
                    assert tree.path_position(leaf, level) == position
