"""Stateful property tests: the controller under random request sequences.

Hypothesis drives random interleavings of reads, writes, write-backs, and
idle (dummy) slots against the tiny platform, then audits the global
protocol invariants:

* block conservation (every namespace block held exactly once);
* tree consistency (every resident block lies on its assigned path);
* stash boundedness relative to the eviction machinery;
* monotone, gapless time.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.oram.tree import EMPTY
from repro.oram.types import Request, RequestKind

from tests.test_controller import assert_conservation

slow_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: an operation is (kind, block seed, is_write)
operation = st.tuples(
    st.sampled_from(["read", "write", "idle"]),
    st.integers(0, 10_000),
    st.booleans(),
)


def run_operations(scheme, ops):
    config = SystemConfig.tiny()
    components = build_scheme(scheme, config)
    controller = components.controller
    user = controller.namespace.user_blocks
    now, last_finish = 0, 0
    outside = set()  # blocks extracted by LLC-D semantics
    for kind, block_seed, is_write in ops:
        if kind == "idle":
            result = controller.step(now, allow_dummy=True)
        else:
            block = block_seed % user
            if block in outside:
                continue
            request = Request(
                block=block,
                kind=RequestKind.READ,
                arrival=now,
                is_write=(kind == "write") or is_write,
            )
            controller.enqueue(request)
            guard = 0
            result = None
            while request.completion is None and guard < 60:
                result = controller.step(now, allow_dummy=False)
                if result is None:
                    break
                now = max(now + 1, result.finish_write)
                guard += 1
            if controller.delayed_remap and request.completion is not None:
                outside.add(block)
        if result is not None:
            assert result.finish_write >= result.finish_read >= result.start
            last_finish = max(last_finish, result.finish_write)
            now = max(now + 1, result.finish_write)
    return controller, outside


class TestControllerStateMachine:
    @slow_settings
    @given(ops=st.lists(operation, min_size=5, max_size=60))
    def test_baseline_invariants(self, ops):
        controller, _ = run_operations("Baseline", ops)
        assert_conservation(controller)
        self._check_tree_consistency(controller)

    @slow_settings
    @given(ops=st.lists(operation, min_size=5, max_size=60))
    def test_ir_oram_invariants(self, ops):
        controller, _ = run_operations("IR-ORAM", ops)
        assert_conservation(controller)
        self._check_tree_consistency(controller)
        # the S-Stash mirror matches actual top-level residency
        resident = set()
        for level in range(controller.oram.top_cached_levels):
            for position in range(1 << level):
                for block in controller.tree.bucket(level, position):
                    if block != EMPTY:
                        resident.add(block)
        assert resident == set(controller.treetop._resident)

    @slow_settings
    @given(ops=st.lists(operation, min_size=5, max_size=60))
    def test_llcd_invariants(self, ops):
        controller, outside = run_operations("LLC-D", ops)
        assert_conservation(controller, allowed_external=outside)
        for block in outside:
            assert not controller.posmap.is_mapped(block)

    @staticmethod
    def _check_tree_consistency(controller):
        tree, posmap = controller.tree, controller.posmap
        for level in range(tree.levels):
            for position in range(1 << level):
                for block in tree.bucket(level, position):
                    if block == EMPTY:
                        continue
                    leaf = posmap.leaf_of(block)
                    assert tree.path_position(leaf, level) == position
