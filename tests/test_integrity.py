"""Tests for the Merkle and Ring per-bucket integrity layers."""

import pytest

from repro.config import SystemConfig
from repro.core.schemes import build_scheme
from repro.oram.integrity import (
    IntegrityError,
    MerkleIntegrity,
    attach_integrity,
    attach_ring_integrity,
)
from repro.oram.tree import EMPTY, ORAMTree
from repro.sim.runner import make_workload
from repro.sim.simulator import Simulator

from tests.conftest import make_oram


@pytest.fixture
def tree():
    tree = ORAMTree(make_oram(levels=6, top=2))
    tree.place(0, 0, 11)
    tree.place(3, 5, 22)
    tree.place(5, 17, 33)
    return tree


@pytest.fixture
def merkle(tree):
    return MerkleIntegrity(tree)


class TestVerification:
    def test_fresh_tree_verifies_every_path(self, merkle, tree):
        for leaf in range(1 << 5):
            merkle.verify_path(leaf)

    def test_update_then_verify(self, merkle, tree):
        tree.place(4, 3, 44)
        merkle.update_path(3 << 1)  # a path through (4, 3)
        merkle.verify_path(3 << 1)

    def test_stale_hash_detected(self, merkle, tree):
        # mutate contents without updating hashes: every crossing path fails
        tree.place(2, 0, 99)
        with pytest.raises(IntegrityError):
            merkle.verify_path(0)

    def test_tampered_block_detected(self, merkle, tree):
        slots = tree.bucket(3, 5)
        slots[slots.index(22)] = 23  # attacker flips a block ID
        with pytest.raises(IntegrityError):
            merkle.verify_path(5 << 2)

    def test_tampering_off_path_not_flagged(self, merkle, tree):
        slots = tree.bucket(5, 17)
        slots[slots.index(33)] = 34
        # a path not crossing (5,17) and not adjacent to it still verifies
        merkle.verify_path(0)

    def test_forged_sibling_hash_detected(self, merkle):
        merkle.forge_stored_hash(1, 1)
        # any path through the left half uses (1,1) as sibling
        with pytest.raises(IntegrityError):
            merkle.verify_path(0)

    def test_rebuild_restores_consistency(self, merkle, tree):
        tree.place(2, 2, 77)
        merkle.rebuild()
        for leaf in range(0, 32, 5):
            merkle.verify_path(leaf)

    def test_empty_and_distinct_buckets_hash_differently(self, merkle, tree):
        a = merkle.compute_hash(5, 0)
        b = merkle.compute_hash(5, 1)
        assert a == b  # both empty leaves, same contents
        tree.place(5, 1, 7)
        assert merkle.compute_hash(5, 1) != a


class TestTamperingMatrix:
    """Every physical-attack class from the threat model raises
    :class:`IntegrityError`: flipping a block ID, forging a stored sibling
    hash, swapping whole buckets across levels, and replaying a stale
    (previously valid) path snapshot against the fresh on-chip root."""

    def test_flipped_block_id_detected(self, merkle, tree):
        slots = tree.bucket(3, 5)
        slots[slots.index(22)] = 22 ^ 1
        with pytest.raises(IntegrityError):
            merkle.verify_path(5 << 2)

    def test_forged_sibling_hash_detected(self, merkle):
        merkle.forge_stored_hash(1, 0)
        # any path through the *right* half consumes (1,0) as the sibling
        with pytest.raises(IntegrityError):
            merkle.verify_path(1 << 4)

    def test_swapped_buckets_across_levels_detected(self, merkle, tree):
        # relocate bucket contents wholesale: (3,5) <-> (2,2), both on the
        # path to leaf 5<<2, without touching the stored hashes
        a, b = tree.bucket(3, 5), tree.bucket(2, 2)
        a[:], b[:] = list(b), list(a)
        with pytest.raises(IntegrityError):
            merkle.verify_path(5 << 2)

    def test_stale_path_replay_detected(self, merkle, tree):
        from repro.oram.tree import ORAMTree

        leaf = 0
        # attacker snapshots the path's buckets and stored hashes...
        snapshot = []
        for level in range(tree.levels):
            position = tree.path_position(leaf, level)
            snapshot.append((
                level,
                position,
                list(tree.bucket(level, position)),
                merkle.stored_hash(level, position),
            ))
        # ...a legitimate write then refreshes path and on-chip root...
        tree.place(4, 0, 55)
        merkle.update_path(leaf)
        merkle.verify_path(leaf)
        # ...and replaying the stale-but-internally-consistent snapshot
        # fails against the *new* trusted root
        for level, position, slots, digest in snapshot:
            tree.bucket(level, position)[:] = slots
            merkle._hashes[ORAMTree.bucket_index(level, position)] = digest
        with pytest.raises(IntegrityError):
            merkle.verify_path(leaf)


class TestControllerIntegration:
    def test_full_run_with_integrity(self):
        config = SystemConfig.tiny()
        components = build_scheme("Baseline", config)
        integrity = attach_integrity(components.controller)
        trace = make_workload("random", config, 150, seed=6)
        Simulator(components, trace).run()
        stats = components.stats
        assert stats.get("integrity.path_verifications") > 0
        assert stats.get("integrity.path_updates") > 0
        assert stats.get("integrity.violations") == 0

    def test_mid_run_tampering_detected(self):
        config = SystemConfig.tiny()
        components = build_scheme("Baseline", config)
        attach_integrity(components.controller)
        trace = make_workload("random", config, 200, seed=8)
        simulator = Simulator(components, trace)
        controller = components.controller

        original_step = controller.step
        state = {"tampered": False}

        def tampering_step(now, allow_dummy=True):
            if not state["tampered"] and controller.path_count > 5:
                tree = controller.tree
                # flip the first real block found near the root region
                for level in range(3):
                    for position in range(1 << level):
                        slots = tree.bucket(level, position)
                        for i, block in enumerate(slots):
                            if block != EMPTY:
                                slots[i] = block + 1
                                state["tampered"] = True
                                break
                        if state["tampered"]:
                            break
                    if state["tampered"]:
                        break
                if not state["tampered"]:
                    slots = tree.bucket(0, 0)
                    slots[0] = 12345 if slots[0] == EMPTY else slots[0] + 1
                    state["tampered"] = True
            return original_step(now, allow_dummy)

        controller.step = tampering_step
        with pytest.raises(IntegrityError):
            simulator.run()


def _ring_run(records=150, seed=6, recovery_hook=None):
    """A Ring scheme with the per-bucket MAC layer, warmed by a run."""
    config = SystemConfig.tiny()
    components = build_scheme("Ring", config)
    integrity = attach_ring_integrity(
        components.controller, recovery_hook=recovery_hook
    )
    trace = make_workload("random", config, records, seed=seed)
    Simulator(components, trace).run()
    return components, integrity


def _occupied_bucket(controller):
    for level, position, bucket in controller.iter_ring_buckets():
        if any(block != EMPTY for block in bucket.slots):
            return level, position, bucket
    raise AssertionError("no occupied ring bucket after a warm run")


class TestRingTamperingMatrix:
    """The Merkle matrix's four physical-attack classes, replayed against
    Ring's per-bucket MAC path: flipping a slot, forging a stored MAC,
    swapping whole buckets, and replaying a stale snapshot against the
    trusted on-chip epoch counter."""

    def test_clean_run_verifies_and_counts(self):
        components, _ = _ring_run()
        stats = components.stats
        assert stats.get("integrity.ring_verifications") > 0
        assert stats.get("integrity.ring_updates") > 0
        assert stats.get("integrity.ring_violations") == 0
        controller = components.controller
        integrity = controller.ring_integrity
        for level, position, bucket in controller.iter_ring_buckets():
            integrity.verify_bucket(level, position, bucket.slots)

    def test_flipped_slot_detected(self):
        components, integrity = _ring_run()
        level, position, bucket = _occupied_bucket(components.controller)
        index = next(
            i for i, block in enumerate(bucket.slots) if block != EMPTY
        )
        bucket.slots[index] ^= 1
        with pytest.raises(IntegrityError):
            integrity.verify_bucket(level, position, bucket.slots)

    def test_forged_stored_mac_detected(self):
        components, integrity = _ring_run()
        level, position, bucket = _occupied_bucket(components.controller)
        integrity.forge_stored_mac(level, position)
        with pytest.raises(IntegrityError):
            integrity.verify_bucket(level, position, bucket.slots)

    def test_swapped_buckets_detected(self):
        components, integrity = _ring_run()
        controller = components.controller
        level, position, bucket = _occupied_bucket(controller)
        other = next(
            (lv, pos, bk)
            for lv, pos, bk in controller.iter_ring_buckets()
            if (lv, pos) != (level, position) and bk.slots != bucket.slots
        )
        bucket.slots[:], other[2].slots[:] = (
            list(other[2].slots),
            list(bucket.slots),
        )
        with pytest.raises(IntegrityError):
            integrity.verify_bucket(level, position, bucket.slots)

    def test_stale_bucket_replay_detected(self):
        components, integrity = _ring_run()
        level, position, bucket = _occupied_bucket(components.controller)
        # attacker snapshots a valid bucket and its MAC...
        snapshot_slots = list(bucket.slots)
        snapshot_mac = integrity.stored_mac(level, position)
        # ...a legitimate update advances the trusted epoch...
        index = next(
            i for i, block in enumerate(bucket.slots) if block != EMPTY
        )
        bucket.slots[index] = EMPTY
        integrity.update_bucket(level, position, bucket.slots)
        integrity.verify_bucket(level, position, bucket.slots)
        # ...and the internally-consistent stale pair fails against it
        bucket.slots[:] = snapshot_slots
        integrity._macs[(level, position)] = snapshot_mac
        with pytest.raises(IntegrityError):
            integrity.verify_bucket(level, position, bucket.slots)


class TestRingRecovery:
    def test_recovery_hook_resyncs_and_continues(self):
        calls = []

        def hook(level, position, slots):
            calls.append((level, position))
            return True

        components, integrity = _ring_run(recovery_hook=hook)
        level, position, bucket = _occupied_bucket(components.controller)
        integrity.forge_stored_mac(level, position)
        integrity.verify_or_recover(level, position, bucket.slots)
        assert calls == [(level, position)]
        assert integrity.recoveries == 1
        assert components.stats.get("integrity.ring_recoveries") == 1
        # the resynced bucket authenticates again
        integrity.verify_bucket(level, position, bucket.slots)

    def test_declined_recovery_reraises(self):
        components, integrity = _ring_run(
            recovery_hook=lambda level, position, slots: False
        )
        level, position, bucket = _occupied_bucket(components.controller)
        integrity.forge_stored_mac(level, position)
        with pytest.raises(IntegrityError):
            integrity.verify_or_recover(level, position, bucket.slots)
        assert integrity.recoveries == 0

    def test_mid_run_tampering_detected(self):
        config = SystemConfig.tiny()
        components = build_scheme("Ring", config)
        attach_ring_integrity(components.controller)
        trace = make_workload("random", config, 200, seed=8)
        simulator = Simulator(components, trace)
        controller = components.controller

        original_step = controller.step
        state = {"tampered": False}

        def tampering_step(now, allow_dummy=True):
            if not state["tampered"] and controller.path_count > 30:
                for _, _, bucket in controller.iter_ring_buckets():
                    bucket.slots[0] = (
                        12345 if bucket.slots[0] == EMPTY
                        else bucket.slots[0] + 1
                    )
                    state["tampered"] = True
                    break
            return original_step(now, allow_dummy)

        controller.step = tampering_step
        with pytest.raises(IntegrityError):
            simulator.run()
