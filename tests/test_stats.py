"""Unit tests for the statistics registry."""

from repro.stats import Stats


class TestCounters:
    def test_inc_default(self):
        stats = Stats()
        stats.inc("a")
        stats.inc("a", 2)
        assert stats.get("a") == 3

    def test_get_missing_returns_default(self):
        stats = Stats()
        assert stats.get("missing") == 0
        assert stats.get("missing", 7) == 7

    def test_set_overwrites(self):
        stats = Stats()
        stats.inc("a", 5)
        stats.set("a", 1)
        assert stats.get("a") == 1

    def test_ratio(self):
        stats = Stats()
        stats.inc("hits", 3)
        stats.inc("total", 4)
        assert stats.ratio("hits", "total") == 0.75

    def test_ratio_zero_denominator(self):
        stats = Stats()
        stats.inc("hits", 3)
        assert stats.ratio("hits", "total") == 0.0

    def test_snapshot_is_a_copy(self):
        stats = Stats()
        stats.inc("a")
        snap = stats.snapshot()
        stats.inc("a")
        assert snap["a"] == 1


class TestHistograms:
    def test_bump_and_read(self):
        stats = Stats()
        stats.bump("levels", 3)
        stats.bump("levels", 3, 2)
        stats.bump("levels", "stash")
        hist = stats.histogram("levels")
        assert hist[3] == 3
        assert hist["stash"] == 1

    def test_missing_histogram_empty(self):
        assert Stats().histogram("nope") == {}


class TestSeries:
    def test_record_appends(self):
        stats = Stats()
        stats.record("util", 0, [1.0])
        stats.record("util", 10, [0.5])
        assert stats.series["util"] == [(0, [1.0]), (10, [0.5])]


class TestMerge:
    def test_merge_counters_and_histograms(self):
        a, b = Stats(), Stats()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 3)
        b.bump("h", "k", 4)
        b.record("s", 1, "v")
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3
        assert a.histogram("h")["k"] == 4
        assert a.series["s"] == [(1, "v")]
