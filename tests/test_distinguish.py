"""Properties of the adversarial trace distinguisher.

Two bounds make the harness meaningful (see ``docs/security.md``):

- **false positives**: two arms running the *same* program on the same
  scheme differ only by seed, so the distinguisher must never flag them
  — a hypothesis property across schemes, programs, and base seeds;
- **false negatives**: every registered leaky mutant must flag within
  the default small budget, or the clean verdicts are vacuous.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.mutants import MUTANTS, build_mutant
from repro.traces.adversarial import ADVERSARY_PROGRAMS, DEFAULT_PROGRAM_PAIR
from repro.validate.distinguish import (
    BUDGETS,
    FEATURE_NAMES,
    DistinguishSpec,
    _holm_correct,
    capture_trace,
    derive_seed,
    permutation_p_value,
    replay,
    run_game,
    save_report,
)

SMALL = BUDGETS["small"]

#: Reduced-record spec for the hypothesis sweep: 6 seeds per arm keeps
#: the permutation test exact (and capable of flagging), fewer records
#: keep each example fast.
FP_RECORDS = 120


def _spec(scheme, program_a, program_b, base_seed, records=None):
    return DistinguishSpec(
        scheme=scheme,
        program_a=program_a,
        program_b=program_b,
        seeds=SMALL.seeds,
        records=records if records is not None else SMALL.records,
        permutations=SMALL.permutations,
        base_seed=base_seed,
    )


class TestFalsePositiveBound:
    @settings(max_examples=4, deadline=None)
    @given(
        scheme=st.sampled_from(["Baseline", "Rho", "Pyramid", "Ring", "IR-ORAM"]),
        program=st.sampled_from(sorted(ADVERSARY_PROGRAMS)),
        base_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_same_program_never_flags(self, scheme, program, base_seed):
        """Arms that differ only by seed must be indistinguishable."""
        report = run_game(
            _spec(scheme, program, program, base_seed, records=FP_RECORDS)
        )
        flagged = [f.name for f in report.features if f.flagged]
        assert not report.distinguishable, (
            f"{scheme} flagged on identical programs via {flagged}"
        )


class TestMutantDetection:
    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_mutant_flags_at_default_budget(self, name):
        mutant = MUTANTS[name]
        report = run_game(_spec(name, *mutant.programs, base_seed=1))
        assert report.distinguishable, (
            f"mutant {name} (leaks via {mutant.leaks_via}) escaped: "
            f"{[(f.name, f.statistic, f.corrected_p) for f in report.features]}"
        )

    def test_mutants_never_reach_scheme_registry(self):
        from repro.core.schemes import SCHEMES

        assert not set(MUTANTS) & set(SCHEMES)

    def test_unknown_mutant_lists_valid_names(self, tiny_config):
        with pytest.raises(KeyError, match="skip-dummies"):
            build_mutant("no-such-mutant", tiny_config)


class TestReplayDeterminism:
    def test_artifact_replays_bit_for_bit(self, tmp_path):
        spec = _spec("skip-dummies", *MUTANTS["skip-dummies"].programs,
                     base_seed=5, records=FP_RECORDS)
        report = run_game(spec)
        path = save_report(report, str(tmp_path))
        fresh, mismatches = replay(path)
        assert mismatches == []
        assert fresh.distinguishable == report.distinguishable

    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(1, "a", 0) == derive_seed(1, "a", 0)
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)
        assert derive_seed(1, "a", 0) != derive_seed(2, "a", 0)


class TestCaptureIsNonPerturbing:
    def test_recorded_run_matches_unrecorded_run(self):
        """The observer hook must not change a single cycle or counter.

        ``capture_trace`` attaches the recorder to a fresh build; an
        identical build driven by the identical trace without the
        recorder must land on the same clock and the same counters.
        """
        import random

        from repro.config import SystemConfig
        from repro.core.schemes import build_scheme
        from repro.sim.simulator import Simulator
        from repro.stats import Stats
        from repro.traces.adversarial import build_program
        from repro.validate.distinguish import DISTINGUISH_INTERVAL

        run_seed = derive_seed(1, "Baseline", "a", 0)
        records, recorded = capture_trace(
            "Baseline", "uniform-memory", FP_RECORDS, run_seed
        )
        assert records, "observer captured nothing"

        config = SystemConfig.tiny(issue_interval=DISTINGUISH_INTERVAL)
        plain = build_scheme(
            "Baseline", config, Stats(), random.Random(run_seed)
        )
        trace = build_program(
            "uniform-memory", config, FP_RECORDS,
            random.Random(derive_seed(run_seed, "trace")),
        )
        result = Simulator(plain, trace).run()

        assert result.cycles == recorded.stats.get("sim.cycles")
        assert dict(plain.stats.counters) == dict(recorded.stats.counters)


class TestStatisticalMachinery:
    def test_permutation_p_is_one_for_identical_arms(self):
        pooled = [[0.5, 0.5]] * 8
        assert permutation_p_value(pooled, 0.0, 100, seed=1) == 1.0

    def test_permutation_p_is_minimal_for_separated_arms(self):
        pooled = [[1.0, 0.0]] * 4 + [[0.0, 1.0]] * 4
        p = permutation_p_value(pooled, 1.0, 100, seed=1)
        # only the true labeling and its mirror reach TV = 1
        assert p == pytest.approx(2 / math.comb(8, 4))

    def test_holm_correction_is_monotone_and_clamped(self):
        raw = [0.001, 0.04, 0.5, 0.9]
        corrected = _holm_correct(raw)
        ordered = sorted(zip(raw, corrected))
        assert all(a <= b for (_, a), (_, b) in zip(ordered, ordered[1:]))
        assert all(0.0 <= p <= 1.0 for p in corrected)
        assert corrected[0] == pytest.approx(0.004)

    def test_feature_names_cover_extraction(self):
        records, components = capture_trace(
            "Baseline", "uniform-memory", 60, derive_seed(9, "cov")
        )
        from repro.validate.distinguish import extract_features

        features = extract_features(records, components)
        assert set(features) == set(FEATURE_NAMES)
        assert all(len(v) > 0 for v in features.values())

    def test_default_pair_registered(self):
        assert all(p in ADVERSARY_PROGRAMS for p in DEFAULT_PROGRAM_PAIR)
