"""Tests for the obliviousness checker (Section IV-E)."""

import pytest

from repro.config import SystemConfig
from repro.core.schemes import SCHEMES, build_scheme
from repro.oram.types import PathAccessRecord, PathType
from repro.security.obliviousness import (
    AccessRecorder,
    check_obliviousness,
    _uniformity_test,
)
from repro.sim.runner import make_workload
from repro.sim.simulator import Simulator


def run_with_recorder(scheme, config, records=400, workload="random"):
    components = build_scheme(scheme, config)
    recorder = AccessRecorder()
    components.controller.observer = recorder
    trace = make_workload(workload, config, records, seed=3)
    Simulator(components, trace).run()
    return recorder, components


@pytest.fixture
def config():
    return SystemConfig.tiny()


class TestRealRuns:
    @pytest.mark.parametrize(
        "scheme", ["Baseline", "IR-Alloc", "IR-Stash", "IR-DWB", "IR-ORAM",
                   "LLC-D"]
    )
    def test_scheme_is_oblivious(self, scheme, config):
        recorder, components = run_with_recorder(scheme, config)
        report = check_obliviousness(recorder, components.config.oram)
        assert report.ok, report.violations

    def test_issue_rate_respected(self, config):
        recorder, components = run_with_recorder("Baseline", config)
        report = check_obliviousness(recorder, components.config.oram)
        assert report.min_interval is None or (
            report.min_interval >= config.oram.issue_interval
        )

    def test_leaves_recorded_per_type(self, config):
        recorder, _ = run_with_recorder("Baseline", config)
        grouped = recorder.leaves_by_type()
        assert PathType.DATA in grouped
        assert all(leaves for leaves in grouped.values())


class TestViolationDetection:
    def _record(self, cycle, leaf, addresses, path_type=PathType.DATA):
        return PathAccessRecord(
            issue_cycle=cycle,
            leaf=leaf,
            path_type=path_type,
            read_addresses=list(addresses),
            write_addresses=list(addresses),
        )

    def test_rate_violation_flagged(self, config):
        oram = config.oram
        recorder = AccessRecorder()
        shape = list(range(oram.blocks_per_path()))
        recorder(self._record(0, 1, shape))
        recorder(self._record(10, 2, shape))  # far below the interval
        report = check_obliviousness(recorder, oram)
        assert not report.rate_uniform
        assert report.min_interval == 10

    def test_mismatched_read_write_sets_flagged(self, config):
        oram = config.oram
        recorder = AccessRecorder()
        record = self._record(0, 1, range(oram.blocks_per_path()))
        record.write_addresses = record.write_addresses[:-1] + [999999]
        recorder(record)
        report = check_obliviousness(recorder, oram)
        assert not report.shape_uniform

    def test_biased_leaves_flagged(self, config):
        oram = config.oram
        recorder = AccessRecorder()
        shape = list(range(oram.blocks_per_path()))
        for i in range(200):
            # all dummy paths go to one leaf: a detectable pattern
            recorder(
                self._record(
                    i * oram.issue_interval, 0, shape, PathType.DUMMY
                )
            )
        report = check_obliviousness(recorder, oram)
        assert not report.leaf_uniform_by_type[PathType.DUMMY.value]

    def test_uniformity_test_accepts_uniform(self):
        import random

        rng = random.Random(1)
        leaves = [rng.randrange(256) for _ in range(3000)]
        assert _uniformity_test(leaves, 256)

    def test_uniformity_test_rejects_point_mass(self):
        assert not _uniformity_test([7] * 500, 256)

    def test_small_sample_not_judged(self, config):
        recorder = AccessRecorder()
        shape = list(range(config.oram.blocks_per_path()))
        for i in range(10):
            recorder(self._record(i * 10**6, 0, shape, PathType.DUMMY))
        report = check_obliviousness(recorder, config.oram)
        assert report.leaf_uniform_by_type[PathType.DUMMY.value]


class TestUniformityFallback:
    """The no-scipy branch must mirror the scipy branch's verdicts.

    Regression: the old fallback only bounded the *maximum* bucket
    count, so a sample that never touched half the leaf space — or one
    too small to fill two buckets — passed vacuously.
    """

    def _uniform(self, n, space=256, seed=1):
        import random

        rng = random.Random(seed)
        return [rng.randrange(space) for _ in range(n)]

    @pytest.mark.parametrize("force_fallback", [False, True])
    def test_accepts_uniform(self, force_fallback):
        assert _uniformity_test(
            self._uniform(3000), 256, force_fallback=force_fallback
        )

    @pytest.mark.parametrize("force_fallback", [False, True])
    def test_rejects_point_mass(self, force_fallback):
        assert not _uniformity_test(
            [7] * 500, 256, force_fallback=force_fallback
        )

    @pytest.mark.parametrize("force_fallback", [False, True])
    def test_rejects_half_space_missing(self, force_fallback):
        leaves = [leaf % 128 for leaf in self._uniform(1000)]
        assert not _uniformity_test(
            leaves, 256, force_fallback=force_fallback
        )

    @pytest.mark.parametrize("force_fallback", [False, True])
    def test_tiny_sample_cannot_pass_vacuously(self, force_fallback):
        # fewer than two feedable buckets: fail, don't certify
        assert not _uniformity_test(
            self._uniform(9), 256, force_fallback=force_fallback
        )

    def test_bucket_shrink_keeps_chi_square_valid(self):
        # 80 samples -> 16 buckets of expected 5: exactly at the floor
        assert _uniformity_test(self._uniform(80), 256, force_fallback=True)


class TestRecorderEdgeCases:
    def test_empty_trace_passes_vacuously(self, config):
        report = check_obliviousness(AccessRecorder(), config.oram)
        assert report.ok
        assert report.total_paths == 0
        assert report.min_interval is None

    def test_single_record_has_no_rate_verdict(self, config):
        recorder = AccessRecorder()
        shape = list(range(config.oram.blocks_per_path()))
        recorder(
            PathAccessRecord(
                issue_cycle=0, leaf=1, path_type=PathType.DATA,
                read_addresses=shape, write_addresses=shape,
            )
        )
        report = check_obliviousness(recorder, config.oram)
        assert report.ok
        assert report.min_interval is None

    def test_single_type_trace(self, config):
        import random

        rng = random.Random(4)
        recorder = AccessRecorder()
        shape = list(range(config.oram.blocks_per_path()))
        for i in range(300):
            leaf = rng.randrange(config.oram.leaves)
            recorder(
                PathAccessRecord(
                    issue_cycle=i * config.oram.issue_interval,
                    leaf=leaf, path_type=PathType.DUMMY,
                    read_addresses=shape, write_addresses=shape,
                )
            )
        report = check_obliviousness(recorder, config.oram)
        assert report.ok
        assert list(report.leaf_uniform_by_type) == [PathType.DUMMY.value]


class TestMultiShapeSchemes:
    def test_decoupled_is_oblivious(self, config):
        recorder, components = run_with_recorder("Decoupled", config)
        report = check_obliviousness(recorder, components.config.oram)
        assert report.ok, report.violations

    def test_rho_is_oblivious_with_per_size_leaf_spaces(self, config):
        """Rho's small-tree paths are uniform over *their* leaf space.

        The path size is public, so the checker judges each size class
        against its own leaf space; without the override the small
        tree's (uniform) leaves would be flagged against the main
        tree's much larger space.
        """
        recorder, components = run_with_recorder("Rho", config)
        small = components.controller.small_oram
        small_size = sum(small.z_per_level)
        report = check_obliviousness(
            recorder, components.config.oram,
            leaf_spaces={small_size: small.leaves},
        )
        assert report.ok, report.violations
        assert any("@" in key for key in report.leaf_uniform_by_type)

    def test_ring_is_oblivious_with_pooled_leaf_spaces(self, config):
        """Ring's reshuffle-inflated ReadPaths pool into one size class.

        Early reshuffles append whole buckets to a ReadPath's footprint,
        fanning one protocol class across many observed sizes.  The
        controller's ``leaf_spaces`` maps every such size to the ring
        leaf space, and the checker pools same-space sizes so the class
        is judged on its combined sample instead of passing vacuously
        slice by slice (the ``size+n`` keys pin the pooling).
        """
        recorder, components = run_with_recorder(
            "Ring", config, records=600, workload="mix"
        )
        controller = components.controller
        report = check_obliviousness(
            recorder, components.config.oram,
            leaf_spaces=controller.leaf_spaces(),
        )
        assert all(report.leaf_uniform_by_type.values()), report.violations
        assert any(
            "+" in key for key in report.leaf_uniform_by_type
        ), report.leaf_uniform_by_type
        # like Pyramid, Ring's multi-shape footprint is outside the
        # path-shape marginal check; the distinguisher is the authority
        assert not report.shape_uniform

    def test_ring_leaves_flagged_against_wrong_space(self, config):
        """Without the override, pooled ring leaves are judged against
        the main tree's space and correctly fail — the regression the
        pooling fix guards: a vacuous pass would hide real bias."""
        recorder, components = run_with_recorder(
            "Ring", config, records=600, workload="mix"
        )
        report = check_obliviousness(recorder, components.config.oram)
        assert not all(report.leaf_uniform_by_type.values())

    def test_pyramid_shape_is_outside_the_marginal_checker(self, config):
        """Pyramid is not a path ORAM: its public footprint mixes level
        probes, full paths, and scheduled reshuffle bursts, so the
        path-shape marginal check does not apply — the definitional
        distinguisher (``repro validate --distinguish``) is the
        authority for Pyramid (see docs/security.md)."""
        recorder, components = run_with_recorder("Pyramid", config)
        report = check_obliviousness(recorder, components.config.oram)
        sizes = {len(r.read_addresses) for r in recorder.records}
        assert len(sizes) > 2
        assert not report.shape_uniform


class TestRecordingIsNonPerturbing:
    def test_batch_slots_env_does_not_change_recorded_trace(
        self, config, monkeypatch
    ):
        """An attached observer disables the native batch fastpath, so
        the recorded trace must be identical however REPRO_BATCH_SLOTS
        is set — and identical to the unobserved run's clock."""
        traces = {}
        for slots in ("0", "256"):
            monkeypatch.setenv("REPRO_BATCH_SLOTS", slots)
            recorder, components = run_with_recorder(
                "Baseline", config, records=200, workload="mcf"
            )
            traces[slots] = [
                (r.issue_cycle, r.leaf, tuple(r.read_addresses))
                for r in recorder.records
            ]
            cycles = components.stats.get("sim.cycles")
        assert traces["0"] == traces["256"]

        monkeypatch.setenv("REPRO_BATCH_SLOTS", "256")
        components = build_scheme("Baseline", config)
        trace = make_workload("mcf", config, 200, seed=3)
        Simulator(components, trace).run()
        assert components.stats.get("sim.cycles") == cycles
