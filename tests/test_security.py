"""Tests for the obliviousness checker (Section IV-E)."""

import pytest

from repro.config import SystemConfig
from repro.core.schemes import SCHEMES, build_scheme
from repro.oram.types import PathAccessRecord, PathType
from repro.security.obliviousness import (
    AccessRecorder,
    check_obliviousness,
    _uniformity_test,
)
from repro.sim.runner import make_workload
from repro.sim.simulator import Simulator


def run_with_recorder(scheme, config, records=400, workload="random"):
    components = build_scheme(scheme, config)
    recorder = AccessRecorder()
    components.controller.observer = recorder
    trace = make_workload(workload, config, records, seed=3)
    Simulator(components, trace).run()
    return recorder, components


@pytest.fixture
def config():
    return SystemConfig.tiny()


class TestRealRuns:
    @pytest.mark.parametrize(
        "scheme", ["Baseline", "IR-Alloc", "IR-Stash", "IR-DWB", "IR-ORAM",
                   "LLC-D"]
    )
    def test_scheme_is_oblivious(self, scheme, config):
        recorder, components = run_with_recorder(scheme, config)
        report = check_obliviousness(recorder, components.config.oram)
        assert report.ok, report.violations

    def test_issue_rate_respected(self, config):
        recorder, components = run_with_recorder("Baseline", config)
        report = check_obliviousness(recorder, components.config.oram)
        assert report.min_interval is None or (
            report.min_interval >= config.oram.issue_interval
        )

    def test_leaves_recorded_per_type(self, config):
        recorder, _ = run_with_recorder("Baseline", config)
        grouped = recorder.leaves_by_type()
        assert PathType.DATA in grouped
        assert all(leaves for leaves in grouped.values())


class TestViolationDetection:
    def _record(self, cycle, leaf, addresses, path_type=PathType.DATA):
        return PathAccessRecord(
            issue_cycle=cycle,
            leaf=leaf,
            path_type=path_type,
            read_addresses=list(addresses),
            write_addresses=list(addresses),
        )

    def test_rate_violation_flagged(self, config):
        oram = config.oram
        recorder = AccessRecorder()
        shape = list(range(oram.blocks_per_path()))
        recorder(self._record(0, 1, shape))
        recorder(self._record(10, 2, shape))  # far below the interval
        report = check_obliviousness(recorder, oram)
        assert not report.rate_uniform
        assert report.min_interval == 10

    def test_mismatched_read_write_sets_flagged(self, config):
        oram = config.oram
        recorder = AccessRecorder()
        record = self._record(0, 1, range(oram.blocks_per_path()))
        record.write_addresses = record.write_addresses[:-1] + [999999]
        recorder(record)
        report = check_obliviousness(recorder, oram)
        assert not report.shape_uniform

    def test_biased_leaves_flagged(self, config):
        oram = config.oram
        recorder = AccessRecorder()
        shape = list(range(oram.blocks_per_path()))
        for i in range(200):
            # all dummy paths go to one leaf: a detectable pattern
            recorder(
                self._record(
                    i * oram.issue_interval, 0, shape, PathType.DUMMY
                )
            )
        report = check_obliviousness(recorder, oram)
        assert not report.leaf_uniform_by_type[PathType.DUMMY.value]

    def test_uniformity_test_accepts_uniform(self):
        import random

        rng = random.Random(1)
        leaves = [rng.randrange(256) for _ in range(3000)]
        assert _uniformity_test(leaves, 256)

    def test_uniformity_test_rejects_point_mass(self):
        assert not _uniformity_test([7] * 500, 256)

    def test_small_sample_not_judged(self, config):
        recorder = AccessRecorder()
        shape = list(range(config.oram.blocks_per_path()))
        for i in range(10):
            recorder(self._record(i * 10**6, 0, shape, PathType.DUMMY))
        report = check_obliviousness(recorder, config.oram)
        assert report.leaf_uniform_by_type[PathType.DUMMY.value]
