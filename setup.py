"""Legacy setup shim: this environment has setuptools but no wheel package,
so editable installs must go through the non-PEP-517 path
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
