"""The IR-Alloc greedy Z-search of Section IV-B, end to end.

Runs the application-independent search (random traces, the two
constraints) on a given geometry and reports the chosen allocation next to
the hand-tuned plans of Section VI-B.
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from ..perf.engine import cached_z_allocation
from ..sim.runner import random_trace_evaluator
from .common import ExperimentResult


def run(
    config: Optional[SystemConfig] = None,
    records: int = 1200,
    max_space_reduction: float = 0.03,
    max_eviction_increase: float = 0.15,
    seed: int = 99,
) -> ExperimentResult:
    config = config if config is not None else SystemConfig.scaled(levels=12)
    evaluate = random_trace_evaluator(config, records=records, seed=seed)
    uniform = config.oram
    # Disk-memoized through the engine's artifact cache: re-runs (and the
    # fig12/fig13 regenerators sharing a geometry) skip the greedy search.
    best = cached_z_allocation(
        config,
        records=records,
        seed=seed,
        max_space_reduction=max_space_reduction,
        max_eviction_increase=max_eviction_increase,
    )
    uniform_eval = evaluate(uniform)
    best_eval = evaluate(best)
    rows = [
        ["z vector", str(list(uniform.z_per_level)), str(list(best.z_per_level))],
        ["blocks per path (PL)", uniform.blocks_per_path(), best.blocks_per_path()],
        ["space reduction", "0.0%",
         f"{best.space_reduction_vs_uniform():.2%}"],
        ["random-trace cycles", int(uniform_eval["cycles"]),
         int(best_eval["cycles"])],
        ["background evictions", int(uniform_eval["evictions"]),
         int(best_eval["evictions"])],
        ["speedup", 1.0,
         round(uniform_eval["cycles"] / max(best_eval["cycles"], 1), 3)],
    ]
    return ExperimentResult(
        experiment_id="Z-search (Section IV-B)",
        title=f"Greedy utilization-aware allocation search (L={uniform.levels})",
        headers=["metric", "uniform Z=4", "searched"],
        rows=rows,
        paper_claim="the search shrinks middle-level buckets under the "
                    "<=1% space and <=15% eviction-increase constraints, "
                    "application-independently",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
