"""Fig. 4: per-workload space utilization (gcc, lbm, and a random trace).

The paper's point: the per-level utilization trend of Fig. 3 holds for
individual workloads — middle levels stay underutilized for program
traces, higher for random traces.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from .common import ExperimentResult, cached_run


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    config = config if config is not None else SystemConfig.scaled()
    workloads = workloads if workloads is not None else ["gcc", "lbm", "random"]
    levels = config.oram.levels
    rows = []
    for workload in workloads:
        result = cached_run(
            "Baseline", workload, config, records, utilization_snapshots=4
        )
        series = result.utilization_series
        if not series:
            continue
        final = series[-1][1]
        rows.append([workload] + [round(u, 3) for u in final])
    headers = ["workload"] + [f"L{level}" for level in range(levels)]
    return ExperimentResult(
        experiment_id="Fig. 4",
        title="Per-workload space utilization at end of run (Baseline)",
        headers=headers,
        rows=rows,
        paper_claim="the utilization trend is the same per workload; random "
                    "traces push middle levels higher than program traces",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
