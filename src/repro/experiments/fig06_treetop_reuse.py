"""Fig. 6: tree-top reuse — requested blocks found in the top levels.

Section III's tree study feeds the access stream directly into the ORAM
(the Fig. 3 methodology runs raw path accesses, not LLC-filtered misses).
We reproduce it by running with a degenerate one-line LLC so every request
reaches the controller, then histogram where each request's block was
found: the stash, a cached-top level, or a deeper (memory) level.

The paper reports ~23% of requests served from the top ten (of 25) levels,
which hold <0.01% of the ORAM space.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from .. import api
from ..config import CacheConfig, SystemConfig
from ..traces.synthetic import zipf_trace
from .common import ExperimentResult, experiment_records


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    alpha: float = 1.0,
) -> ExperimentResult:
    config = config if config is not None else SystemConfig.scaled()
    records = records if records is not None else experiment_records()
    # degenerate LLC: every request reaches the ORAM controller
    config = replace(config, llc=CacheConfig(sets=1, ways=1))
    rng = random.Random(17)
    trace = zipf_trace(
        records,
        footprint=min(
            config.oram.user_blocks, max(1024, config.oram.user_blocks // 16)
        ),
        rng=rng,
        alpha=alpha,
        gap=60,
        write_fraction=0.5,
    )
    result = api.run(api.RunSpec(
        scheme="Baseline", workload=trace.name, seed=1,
        config=config, trace=trace,
    )).result

    hits = result.hit_levels
    total = max(sum(hits.values()), 1.0)
    top_levels = config.oram.top_cached_levels
    rows = []
    rows.append(["stash", round(hits.get("stash", 0.0) / total, 4)])
    top_share = 0.0
    for level in range(config.oram.levels):
        share = hits.get(level, 0.0) / total
        rows.append([f"L{level}", round(share, 4)])
        if level < top_levels:
            top_share += share
    oram = config.oram
    top_capacity = sum(oram.z_per_level[l] << l for l in range(top_levels))
    capacity_share = top_capacity / oram.tree_slots()
    return ExperimentResult(
        experiment_id="Fig. 6",
        title="Where requested blocks are found (tree study, no LLC filter)",
        headers=["location", "fraction of requests"],
        rows=rows,
        paper_claim="top 10 of 25 levels hold <0.01% of space but serve "
                    "~23% of requests",
        notes=[
            f"top {top_levels} levels hold {capacity_share:.4%} of tree "
            f"slots and served {top_share:.1%} of requests",
        ],
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
