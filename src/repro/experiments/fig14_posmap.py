"""Fig. 14: PosMap path accesses of IR-Stash, normalized to Baseline.

The paper: on average IR-Stash issues 49% of the Baseline's PosMap
accesses; per-benchmark reductions vary widely (94% for dee, small for
mcf), tracking how often the needed blocks sit in the cached tree top.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from .common import (
    ExperimentResult,
    cached_run,
    experiment_workloads,
    geometric_mean,
)


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    workloads = workloads if workloads is not None else experiment_workloads()
    rows = []
    ratios = []
    for workload in workloads:
        baseline = cached_run("Baseline", workload, config, records)
        ir_stash = cached_run("IR-Stash", workload, config, records)
        base_pos = baseline.posmap_paths()
        stash_pos = ir_stash.posmap_paths()
        ratio = stash_pos / base_pos if base_pos else 1.0
        ratios.append(ratio)
        rows.append(
            [workload, int(base_pos), int(stash_pos), round(ratio, 3)]
        )
    rows.append(["geomean", "", "", round(geometric_mean(ratios), 3)])
    return ExperimentResult(
        experiment_id="Fig. 14",
        title="PosMap path accesses: IR-Stash normalized to Baseline",
        headers=["workload", "Baseline PTp", "IR-Stash PTp", "ratio"],
        rows=rows,
        paper_claim="IR-Stash issues 49% of Baseline's PosMap accesses on "
                    "average (dee -94%, mcf smallest reduction)",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
