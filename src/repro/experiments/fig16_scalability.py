"""Fig. 16: scalability of IR-Alloc across protected-memory sizes.

The paper evaluates 1/2/4 GB user data (L=24/25/26) with random traces —
the performance lower bound and the worst case for background eviction —
reporting stable speedups across sizes with tiny variance across 13 random
traces.  We sweep the scaled analog (three tree depths around the default)
and average several random seeds.
"""

from __future__ import annotations

import random
import statistics
from typing import List, Optional, Sequence

from .. import api
from ..config import SystemConfig
from ..traces.synthetic import random_trace
from .common import ExperimentResult, experiment_records


def run(
    levels_sweep: Sequence[int] = (14, 15, 16),
    records: Optional[int] = None,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> ExperimentResult:
    records = records if records is not None else experiment_records()
    rows: List[List[object]] = []
    for levels in levels_sweep:
        config = SystemConfig.scaled(levels=levels)
        speedups = []
        for seed in seeds:
            rng = random.Random(seed)
            trace = random_trace(
                records, config.oram.user_blocks, rng, gap=30,
                name=f"random-{seed}",
            )
            baseline = api.run(api.RunSpec(
                scheme="Baseline", workload=trace.name, seed=seed,
                config=config, trace=trace,
            )).result
            ir_alloc = api.run(api.RunSpec(
                scheme="IR-Alloc", workload=trace.name, seed=seed,
                config=config, trace=trace,
            )).result
            speedups.append(ir_alloc.speedup_over(baseline))
        mean = statistics.mean(speedups)
        stdev = statistics.pstdev(speedups)
        rows.append(
            [
                levels,
                config.oram.user_blocks,
                round(mean, 3),
                round(stdev, 4),
            ]
        )
    return ExperimentResult(
        experiment_id="Fig. 16",
        title="IR-Alloc speedup on random traces across tree sizes",
        headers=["tree levels", "user blocks", "mean speedup", "stdev"],
        rows=rows,
        paper_claim="speedups stay stable across 1/2/4 GB user data with "
                    "near-zero variance across random traces",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
