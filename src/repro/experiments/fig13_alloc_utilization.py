"""Fig. 13: tree level utilization under IR-Alloc.

Same methodology as Fig. 3 but with the IR-Alloc allocation: the shrunken
middle levels now run at higher utilization (well above 50% for random
traces, with the top levels close to full), which is where the increased
background-eviction pressure comes from.
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from .common import ExperimentResult
from .fig03_utilization import run as run_fig03


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    snapshots: int = 5,
) -> ExperimentResult:
    result = run_fig03(
        config=config, records=records, snapshots=snapshots, scheme="IR-Alloc"
    )
    result.experiment_id = "Fig. 13"
    result.title = "Space utilization per tree level over time (IR-Alloc)"
    result.paper_claim = (
        "with shrunken middle buckets the top/middle levels run at much "
        "higher utilization; random traces push them above 50%"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
