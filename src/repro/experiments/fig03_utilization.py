"""Fig. 3: tree space utilization per level over time.

The paper's methodology: a benchmark mix followed by a random-trace tail,
with snapshots taken along the run.  The expected shape: fluctuating top
levels, low-utilization middle levels (~20% under benchmark accesses,
~30% under random), and high-utilization bottom levels (70-80%).
"""

from __future__ import annotations

import random
from typing import Optional

from ..config import SystemConfig
from ..core.schemes import build_scheme
from ..sim.simulator import Simulator
from ..traces.mix import benchmark_mix_with_random_tail
from .common import ExperimentResult, experiment_records


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    snapshots: int = 5,
    scheme: str = "Baseline",
) -> ExperimentResult:
    config = config if config is not None else SystemConfig.scaled()
    records = records if records is not None else experiment_records()
    rng = random.Random(11)
    # 92.5% benchmark mix, 7.5% random tail — the paper's 3.7B-of-4B split.
    trace = benchmark_mix_with_random_tail(
        config.oram.user_blocks,
        benchmark_count=int(records * 0.925),
        random_count=records - int(records * 0.925),
        rng=rng,
    )
    components = build_scheme(scheme, config)
    simulator = Simulator(components, trace)
    result = simulator.run(utilization_snapshots=snapshots)

    levels = config.oram.levels
    headers = ["snapshot"] + [f"L{level}" for level in range(levels)]
    rows = []
    series = result.utilization_series
    for index, (cycle, utilization) in enumerate(series):
        label = "init" if index == 0 else f"{index}/{len(series) - 1}"
        rows.append([label] + [round(u, 3) for u in utilization])
    if series:
        averaged = [
            round(sum(snapshot[level] for _, snapshot in series) / len(series), 3)
            for level in range(levels)
        ]
        rows.append(["average"] + averaged)
    return ExperimentResult(
        experiment_id="Fig. 3",
        title=f"Space utilization per tree level over time ({scheme})",
        headers=headers,
        rows=rows,
        paper_claim="top levels fluctuate; middle levels ~20% (benchmarks) "
                    "to ~30% (random); bottom levels 70-80%",
        notes=[f"trace: benchmark mix + random tail, {records} records"],
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
