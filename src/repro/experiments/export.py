"""Export a full regeneration run as a Markdown report.

Runs every experiment (or a subset) and renders one document with the
paper claims next to the measured tables — the machinery used to produce
the results section of EXPERIMENTS.md from a fresh run.

Usage::

    python -m repro.experiments.export RESULTS.md
    REPRO_RECORDS=2000 python -m repro.experiments.export quick.md "Fig. 10"
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from ..analysis.report import write_report
from .run_all import ALL_EXPERIMENTS


def export(path: str, ids: Optional[List[str]] = None) -> Path:
    selected = set(ids or [])
    results = []
    for name, runner in ALL_EXPERIMENTS:
        if selected and name not in selected:
            continue
        results.append(runner())
    return write_report(
        results, path, title="IR-ORAM reproduction — regenerated results"
    )


def main(argv: Optional[List[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print(__doc__)
        return 2
    destination = export(argv[0], argv[1:])
    print(f"wrote {destination}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
