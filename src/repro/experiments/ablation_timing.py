"""Section VI-A ablation: IR-Alloc / IR-Stash without timing protection.

The paper notes both techniques are orthogonal to the timing-channel
defense and measures IR-Alloc at 40% speedup without it vs 41% with it
(slightly smaller, because the inevitable dummy accesses double as free
background evictions when the defense is on).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from ..config import SystemConfig
from .common import (
    ExperimentResult,
    cached_run,
    experiment_workloads,
    geometric_mean,
)

SCHEMES = ["IR-Alloc", "IR-Stash"]


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    config = config if config is not None else SystemConfig.scaled()
    unprotected = config.with_oram(
        replace(config.oram, timing_protection=False)
    )
    workloads = workloads if workloads is not None else experiment_workloads()
    rows = []
    speedups = {
        (scheme, protected): []
        for scheme in SCHEMES
        for protected in (True, False)
    }
    for workload in workloads:
        row: List[object] = [workload]
        for protected, cfg in ((True, config), (False, unprotected)):
            baseline = cached_run("Baseline", workload, cfg, records)
            for scheme in SCHEMES:
                result = cached_run(scheme, workload, cfg, records)
                speedup = result.speedup_over(baseline)
                speedups[(scheme, protected)].append(speedup)
                row.append(round(speedup, 3))
        rows.append(row)
    rows.append(
        ["geomean"]
        + [
            round(geometric_mean(speedups[(scheme, protected)]), 3)
            for protected in (True, False)
            for scheme in SCHEMES
        ]
    )
    return ExperimentResult(
        experiment_id="Ablation (Section VI-A)",
        title="IR-Alloc / IR-Stash speedups with and without timing protection",
        headers=[
            "workload",
            "IR-Alloc (protected)",
            "IR-Stash (protected)",
            "IR-Alloc (unprotected)",
            "IR-Stash (unprotected)",
        ],
        rows=rows,
        paper_claim="IR-Alloc: 40% speedup without timing protection vs 41% "
                    "with it (dummies double as free evictions)",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
