"""Fig. 10: performance of all schemes, normalized to the Baseline.

The paper's averages: Rho +11%, IR-Alloc +41%, IR-Stash +27%, IR-DWB +5%,
IR-ORAM +57% over Baseline (and +42% over Rho); LLC-D helps write-heavy
programs but slows mcf by 1.9x.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from .common import (
    ExperimentResult,
    cached_run,
    experiment_workloads,
    geometric_mean,
)

SCHEME_ORDER = [
    "Baseline",
    "Rho",
    "IR-Alloc",
    "IR-Stash",
    "IR-DWB",
    "IR-ORAM",
    "LLC-D",
]


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workloads: Optional[List[str]] = None,
    schemes: Optional[List[str]] = None,
) -> ExperimentResult:
    workloads = workloads if workloads is not None else experiment_workloads()
    schemes = schemes if schemes is not None else SCHEME_ORDER
    rows = []
    speedups = {scheme: [] for scheme in schemes}
    for workload in workloads:
        baseline = cached_run("Baseline", workload, config, records)
        row: List[object] = [workload]
        for scheme in schemes:
            result = (
                baseline
                if scheme == "Baseline"
                else cached_run(scheme, workload, config, records)
            )
            speedup = result.speedup_over(baseline)
            speedups[scheme].append(speedup)
            row.append(round(speedup, 3))
        rows.append(row)
    rows.append(
        ["geomean"]
        + [round(geometric_mean(speedups[scheme]), 3) for scheme in schemes]
    )
    return ExperimentResult(
        experiment_id="Fig. 10",
        title="Speedup over Baseline (higher is better)",
        headers=["workload"] + schemes,
        rows=rows,
        paper_claim="averages: Rho 1.11x, IR-Alloc 1.41x, IR-Stash 1.27x, "
                    "IR-DWB 1.05x, IR-ORAM 1.57x; LLC-D slows mcf 1.9x",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
