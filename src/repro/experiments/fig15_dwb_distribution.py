"""Fig. 15: path-access type distribution under IR-DWB.

The paper: IR-DWB converts enough dummy slots into useful early
write-backs to shrink the dummy share from ~11% to ~6% on average.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..oram.types import PathType
from .common import ExperimentResult, cached_run, experiment_workloads


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    workloads = workloads if workloads is not None else experiment_workloads()
    rows = []
    base_dummy_total = base_total = 0.0
    dwb_dummy_total = dwb_total = 0.0
    for workload in workloads:
        baseline = cached_run("Baseline", workload, config, records)
        dwb = cached_run("IR-DWB", workload, config, records)
        base_frac = baseline.dummy_fraction()
        dwb_frac = dwb.dummy_fraction()
        converted = dwb.counters.get("dwb.converted_slots", 0.0)
        rows.append(
            [
                workload,
                round(base_frac, 3),
                round(dwb_frac, 3),
                int(converted),
            ]
        )
        base_dummy_total += baseline.path_counts[PathType.DUMMY.value]
        base_total += baseline.total_paths()
        dwb_dummy_total += dwb.path_counts[PathType.DUMMY.value]
        dwb_total += dwb.total_paths()
    rows.append(
        [
            "average",
            round(base_dummy_total / max(base_total, 1), 3),
            round(dwb_dummy_total / max(dwb_total, 1), 3),
            "",
        ]
    )
    return ExperimentResult(
        experiment_id="Fig. 15",
        title="Dummy-path share: Baseline vs IR-DWB",
        headers=["workload", "dummy frac (Baseline)", "dummy frac (IR-DWB)",
                 "converted slots"],
        rows=rows,
        paper_claim="IR-DWB reduces the average dummy share from ~11% to ~6%",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
