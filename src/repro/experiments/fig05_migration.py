"""Fig. 5: block migration behaviour during path writes.

Section III-C observes that *pre-existing* stash blocks (blocks that were
in the stash before the current path's read phase) tend to be written to
top levels — two random paths rarely overlap deeply — while blocks just
fetched from the path flush back to the same or deeper levels.
"""

from __future__ import annotations

import random
from typing import Optional

from ..config import SystemConfig
from ..core.schemes import build_scheme
from ..sim.simulator import Simulator
from ..sim.runner import make_workload
from .common import ExperimentResult, experiment_records


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workload: str = "mix",
) -> ExperimentResult:
    config = config if config is not None else SystemConfig.scaled()
    records = records if records is not None else experiment_records()
    components = build_scheme("Baseline", config)
    components.controller.track_migration = True
    trace = make_workload(workload, config, records, seed=13)
    Simulator(components, trace).run()

    stats = components.stats
    pre = stats.histogram("migration.preexisting")
    fetched = stats.histogram("migration.fetched")
    levels = config.oram.levels
    pre_total = max(sum(pre.values()), 1.0)
    fetched_total = max(sum(fetched.values()), 1.0)
    rows = []
    for level in range(levels):
        rows.append(
            [
                level,
                round(pre.get(level, 0.0) / pre_total, 4),
                round(fetched.get(level, 0.0) / fetched_total, 4),
            ]
        )
    pre_top = sum(pre.get(level, 0.0) for level in range(levels // 2)) / pre_total
    fetched_top = (
        sum(fetched.get(level, 0.0) for level in range(levels // 2)) / fetched_total
    )
    return ExperimentResult(
        experiment_id="Fig. 5",
        title="Write-phase placement levels: pre-existing vs fetched blocks",
        headers=["level", "pre-existing frac", "fetched frac"],
        rows=rows,
        paper_claim="pre-existing stash blocks land near the top; fetched "
                    "blocks flush to the same or deeper levels",
        notes=[
            f"fraction placed in the top half of the tree: "
            f"pre-existing {pre_top:.2f} vs fetched {fetched_top:.2f}",
        ],
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
