"""Table I: the evaluation platform configuration.

Prints the paper-scale configuration side by side with the scaled default
the experiments run on, so every scaling decision is visible.
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from .common import ExperimentResult


def run(config: Optional[SystemConfig] = None) -> ExperimentResult:
    paper = SystemConfig.paper()
    scaled = config if config is not None else SystemConfig.scaled()

    def describe(system: SystemConfig):
        oram = system.oram
        return {
            "Processor fetch width / ROB": f"{system.cpu.issue_width} / {system.cpu.rob_size}",
            "Memory channels": system.dram.channels,
            "DRAM clock ratio (CPU/DRAM)": system.dram.cpu_cycles_per_dram_cycle,
            "LLC (sets x ways)": f"{system.llc.sets} x {system.llc.ways} = "
                                 f"{system.llc.capacity_bytes // 1024} KB",
            "Protected space (blocks)": oram.tree_slots(),
            "User data (blocks)": oram.user_blocks,
            "ORAM tree levels": oram.levels,
            "Bucket / block size": f"{max(oram.z_per_level)} / {oram.block_bytes} B",
            "Stash entries": oram.stash_capacity,
            "Tree-top cache levels (entries)": f"{oram.top_cached_levels} "
            f"({sum(oram.z_per_level[l] << l for l in range(oram.top_cached_levels))})",
            "PLB entries": oram.plb_sets * oram.plb_ways,
            "Issue interval T (cycles)": oram.issue_interval,
            "Blocks per path (PL)": oram.blocks_per_path(),
        }

    paper_desc = describe(paper)
    scaled_desc = describe(scaled)
    rows = [
        [key, paper_desc[key], scaled_desc[key]] for key in paper_desc
    ]
    return ExperimentResult(
        experiment_id="Table I",
        title="System configuration (paper scale vs scaled default)",
        headers=["parameter", "paper", "scaled"],
        rows=rows,
        paper_claim="8GB/4GB protected space, L=25, Z=4, 2MB LLC, "
                    "10-level tree-top cache, 200-entry stash",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
