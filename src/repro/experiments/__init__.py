"""Regenerators for every table and figure in the paper's evaluation.

Each module exposes ``run(...) -> ExperimentResult`` and prints the same
rows/series the paper reports.  ``run_all`` executes the whole suite.
"""

from .common import ExperimentResult, experiment_config, experiment_records

__all__ = ["ExperimentResult", "experiment_config", "experiment_records"]
