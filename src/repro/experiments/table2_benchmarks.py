"""Table II: the evaluated benchmarks and their read/write MPKI.

Regenerates the table from the benchmark models and validates each model
by generating a trace and measuring the post-LLC miss intensity it
actually produces on the scaled platform (the paper's MPKI are L2 misses
per kilo-instruction).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Optional

from ..config import SystemConfig
from ..traces.benchmarks import BENCHMARKS, benchmark_trace
from .common import ExperimentResult, experiment_records


def measured_llc_mpki(name: str, config: SystemConfig, records: int, seed: int = 7):
    """Post-LLC (read, write) MPKI of a generated trace, via a fast LRU model."""
    model = BENCHMARKS[name]
    rng = random.Random(seed)
    trace = benchmark_trace(
        model, config.oram.user_blocks, records, rng, llc_lines=config.llc.lines
    )
    lru: "OrderedDict[int, None]" = OrderedDict()
    read_misses = write_misses = 0
    for _, block, is_write in trace:
        if block in lru:
            lru.move_to_end(block)
            continue
        lru[block] = None
        if len(lru) > config.llc.lines:
            lru.popitem(last=False)
        if is_write:
            write_misses += 1
        else:
            read_misses += 1
    instructions = trace.instructions()
    scale = 1000.0 / max(instructions, 1)
    return read_misses * scale, write_misses * scale


def run(
    config: Optional[SystemConfig] = None, records: Optional[int] = None
) -> ExperimentResult:
    config = config if config is not None else SystemConfig.scaled()
    records = records if records is not None else experiment_records()
    rows = []
    for name, model in BENCHMARKS.items():
        read_measured, write_measured = measured_llc_mpki(name, config, records)
        rows.append(
            [
                model.suite,
                name,
                model.read_mpki,
                model.write_mpki,
                round(read_measured, 2),
                round(write_measured, 2),
            ]
        )
    return ExperimentResult(
        experiment_id="Table II",
        title="Evaluated benchmarks: Table II MPKI vs generated-trace MPKI",
        headers=[
            "suite",
            "benchmark",
            "paper read MPKI",
            "paper write MPKI",
            "measured read MPKI",
            "measured write MPKI",
        ],
        rows=rows,
        paper_claim="13 SPEC CPU2017 / PARSEC programs spanning 0.05-45.3 MPKI",
        notes=[
            "Measured MPKI comes from replaying the generated trace through "
            "an LRU model of the scaled LLC; the models aim at the paper's "
            "read/write balance and relative intensity, not exact values.",
        ],
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
