"""Fig. 12: the four IR-Alloc configurations of Section VI-B.

Normalized execution time per configuration, with the share of time spent
on background eviction.  The paper's trend: fewer blocks per path buys
performance, but aggressive shrinking raises background-eviction time.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..core.ir_alloc import PAPER_ALLOC_CONFIGS
from .common import (
    ExperimentResult,
    cached_run,
    experiment_workloads,
    geometric_mean,
)

CONFIGS = ["IR-Alloc1", "IR-Alloc2", "IR-Alloc3", "IR-Alloc4"]


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    workloads = workloads if workloads is not None else experiment_workloads()
    rows = []
    ratios = {name: [] for name in CONFIGS}
    for workload in workloads:
        baseline = cached_run("Baseline", workload, config, records)
        row: List[object] = [workload]
        for name in CONFIGS:
            result = cached_run(name, workload, config, records)
            normalized = result.cycles / max(baseline.cycles, 1)
            ratios[name].append(normalized)
            row.append(round(normalized, 3))
            row.append(round(result.eviction_cycle_share(), 3))
        rows.append(row)
    summary: List[object] = ["geomean"]
    for name in CONFIGS:
        summary.append(round(geometric_mean(ratios[name]), 3))
        summary.append("")
    rows.append(summary)
    headers = ["workload"]
    for name in CONFIGS:
        plan = PAPER_ALLOC_CONFIGS[name]
        headers.append(f"{name} (PL={plan.blocks_per_path()})")
        headers.append("evict share")
    return ExperimentResult(
        experiment_id="Fig. 12",
        title="IR-Alloc configurations: normalized time + eviction share",
        headers=headers,
        rows=rows,
        paper_claim="lower PL buys performance; aggressive configurations "
                    "(IR-Alloc3/4) spend visibly more time on background "
                    "eviction",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
