"""Run every experiment regenerator and print the paper-vs-measured tables.

Usage::

    python -m repro.experiments.run_all               # full suite
    REPRO_RECORDS=2000 python -m repro.experiments.run_all
    REPRO_WORKLOADS=gcc,mcf,lbm python -m repro.experiments.run_all
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Tuple

from . import (
    ablation_timing,
    fig02_path_types,
    fig03_utilization,
    fig04_utilization_per_bench,
    fig05_migration,
    fig06_treetop_reuse,
    fig07_alloc_example,
    fig10_performance,
    fig11_llcd,
    fig12_alloc_configs,
    fig13_alloc_utilization,
    fig14_posmap,
    fig15_dwb_distribution,
    fig16_scalability,
    table1_config,
    table2_benchmarks,
    zsearch,
)
from .common import ExperimentResult

ALL_EXPERIMENTS: List[Tuple[str, Callable[[], ExperimentResult]]] = [
    ("Table I", table1_config.run),
    ("Table II", table2_benchmarks.run),
    ("Fig. 2", fig02_path_types.run),
    ("Fig. 3", fig03_utilization.run),
    ("Fig. 4", fig04_utilization_per_bench.run),
    ("Fig. 5", fig05_migration.run),
    ("Fig. 6", fig06_treetop_reuse.run),
    ("Fig. 7", fig07_alloc_example.run),
    ("Fig. 10", fig10_performance.run),
    ("Fig. 11", fig11_llcd.run),
    ("Fig. 12", fig12_alloc_configs.run),
    ("Fig. 13", fig13_alloc_utilization.run),
    ("Fig. 14", fig14_posmap.run),
    ("Fig. 15", fig15_dwb_distribution.run),
    ("Fig. 16", fig16_scalability.run),
    ("Ablation", ablation_timing.run),
    ("Z-search", zsearch.run),
]


def _run_named(name: str) -> Tuple[str, ExperimentResult, float]:
    """Worker for parallel regeneration (module-level, picklable)."""
    runner = dict(ALL_EXPERIMENTS)[name]
    start = time.time()
    result = runner()
    return name, result, time.time() - start


def main(argv: List[str] = None, jobs: int = 1) -> List[ExperimentResult]:
    argv = argv if argv is not None else sys.argv[1:]
    selected = set(argv)
    names = [
        name for name, _ in ALL_EXPERIMENTS
        if not selected or name in selected
    ]
    # Through the warm-pool engine: regenerator wall times recorded on
    # previous runs order the dispatch longest-first, so the slowest
    # figure starts immediately instead of queueing behind quick tables.
    from ..perf.engine import engine_map, get_priors

    priors = get_priors()
    rows = engine_map(
        _run_named,
        names,
        jobs=jobs,
        cost=lambda name: priors.predict("experiments", name) or 1.0,
    )
    results = []
    for name, result, elapsed in rows:
        priors.observe("experiments", name, elapsed)
        print(result.to_text())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
        results.append(result)
    priors.save()
    return results


if __name__ == "__main__":
    main()
