"""Fig. 7: the IR-Alloc allocation example.

Pure configuration arithmetic at paper scale (L=25, top 10 levels cached):
the Z=2/3/4 range allocation needs 43 blocks per path, vs 60 for Path ORAM
with the 10-level tree-top cache and 100 without it.
"""

from __future__ import annotations

from ..core.ir_alloc import PAPER_ALLOC_CONFIGS, AllocPlan
from .common import ExperimentResult


def run() -> ExperimentResult:
    uniform_cached = AllocPlan("uniform+top10", ())
    uniform_uncached = AllocPlan("uniform", (), top_cached=0)
    rows = [
        ["Path ORAM (no tree-top cache)", "Z=4 everywhere",
         uniform_uncached.blocks_per_path()],
        ["Path ORAM + 10-level top cache", "Z=4 everywhere",
         uniform_cached.blocks_per_path()],
    ]
    for name in ("IR-ORAM", "IR-Alloc1", "IR-Alloc2", "IR-Alloc3", "IR-Alloc4"):
        plan = PAPER_ALLOC_CONFIGS[name]
        ranges = ", ".join(
            f"Z={z} for L{first}-{last}" for first, last, z in plan.ranges
        )
        rows.append([name, ranges, plan.blocks_per_path()])
    return ExperimentResult(
        experiment_id="Fig. 7",
        title="IR-Alloc allocation strategies: blocks fetched per path (PL)",
        headers=["allocation", "ranges (else Z=4)", "PL"],
        rows=rows,
        paper_claim="IR-Alloc accesses 43 blocks per path vs 60 (cached "
                    "baseline) and 100 (uncached Path ORAM)",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
