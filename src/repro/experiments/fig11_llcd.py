"""Fig. 11: IR-Stash + IR-Alloc on top of an LLC-D baseline.

The paper reports a 72% average improvement over a Baseline that adopts
delayed block remapping, with mcf at 1.63x (LLC-D triples its tree-top
hits, giving IR-Stash more PosMap accesses to eliminate).
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from .common import (
    ExperimentResult,
    cached_run,
    experiment_workloads,
    geometric_mean,
)


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    workloads = workloads if workloads is not None else experiment_workloads()
    rows = []
    speedups = []
    for workload in workloads:
        base = cached_run("LLC-D", workload, config, records)
        improved = cached_run(
            "IR-Stash+IR-Alloc(LLC-D)", workload, config, records
        )
        speedup = improved.speedup_over(base)
        speedups.append(speedup)
        rows.append([workload, round(speedup, 3)])
    rows.append(["geomean", round(geometric_mean(speedups), 3)])
    return ExperimentResult(
        experiment_id="Fig. 11",
        title="IR-Stash+IR-Alloc speedup over an LLC-D baseline",
        headers=["workload", "speedup"],
        rows=rows,
        paper_claim="72% average improvement over LLC-D; 1.63x for mcf",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
