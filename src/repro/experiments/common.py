"""Shared infrastructure for the experiment regenerators.

Results are plain tables (:class:`ExperimentResult`) so the harness can
print them, benchmarks can assert on them, and EXPERIMENTS.md can embed
them.  Simulation runs are memoized per (scheme, workload, records, config)
because several figures slice the same underlying matrix (Fig. 10/11/14/15
all share runs).

Environment knobs (env vars so they reach ``--jobs`` worker processes):

* ``REPRO_RECORDS``  — trace length per workload (default 5000);
* ``REPRO_WORKLOADS`` — comma-separated subset of workloads to run;
* ``REPRO_CONFIG``   — named platform (``scaled``/``paper``, default scaled);
* ``REPRO_SEED``     — base seed of the simulation matrix (default 7).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import api
from ..config import SystemConfig
from ..sim.results import SimulationResult
from ..traces.benchmarks import BENCHMARKS

#: paper order of evaluated workloads, plus the mix bar of Fig. 10
ALL_WORKLOADS: Tuple[str, ...] = tuple(BENCHMARKS) + ("mix",)


def experiment_records(default: int = 5000) -> int:
    """Trace length used by the experiment harness."""
    return int(os.environ.get("REPRO_RECORDS", default))


def experiment_workloads(
    default: Sequence[str] = ALL_WORKLOADS,
) -> List[str]:
    raw = os.environ.get("REPRO_WORKLOADS")
    if not raw:
        return list(default)
    return [name.strip() for name in raw.split(",") if name.strip()]


def experiment_config() -> SystemConfig:
    """The platform every experiment runs on (``REPRO_CONFIG`` selects)."""
    return api.RunSpec(
        config_name=os.environ.get("REPRO_CONFIG", "scaled")
    ).resolve_config()


def experiment_seed(default: int = 7) -> int:
    """Base seed of the simulation matrix (``REPRO_SEED`` overrides)."""
    return int(os.environ.get("REPRO_SEED", default))


@dataclass
class ExperimentResult:
    """A regenerated table or figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    paper_claim: str = ""
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        widths = [len(str(h)) for h in self.headers]
        formatted_rows = []
        for row in self.rows:
            cells = [_fmt(cell) for cell in row]
            formatted_rows.append(cells)
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_claim:
            lines.append(f"paper: {self.paper_claim}")
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for cells in formatted_rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(cells, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, header: str) -> List[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_map(self, key_header: Optional[str] = None) -> Dict[object, List[object]]:
        key_index = 0 if key_header is None else self.headers.index(key_header)
        return {row[key_index]: row for row in self.rows}


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


# ----------------------------------------------------------------------
# memoized simulation matrix
# ----------------------------------------------------------------------
_CACHE: Dict[Tuple, SimulationResult] = {}


def cached_run(
    scheme: str,
    workload: str,
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    seed: Optional[int] = None,
    utilization_snapshots: int = 0,
) -> SimulationResult:
    """Run (or reuse) one simulation of the experiment matrix."""
    config = config if config is not None else experiment_config()
    records = records if records is not None else experiment_records()
    seed = seed if seed is not None else experiment_seed()
    key = (scheme, workload, records, seed, utilization_snapshots, repr(config))
    if key not in _CACHE:
        _CACHE[key] = api.run(
            api.RunSpec(
                scheme=scheme,
                workload=workload,
                records=records,
                seed=seed,
                config=config,
                utilization_snapshots=utilization_snapshots,
            )
        ).result
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


def geometric_mean(values: Sequence[float]) -> float:
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))
