"""Fig. 2: the distribution of path-access types under the Baseline.

The paper reports, across benchmarks with T=1000: PT_d ~56% of memory
accesses, PT_p ~33% (Pos1 about 4x Pos2), PT_m the remaining ~11%.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..oram.types import PathType
from .common import (
    ExperimentResult,
    cached_run,
    experiment_workloads,
)


def run(
    config: Optional[SystemConfig] = None,
    records: Optional[int] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    workloads = workloads if workloads is not None else experiment_workloads()
    rows = []
    for workload in workloads:
        result = cached_run("Baseline", workload, config, records)
        counts = result.path_counts
        pos1 = counts.get(PathType.POS1.value, 0.0)
        pos2 = counts.get(PathType.POS2.value, 0.0)
        data = counts.get(PathType.DATA.value, 0.0)
        dummy = counts.get(PathType.DUMMY.value, 0.0)
        other = counts.get(PathType.EVICTION.value, 0.0)
        total = max(pos1 + pos2 + data + dummy + other, 1.0)
        rows.append(
            [
                workload,
                pos1 / total,
                pos2 / total,
                data / total,
                dummy / total,
                other / total,
            ]
        )
    # unweighted mean across workloads, matching the paper's aggregation
    count = max(len(rows), 1)
    rows.append(
        ["average"]
        + [sum(row[col] for row in rows) / count for col in range(1, 6)]
    )
    return ExperimentResult(
        experiment_id="Fig. 2",
        title="Distribution of path-access types (Baseline)",
        headers=["workload", "PTp(Pos1)", "PTp(Pos2)", "PTd", "PTm", "evict"],
        rows=rows,
        paper_claim="PTd ~56%, PTp ~33% (Pos1 ~ 4x Pos2), PTm ~11%",
    )


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
