"""A lightweight statistics registry shared by all simulator components.

Every component (DRAM model, caches, ORAM controller, IR-* engines) holds a
reference to one :class:`Stats` instance and records named counters,
histograms, and point-in-time snapshots into it.  The experiment harness
reads the registry after a run to regenerate the paper's tables and figures.

Counter keys are namespaced strings from :mod:`repro.stats_keys`
(``plb.reinserts``, ``dram.row_hits``, ...); :meth:`Stats.namespace`
returns one component's slice and the exporters
(:meth:`to_prometheus_text`, :meth:`to_json`) render the whole registry.

The registry also carries the run's optional
:class:`~repro.obs.tracer.Tracer` (:attr:`Stats.tracer`): components that
already share the stats object read ``stats.tracer`` to emit structured
trace events without any constructor plumbing.  ``tracer`` is ``None`` by
default, in which case instrumentation sites cost one attribute check.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle guard)
    from .obs.tracer import Tracer


class Stats:
    """Flat registry of counters, histograms, and snapshot series."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.histograms: Dict[str, Dict[Any, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self.series: Dict[str, List[Tuple[float, Any]]] = defaultdict(list)
        #: optional event tracer for this run (see repro.obs); attach it
        #: before building a scheme so components pick it up.
        self.tracer: Optional["Tracer"] = None

    # -- counters ----------------------------------------------------------
    def inc(self, key: str, amount: float = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        self.counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Set counter ``key`` to ``value``."""
        self.counters[key] = value

    def get(self, key: str, default: float = 0) -> float:
        """Read counter ``key``, returning ``default`` if never written."""
        return self.counters.get(key, default)

    # -- histograms --------------------------------------------------------
    def bump(self, key: str, bucket: Any, amount: float = 1) -> None:
        """Add ``amount`` to ``bucket`` of histogram ``key``."""
        self.histograms[key][bucket] += amount

    def histogram(self, key: str) -> Dict[Any, float]:
        """Return histogram ``key`` as a plain dict (empty if absent)."""
        return dict(self.histograms.get(key, {}))

    # -- time series -------------------------------------------------------
    def record(self, key: str, time: float, value: Any) -> None:
        """Append ``(time, value)`` to series ``key``."""
        self.series[key].append((time, value))

    # -- pickling ----------------------------------------------------------
    # Registries cross process boundaries (repro.api.run_many fans RunResults
    # out over workers), but defaultdict factories and tracer sinks (open
    # file handles, callables) do not: serialize plain dicts, drop the tracer.
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "histograms": {
                key: dict(hist) for key, hist in self.histograms.items()
            },
            "series": {key: list(points) for key, points in self.series.items()},
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__()
        self.counters.update(state["counters"])
        for key, hist in state["histograms"].items():
            self.histograms[key].update(hist)
        for key, points in state["series"].items():
            self.series[key].extend(points)

    # -- aggregation -------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Return a copy of all counters."""
        return dict(self.counters)

    def merge(self, other: "Stats") -> None:
        """Fold another registry's counters and histograms into this one."""
        for key, value in other.counters.items():
            self.counters[key] += value
        for key, hist in other.histograms.items():
            for bucket, value in hist.items():
                self.histograms[key][bucket] += value
        for key, points in other.series.items():
            self.series[key].extend(points)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return counter ratio, or 0.0 when the denominator is zero."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    # -- namespaced views ---------------------------------------------------
    def namespace(self, prefix: str) -> Dict[str, float]:
        """Counters of one component namespace, keys stripped of the prefix.

        ``stats.namespace("plb")`` returns ``{"reinserts": ..., ...}`` for
        every counter named ``plb.<something>``.
        """
        lead = prefix + "."
        return {
            key[len(lead):]: value
            for key, value in self.counters.items()
            if key.startswith(lead)
        }

    def namespaces(self) -> List[str]:
        """Every namespace with at least one counter, sorted."""
        seen = {key.split(".", 1)[0] for key in self.counters if "." in key}
        return sorted(seen)

    # -- export -------------------------------------------------------------
    def to_prometheus_text(self, prefix: str = "repro") -> str:
        """Counters and histograms in Prometheus exposition format."""
        from .obs.exporters import to_prometheus_text

        return to_prometheus_text(self, prefix=prefix)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Counters, histograms, and series as a JSON document."""
        from .obs.exporters import to_json

        return to_json(self, indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stats({len(self.counters)} counters)"
