"""A lightweight statistics registry shared by all simulator components.

Every component (DRAM model, caches, ORAM controller, IR-* engines) holds a
reference to one :class:`Stats` instance and records named counters,
histograms, and point-in-time snapshots into it.  The experiment harness
reads the registry after a run to regenerate the paper's tables and figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Tuple


class Stats:
    """Flat registry of counters, histograms, and snapshot series."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.histograms: Dict[str, Dict[Any, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self.series: Dict[str, List[Tuple[float, Any]]] = defaultdict(list)

    # -- counters ----------------------------------------------------------
    def inc(self, key: str, amount: float = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        self.counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Set counter ``key`` to ``value``."""
        self.counters[key] = value

    def get(self, key: str, default: float = 0) -> float:
        """Read counter ``key``, returning ``default`` if never written."""
        return self.counters.get(key, default)

    # -- histograms --------------------------------------------------------
    def bump(self, key: str, bucket: Any, amount: float = 1) -> None:
        """Add ``amount`` to ``bucket`` of histogram ``key``."""
        self.histograms[key][bucket] += amount

    def histogram(self, key: str) -> Dict[Any, float]:
        """Return histogram ``key`` as a plain dict (empty if absent)."""
        return dict(self.histograms.get(key, {}))

    # -- time series -------------------------------------------------------
    def record(self, key: str, time: float, value: Any) -> None:
        """Append ``(time, value)`` to series ``key``."""
        self.series[key].append((time, value))

    # -- aggregation -------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Return a copy of all counters."""
        return dict(self.counters)

    def merge(self, other: "Stats") -> None:
        """Fold another registry's counters and histograms into this one."""
        for key, value in other.counters.items():
            self.counters[key] += value
        for key, hist in other.histograms.items():
            for bucket, value in hist.items():
                self.histograms[key][bucket] += value
        for key, points in other.series.items():
            self.series[key].extend(points)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return counter ratio, or 0.0 when the denominator is zero."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stats({len(self.counters)} counters)"
