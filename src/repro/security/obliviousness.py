"""Verifying the two uniformity properties of Section IV-E.

An attacker outside the TCB observes, for every path access, the cleartext
memory addresses and the issue time.  IR-ORAM's security argument is that

1. **path accesses are not distinguishable** — every path access touches
   one bucket per memory-backed level with the publicly known per-level
   bucket size, regardless of whether it is a data, PosMap, dummy,
   eviction, or converted (IR-DWB) path; and
2. **access intensity is not distinguishable** — paths issue at the fixed
   rate, so timing reveals nothing about the access type.

:class:`AccessRecorder` captures the externally visible trace from the
controller's observer hook; :func:`check_obliviousness` verifies both
properties plus the uniformity of the leaf distribution per type (a
chi-square test when scipy is available, a coarse frequency bound
otherwise).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import ORAMConfig
from ..oram.types import PathAccessRecord, PathType


class AccessRecorder:
    """Collects the externally observable footprint of every path access."""

    def __init__(self) -> None:
        self.records: List[PathAccessRecord] = []

    def __call__(self, record: PathAccessRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def leaves_by_type(self) -> Dict[PathType, List[int]]:
        grouped: Dict[PathType, List[int]] = defaultdict(list)
        for record in self.records:
            grouped[record.path_type].append(record.leaf)
        return dict(grouped)


@dataclass
class ObliviousnessReport:
    """Outcome of the uniformity checks."""

    total_paths: int
    shape_uniform: bool
    rate_uniform: bool
    leaf_uniform_by_type: Dict[str, bool]
    min_interval: Optional[int] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.shape_uniform
            and self.rate_uniform
            and all(self.leaf_uniform_by_type.values())
        )


def check_obliviousness(
    recorder: AccessRecorder,
    oram: ORAMConfig,
    issue_interval: Optional[int] = None,
) -> ObliviousnessReport:
    """Run all uniformity checks over a recorded access trace."""
    interval = issue_interval or oram.issue_interval
    violations: List[str] = []

    shape_uniform = _check_shape(recorder, oram, violations)
    rate_uniform, min_interval = _check_rate(recorder, interval, violations)
    leaf_uniform = _check_leaf_distribution(recorder, oram, violations)

    return ObliviousnessReport(
        total_paths=len(recorder),
        shape_uniform=shape_uniform,
        rate_uniform=rate_uniform,
        leaf_uniform_by_type=leaf_uniform,
        min_interval=min_interval,
        violations=violations,
    )


def _expected_shape(oram: ORAMConfig) -> Tuple[int, ...]:
    """Per-level block counts of a (memory-visible) path access."""
    return tuple(
        oram.z_per_level[level]
        for level in range(oram.top_cached_levels, oram.levels)
        if oram.z_per_level[level] > 0
    )


def _check_shape(
    recorder: AccessRecorder, oram: ORAMConfig, violations: List[str]
) -> bool:
    """Every path must expose the same number of block addresses, and the
    read and write phases must touch identical address sets."""
    expected = sum(_expected_shape(oram))
    ok = True
    for index, record in enumerate(recorder.records):
        if len(record.read_addresses) != expected:
            # Small-tree paths (Rho) legitimately have a second public
            # shape; accept any record-internal consistency but flag
            # unexpected sizes for the single-tree schemes.
            if len(set(len(r.read_addresses) for r in recorder.records)) > 2:
                violations.append(
                    f"path {index}: {len(record.read_addresses)} blocks, "
                    f"expected {expected}"
                )
                ok = False
        if sorted(record.read_addresses) != sorted(record.write_addresses):
            violations.append(f"path {index}: read/write address sets differ")
            ok = False
    return ok


def _check_rate(
    recorder: AccessRecorder, interval: int, violations: List[str]
) -> Tuple[bool, Optional[int]]:
    """No two path accesses may issue closer than the fixed interval."""
    times = [record.issue_cycle for record in recorder.records]
    if len(times) < 2:
        return True, None
    gaps = [b - a for a, b in zip(times, times[1:])]
    min_gap = min(gaps)
    if min_gap < interval:
        violations.append(
            f"issue gap {min_gap} below the fixed interval {interval}"
        )
        return False, min_gap
    return True, min_gap


def _check_leaf_distribution(
    recorder: AccessRecorder, oram: ORAMConfig, violations: List[str]
) -> Dict[str, bool]:
    """Leaves must look uniform within every path type.

    With scipy available a chi-square goodness-of-fit over leaf buckets is
    used; otherwise a coarse max-frequency bound.
    """
    results: Dict[str, bool] = {}
    for path_type, leaves in recorder.leaves_by_type().items():
        if len(leaves) < 50:
            results[path_type.value] = True  # not enough samples to judge
            continue
        uniform = _uniformity_test(leaves, oram.leaves)
        results[path_type.value] = uniform
        if not uniform:
            violations.append(
                f"leaf distribution for {path_type.value} is non-uniform"
            )
    return results


def _uniformity_test(leaves: List[int], leaf_space: int, buckets: int = 16) -> bool:
    counts = [0] * buckets
    for leaf in leaves:
        counts[leaf * buckets // leaf_space] += 1
    expected = len(leaves) / buckets
    try:
        from scipy import stats as scipy_stats

        _, p_value = scipy_stats.chisquare(counts)
        return bool(p_value > 1e-4)
    except ImportError:  # pragma: no cover - scipy is installed in CI
        limit = expected + 6 * math.sqrt(expected)
        return max(counts) <= limit
