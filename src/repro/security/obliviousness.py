"""Verifying the two uniformity properties of Section IV-E.

An attacker outside the TCB observes, for every path access, the cleartext
memory addresses and the issue time.  IR-ORAM's security argument is that

1. **path accesses are not distinguishable** — every path access touches
   one bucket per memory-backed level with the publicly known per-level
   bucket size, regardless of whether it is a data, PosMap, dummy,
   eviction, or converted (IR-DWB) path; and
2. **access intensity is not distinguishable** — paths issue at the fixed
   rate, so timing reveals nothing about the access type.

:class:`AccessRecorder` captures the externally visible trace from the
controller's observer hook; :func:`check_obliviousness` verifies both
properties plus the uniformity of the leaf distribution per type (a
chi-square test when scipy is available, a coarse frequency bound
otherwise).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import ORAMConfig
from ..oram.types import PathAccessRecord, PathType


class AccessRecorder:
    """Collects the externally observable footprint of every path access."""

    def __init__(self) -> None:
        self.records: List[PathAccessRecord] = []

    def __call__(self, record: PathAccessRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def leaves_by_type(self) -> Dict[PathType, List[int]]:
        grouped: Dict[PathType, List[int]] = defaultdict(list)
        for record in self.records:
            grouped[record.path_type].append(record.leaf)
        return dict(grouped)


@dataclass
class ObliviousnessReport:
    """Outcome of the uniformity checks."""

    total_paths: int
    shape_uniform: bool
    rate_uniform: bool
    leaf_uniform_by_type: Dict[str, bool]
    min_interval: Optional[int] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.shape_uniform
            and self.rate_uniform
            and all(self.leaf_uniform_by_type.values())
        )


def check_obliviousness(
    recorder: AccessRecorder,
    oram: ORAMConfig,
    issue_interval: Optional[int] = None,
    leaf_spaces: Optional[Dict[int, int]] = None,
) -> ObliviousnessReport:
    """Run all uniformity checks over a recorded access trace.

    ``leaf_spaces`` maps an observed path size (block count) to the leaf
    space its leaves are drawn from, for schemes with more than one
    public path shape — Rho's small tree draws from far fewer leaves
    than the main tree, and judging those against ``oram.leaves`` would
    flag a uniform distribution as biased.  Unmapped sizes default to
    the main tree's leaf count.  Sizes of the same path type that map to
    the *same* space are pooled before testing: Ring's early reshuffles
    inflate a single protocol class into many observed sizes, and judging
    each thin slice alone would pass vacuously on sample count.
    """
    interval = issue_interval or oram.issue_interval
    violations: List[str] = []

    shape_uniform = _check_shape(recorder, oram, violations)
    rate_uniform, min_interval = _check_rate(recorder, interval, violations)
    leaf_uniform = _check_leaf_distribution(
        recorder, oram, violations, leaf_spaces
    )

    return ObliviousnessReport(
        total_paths=len(recorder),
        shape_uniform=shape_uniform,
        rate_uniform=rate_uniform,
        leaf_uniform_by_type=leaf_uniform,
        min_interval=min_interval,
        violations=violations,
    )


def _expected_shape(oram: ORAMConfig) -> Tuple[int, ...]:
    """Per-level block counts of a (memory-visible) path access."""
    return tuple(
        oram.z_per_level[level]
        for level in range(oram.top_cached_levels, oram.levels)
        if oram.z_per_level[level] > 0
    )


def _check_shape(
    recorder: AccessRecorder, oram: ORAMConfig, violations: List[str]
) -> bool:
    """Every path must expose the same number of block addresses, and the
    read and write phases must touch identical address sets."""
    expected = sum(_expected_shape(oram))
    ok = True
    for index, record in enumerate(recorder.records):
        if len(record.read_addresses) != expected:
            # Small-tree paths (Rho) legitimately have a second public
            # shape; accept any record-internal consistency but flag
            # unexpected sizes for the single-tree schemes.
            if len(set(len(r.read_addresses) for r in recorder.records)) > 2:
                violations.append(
                    f"path {index}: {len(record.read_addresses)} blocks, "
                    f"expected {expected}"
                )
                ok = False
        if sorted(record.read_addresses) != sorted(record.write_addresses):
            violations.append(f"path {index}: read/write address sets differ")
            ok = False
    return ok


def _check_rate(
    recorder: AccessRecorder, interval: int, violations: List[str]
) -> Tuple[bool, Optional[int]]:
    """No two path accesses may issue closer than the fixed interval."""
    times = [record.issue_cycle for record in recorder.records]
    if len(times) < 2:
        return True, None
    gaps = [b - a for a, b in zip(times, times[1:])]
    min_gap = min(gaps)
    if min_gap < interval:
        violations.append(
            f"issue gap {min_gap} below the fixed interval {interval}"
        )
        return False, min_gap
    return True, min_gap


def _check_leaf_distribution(
    recorder: AccessRecorder,
    oram: ORAMConfig,
    violations: List[str],
    leaf_spaces: Optional[Dict[int, int]] = None,
) -> Dict[str, bool]:
    """Leaves must look uniform within every (path type, path size) class.

    The path size is public (the attacker counts addresses), so a
    two-tree scheme legitimately produces one uniform distribution per
    size class — each judged against its own leaf space.  Size classes
    of one path type that ``leaf_spaces`` maps to the same space are
    pooled and judged once: a scheme whose reshuffle bursts ride on the
    read path (Ring) fans a single protocol class across many observed
    sizes, and judging each thin slice alone would pass vacuously on
    sample count.  With scipy available a chi-square goodness-of-fit
    over leaf buckets is used; otherwise a coarse frequency bound.
    """
    grouped: Dict[Tuple[PathType, int], List[int]] = defaultdict(list)
    sizes_per_type: Dict[PathType, set] = defaultdict(set)
    for record in recorder.records:
        size = len(record.read_addresses)
        grouped[(record.path_type, size)].append(record.leaf)
        sizes_per_type[record.path_type].add(size)

    def label(path_type: PathType, sizes: List[int]) -> str:
        if len(sizes) > 1:
            return f"{path_type.value}@{sizes[0]}+{len(sizes) - 1}"
        if len(sizes_per_type[path_type]) > 1:
            return f"{path_type.value}@{sizes[0]}"
        return path_type.value

    classes: List[Tuple[str, List[int], int]] = []
    pooled: Dict[Tuple[PathType, int], Tuple[List[int], List[int]]] = {}
    for (path_type, size), leaves in sorted(
        grouped.items(), key=lambda item: (item[0][0].value, item[0][1])
    ):
        if leaf_spaces and size in leaf_spaces:
            space = leaf_spaces[size]
            sizes, merged = pooled.setdefault((path_type, space), ([], []))
            sizes.append(size)
            merged.extend(leaves)
        else:
            classes.append((label(path_type, [size]), leaves, oram.leaves))
    for (path_type, space), (sizes, merged) in pooled.items():
        classes.append((label(path_type, sizes), merged, space))

    results: Dict[str, bool] = {}
    for key, leaves, leaf_space in classes:
        if len(leaves) < 50:
            results[key] = True  # not enough samples to judge
            continue
        uniform = _uniformity_test(leaves, leaf_space)
        results[key] = uniform
        if not uniform:
            violations.append(
                f"leaf distribution for {key} is non-uniform"
            )
    return results


#: chi-square validity floor: expected samples per histogram bucket
MIN_EXPECTED_PER_BUCKET = 5


def _uniformity_test(
    leaves: List[int],
    leaf_space: int,
    buckets: int = 16,
    force_fallback: bool = False,
) -> bool:
    """Chi-square uniformity test over bucketed leaves.

    The histogram shrinks so every bucket expects at least
    ``MIN_EXPECTED_PER_BUCKET`` samples (the classic chi-square validity
    condition); below two feedable buckets the sample is too small to
    certify uniformity and the test *fails* rather than passing
    vacuously.  ``force_fallback`` routes around scipy so tests can pin
    the coarse branch's behaviour on any machine.
    """
    buckets = min(buckets, len(leaves) // MIN_EXPECTED_PER_BUCKET)
    if buckets < 2:
        return False  # too few samples to certify anything
    counts = [0] * buckets
    for leaf in leaves:
        counts[leaf * buckets // leaf_space] += 1
    if not force_fallback:
        try:
            from scipy import stats as scipy_stats

            _, p_value = scipy_stats.chisquare(counts)
            return bool(p_value > 1e-4)
        except ImportError:  # pragma: no cover - scipy is installed in CI
            pass
    # Coarse fallback: the chi-square statistic against a generous
    # critical value (mean df plus four standard deviations).  Unlike the
    # old max-count bound this also catches *missing* mass — a sample
    # that never touches half the leaf space fails even though no single
    # bucket is over-full.
    expected = len(leaves) / buckets
    statistic = sum((c - expected) ** 2 / expected for c in counts)
    df = buckets - 1
    return statistic <= df + 4 * math.sqrt(2 * df)
