"""Security analysis: the obliviousness checker of Section IV-E."""

from .obliviousness import AccessRecorder, ObliviousnessReport, check_obliviousness

__all__ = ["AccessRecorder", "ObliviousnessReport", "check_obliviousness"]
