"""Security analysis: the obliviousness checker of Section IV-E and the
registry of deliberately leaky mutants that mutation-test the
adversarial distinguisher (see ``docs/security.md``)."""

from .mutants import MUTANTS, Mutant, build_mutant
from .obliviousness import AccessRecorder, ObliviousnessReport, check_obliviousness

__all__ = [
    "AccessRecorder",
    "MUTANTS",
    "Mutant",
    "ObliviousnessReport",
    "build_mutant",
    "check_obliviousness",
]
