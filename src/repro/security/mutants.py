"""Deliberately leaky controller mutants: the distinguisher's self-test.

A statistical indistinguishability harness can pass vacuously — weak
features, too few seeds, a broken test statistic — and nothing in a clean
run would ever notice.  These mutants are the mutation-testing answer:
each one re-introduces a classic ORAM side channel, each leaking through
a *different* observable feature, and the harness
(:mod:`repro.validate.distinguish`) must flag every one of them before
its clean verdicts mean anything.

The registry deliberately lives outside
:data:`repro.core.schemes.SCHEMES`: mutants must never enter the golden
corpus, the lockstep oracle zoo, the fuzz rotation, or the CLI ``run``
scheme list.  They are reachable only through
:func:`build_mutant` / :data:`MUTANTS`.

| mutant              | leak                                | feature that catches it |
|---------------------|-------------------------------------|-------------------------|
| skip-dummies        | empty slots issue nothing           | inter-issue gaps        |
| half-rate-dummies   | dummies issued every other slot     | inter-issue gaps        |
| leaf-biased-dummies | dummy leaves from half the space    | leaf histogram          |
| biased-remap        | remap leaves from half the space    | leaf histogram          |
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..cache.llc import LastLevelCache
from ..config import SystemConfig
from ..oram.controller import PathORAMController, SlotResult
from ..oram.types import PathType
from ..stats import Stats


class _SkipDummiesController(PathORAMController):
    """Timing mutant: empty issue slots stay empty.

    The externally visible issue stream then follows the program's demand
    pattern — exactly the intensity channel the fixed-rate defense (and
    IR-ORAM's Section IV-E argument) exists to close.
    """

    SUPPORTS_NATIVE_BATCH = False

    def _dummy_slot(self, now: int) -> Optional[SlotResult]:
        return None


class _HalfRateDummiesController(PathORAMController):
    """Timing mutant: dummy paths issue only every other empty slot.

    The classic bandwidth-saving "optimization": real work always
    issues, but the filler rate halves, so issue gaps stretch to twice
    the interval exactly when the program is idle — a data-dependent
    issue cadence.
    """

    SUPPORTS_NATIVE_BATCH = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._dummy_toggle = False

    def _dummy_slot(self, now: int) -> Optional[SlotResult]:
        self._dummy_toggle = not self._dummy_toggle
        if self._dummy_toggle:
            return None
        return super()._dummy_slot(now)


class _LeafBiasedDummiesController(PathORAMController):
    """Address mutant: dummy leaves drawn from the lower half of the tree.

    Real paths stay uniform, so the mix of dummy and real slots — i.e.
    the program's memory intensity — shows through the pooled leaf
    histogram.
    """

    SUPPORTS_NATIVE_BATCH = False

    def dummy_path(self, now: int) -> SlotResult:
        leaf = self.rng.randrange(max(1, self.oram.leaves // 2))
        finish_read, start, _ = self._service_path(leaf, PathType.DUMMY, now)
        finish_write = self._write_path(leaf, finish_read, PathType.DUMMY)
        return SlotResult(True, PathType.DUMMY, start, finish_read, finish_write)


def _biased_remap(config: SystemConfig, stats: Stats, rng: random.Random):
    """Address mutant: remap draws leaves from the lower half of the tree.

    A classically broken remap RNG.  Initial assignments stay uniform,
    so the bias only shows on *re-observed* blocks — chiefly the PosMap
    blocks a memory-intensive program refetches as the PLB thrashes,
    which a compute-bound program never does.
    """
    from ..core.schemes import SimComponents

    llc = LastLevelCache(config.llc, stats)
    controller = PathORAMController(config, stats, rng)
    controller.SUPPORTS_NATIVE_BATCH = False
    posmap = controller.posmap

    def biased(block: int) -> int:
        leaf = posmap._rng.randrange(max(1, posmap.leaves // 2))
        posmap._leaf_of[block] = leaf
        posmap.remap_count += 1
        return leaf

    posmap.remap = biased  # type: ignore[method-assign]
    return SimComponents(config, controller, llc, stats, rng)


def _plain(
    controller_cls,
) -> Callable[[SystemConfig, Stats, random.Random], object]:
    def build(config: SystemConfig, stats: Stats, rng: random.Random):
        from ..core.schemes import SimComponents

        llc = LastLevelCache(config.llc, stats)
        controller = controller_cls(config, stats, rng)
        return SimComponents(config, controller, llc, stats, rng)

    return build


@dataclass(frozen=True)
class Mutant:
    """One registered leaky scheme and the feature expected to catch it.

    ``programs`` is the adversary's best program pair for this leak —
    the two arms the distinguisher runs when mutation-testing itself.
    """

    name: str
    description: str
    builder: Callable
    leaks_via: str
    programs: Tuple[str, str] = ("hot-compute", "uniform-memory")


MUTANTS: Dict[str, Mutant] = {
    mutant.name: mutant
    for mutant in [
        Mutant(
            "skip-dummies",
            "no dummy paths: issue stream follows the demand pattern",
            _plain(_SkipDummiesController),
            leaks_via="issue gaps",
        ),
        Mutant(
            "half-rate-dummies",
            "dummies issued every other empty slot: data-dependent intervals",
            _plain(_HalfRateDummiesController),
            leaks_via="issue gaps",
        ),
        Mutant(
            "leaf-biased-dummies",
            "dummy leaves drawn from the lower half of the leaf space",
            _plain(_LeafBiasedDummiesController),
            leaks_via="leaf histogram",
        ),
        Mutant(
            "biased-remap",
            "remap RNG draws from the lower half of the leaf space",
            _biased_remap,
            leaks_via="leaf histogram",
            # The bias is only visible on re-observed (remapped) blocks:
            # the scan arm's sequential PosMap locality produces almost
            # no refetches, while uniform access thrashes the PLB and
            # re-reads remapped PosMap blocks constantly.
            programs=("stride-pathological", "uniform-memory"),
        ),
    ]
}


def build_mutant(
    name: str,
    config: SystemConfig,
    stats: Optional[Stats] = None,
    rng: Optional[random.Random] = None,
):
    """Build a mutant by name (KeyError lists the valid names)."""
    try:
        mutant = MUTANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutant {name!r}; available: {sorted(MUTANTS)}"
        ) from None
    stats = stats if stats is not None else Stats()
    rng = rng if rng is not None else random.Random(config.seed)
    return mutant.builder(config, stats, rng)
