"""Trace-driven processor front end."""

from .processor import MemoryOp, Processor

__all__ = ["Processor", "MemoryOp"]
