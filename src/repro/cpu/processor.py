"""A trace-driven approximation of the 4-issue out-of-order core (Table I).

The model captures the processor behaviours that matter to an ORAM study:

* *when misses reach the memory system* — instruction gaps divided by peak
  issue width, with bursty clusters straight from the trace;
* *when the core stalls on reads* — a read may be outstanding only while
  the ROB can cover it, and at most ``max_outstanding_reads`` reads overlap
  (the memory-level-parallelism limit);
* *write backpressure* — writes retire through a finite write buffer; the
  core keeps running until ``write_buffer`` write-allocate fetches are in
  flight, then stalls for the oldest.  Without this, write-heavy programs
  would unrealistically race through their traces and leave the ORAM
  draining a giant backlog with no timing-protection dummy slots at all.

The processor does not touch the LLC itself; it emits :class:`MemoryOp`
events to whatever memory hierarchy the simulator wires in, and is told
about completions via :meth:`Processor.complete`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from .. import stats_keys as sk
from ..config import CPUConfig
from ..stats import Stats
from ..traces.trace import Trace


@dataclass(frozen=True)
class MemoryOp:
    """One L1 miss presented to the memory hierarchy."""

    block: int
    is_write: bool
    time: int


#: The hierarchy callback: returns ``None`` for a hit (or merged access)
#: after charging latency itself, or a token identifying an outstanding
#: fetch the processor must eventually see completed.
HierarchyFn = Callable[[MemoryOp], Optional[int]]


class Processor:
    """Replays a trace against a memory hierarchy with OoO-style slack."""

    def __init__(
        self,
        trace: Trace,
        config: CPUConfig,
        stats: Optional[Stats] = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.cpu_time = 0
        self._index = 0
        #: outstanding reads / write-allocates as (issue_time, token)
        self._reads: Deque[Tuple[int, int]] = deque()
        self._writes: Deque[Tuple[int, int]] = deque()
        self._completed: Dict[int, int] = {}
        self._rob_reach = config.rob_size // config.issue_width
        self.retired_instructions = 0
        self.finish_time: Optional[int] = None

    # -- hierarchy feedback ----------------------------------------------------
    def complete(self, token: int, time: int) -> None:
        """A previously issued fetch's data arrived at ``time``."""
        self._completed[token] = time

    # -- execution ----------------------------------------------------------------
    @property
    def done(self) -> bool:
        return (
            self._index >= len(self.trace.records)
            and not self._reads
            and not self._writes
        )

    def trace_exhausted(self) -> bool:
        return self._index >= len(self.trace.records)

    def outstanding_reads(self) -> int:
        return len(self._reads)

    def advance_to(self, now: int, hierarchy: HierarchyFn) -> None:
        """Execute forward until ``cpu_time`` passes ``now`` or the core blocks."""
        records = self.trace.records
        while True:
            self._retire_ready(self._reads)
            self._retire_ready(self._writes)
            if self._index >= len(records):
                self._drain()
                return
            blocker = self._blocking_queue()
            if blocker is not None:
                if not self._unblock(blocker):
                    self.stats.inc(sk.CPU_BLOCK_EVENTS)
                    return
                continue
            if self.cpu_time > now:
                return
            gap, block, is_write = records[self._index]
            self._index += 1
            self.retired_instructions += gap
            self.cpu_time += max(1, gap // self.config.issue_width)
            op = MemoryOp(block, is_write, self.cpu_time)
            token = hierarchy(op)
            if token is None:
                continue
            if is_write:
                self._writes.append((self.cpu_time, token))
                self.stats.inc(sk.CPU_WRITE_MISSES_ISSUED)
            else:
                self._reads.append((self.cpu_time, token))
                self.stats.inc(sk.CPU_READ_MISSES_ISSUED)

    def _drain(self) -> None:
        """Past the last record: retire whatever has completed already."""
        for queue in (self._reads, self._writes):
            while queue and queue[0][1] in self._completed:
                _, token = queue.popleft()
                completion = self._completed.pop(token)
                if completion > self.cpu_time:
                    self.cpu_time = completion
        if not self._reads and not self._writes and self.finish_time is None:
            self.finish_time = self.cpu_time

    def _retire_ready(self, queue: Deque[Tuple[int, int]]) -> None:
        """Retire head entries whose data has already arrived.

        Entries completing in the future are left in place: retiring them
        must advance the clock, which only :meth:`_unblock` (a stall) or
        :meth:`_drain` may do.
        """
        while queue and queue[0][1] in self._completed:
            _, token = queue[0]
            if self._completed[token] > self.cpu_time:
                break
            self._completed.pop(token)
            queue.popleft()

    def _blocking_queue(self) -> Optional[Deque[Tuple[int, int]]]:
        """Which outstanding queue, if any, prevents further issue."""
        if len(self._writes) >= self.config.write_buffer:
            return self._writes
        if not self._reads:
            return None
        if len(self._reads) >= self.config.max_outstanding_reads:
            return self._reads
        oldest_issue, _ = self._reads[0]
        if self.cpu_time - oldest_issue > self._rob_reach:
            return self._reads
        return None

    def _unblock(self, queue: Deque[Tuple[int, int]]) -> bool:
        """Stall until the queue's oldest entry completes, if time is known."""
        _, token = queue[0]
        if token not in self._completed:
            return False
        completion = self._completed.pop(token)
        queue.popleft()
        if completion > self.cpu_time:
            self.stats.inc(sk.CPU_STALL_CYCLES, completion - self.cpu_time)
            self.cpu_time = completion
        return True

    # -- scheduling hints -----------------------------------------------------------
    def next_request_time(self) -> Optional[int]:
        """Projected time of the next memory op, or None if blocked/done."""
        if self.trace_exhausted() or self._blocking_queue() is not None:
            return None
        gap, _, _ = self.trace.records[self._index]
        return self.cpu_time + max(1, gap // self.config.issue_width)
