/* Optional C hot-path kernels for the repro simulator.
 *
 * Compiled on demand by repro.perf.native with the system C compiler and
 * loaded as the extension module `_repro_fastpath`.  Every function here
 * mirrors a pure-Python implementation bit for bit — the Python versions
 * stay in the tree as both fallback and behavioural oracle, and the
 * equivalence tests compare whole simulations across the two.
 *
 * The kernels operate directly on the simulator's live Python objects
 * (plain lists of ints), so there is a single source of truth for all
 * state; no separate C-side state is kept.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

static inline unsigned long long
now_ns(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (unsigned long long)ts.tv_sec * 1000000000ull +
           (unsigned long long)ts.tv_nsec;
}

/* dram_service(triples, ready, open_row, bus_free,
 *              now_dram, t_rp, t_rcd, t_burst, cas_burst)
 *   -> (finish_dram, row_hits, row_conflicts)
 *
 * `triples` is the flat [bank, channel, row, ...] list produced by
 * DRAMModel.decompose_batch; `ready`, `open_row` (row id or -1 = closed)
 * and `bus_free` are the model's bank-state lists, mutated in place.
 * Mirrors DRAMModel._service_py.
 */
static PyObject *
dram_service(PyObject *self, PyObject *args)
{
    PyObject *triples, *ready, *open_row, *bus_free;
    long long now_dram, t_rp, t_rcd, t_burst, cas_burst;
    if (!PyArg_ParseTuple(
            args, "O!O!O!O!LLLLL",
            &PyList_Type, &triples, &PyList_Type, &ready,
            &PyList_Type, &open_row, &PyList_Type, &bus_free,
            &now_dram, &t_rp, &t_rcd, &t_burst, &cas_burst))
        return NULL;

    Py_ssize_t n = PyList_GET_SIZE(triples);
    long long finish = now_dram;
    long long row_hits = 0;
    long long conflicts = 0;

    for (Py_ssize_t i = 0; i + 2 < n; i += 3) {
        long long bank = PyLong_AsLongLong(PyList_GET_ITEM(triples, i));
        long long channel = PyLong_AsLongLong(PyList_GET_ITEM(triples, i + 1));
        long long row = PyLong_AsLongLong(PyList_GET_ITEM(triples, i + 2));
        if (PyErr_Occurred())
            return NULL;
        if (bank < 0 || bank >= PyList_GET_SIZE(ready) ||
            channel < 0 || channel >= PyList_GET_SIZE(bus_free)) {
            PyErr_SetString(PyExc_IndexError, "bank/channel out of range");
            return NULL;
        }

        long long t = PyLong_AsLongLong(PyList_GET_ITEM(ready, bank));
        long long freed = PyLong_AsLongLong(PyList_GET_ITEM(bus_free, channel));
        if (freed > t)
            t = freed;
        if (now_dram > t)
            t = now_dram;

        long long current = PyLong_AsLongLong(PyList_GET_ITEM(open_row, bank));
        if (PyErr_Occurred())
            return NULL;
        if (current != row) {
            if (current != -1) {
                t += t_rp;
                conflicts++;
            }
            t += t_rcd;
            PyObject *row_obj = PyLong_FromLongLong(row);
            if (row_obj == NULL)
                return NULL;
            PyList_SetItem(open_row, bank, row_obj);
        } else {
            row_hits++;
        }

        long long done = t + cas_burst;
        long long next_slot = t + t_burst;
        PyObject *slot_obj = PyLong_FromLongLong(next_slot);
        if (slot_obj == NULL)
            return NULL;
        PyList_SetItem(bus_free, channel, slot_obj);
        slot_obj = PyLong_FromLongLong(next_slot);
        if (slot_obj == NULL)
            return NULL;
        PyList_SetItem(ready, bank, slot_obj);
        if (done > finish)
            finish = done;
    }
    return Py_BuildValue("LLL", finish, row_hits, conflicts);
}

/* read_and_clear(pairs, level_used, empty) -> [(block, level), ...]
 *
 * `pairs` is a list of (level, slots) tuples (ORAMTree.path_slots);
 * every non-empty slot is cleared to `empty`, its block collected, and
 * level_used decremented per level.  Mirrors the pure-Python loop in
 * ORAMTree.read_and_clear.
 */
static PyObject *
read_and_clear(PyObject *self, PyObject *args)
{
    PyObject *pairs, *level_used;
    long long empty;
    if (!PyArg_ParseTuple(args, "O!O!L",
                          &PyList_Type, &pairs,
                          &PyList_Type, &level_used, &empty))
        return NULL;

    PyObject *removed = PyList_New(0);
    if (removed == NULL)
        return NULL;
    PyObject *empty_obj = PyLong_FromLongLong(empty);
    if (empty_obj == NULL) {
        Py_DECREF(removed);
        return NULL;
    }

    Py_ssize_t n_pairs = PyList_GET_SIZE(pairs);
    for (Py_ssize_t p = 0; p < n_pairs; p++) {
        PyObject *pair = PyList_GET_ITEM(pairs, p);
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
            PyErr_SetString(PyExc_TypeError, "pairs must hold (level, slots)");
            goto fail;
        }
        PyObject *level_obj = PyTuple_GET_ITEM(pair, 0);
        PyObject *slots = PyTuple_GET_ITEM(pair, 1);
        if (!PyList_Check(slots)) {
            PyErr_SetString(PyExc_TypeError, "slots must be a list");
            goto fail;
        }
        Py_ssize_t z = PyList_GET_SIZE(slots);
        long long cleared = 0;
        for (Py_ssize_t i = 0; i < z; i++) {
            PyObject *block = PyList_GET_ITEM(slots, i);
            long long value = PyLong_AsLongLong(block);
            if (PyErr_Occurred())
                goto fail;
            if (value == empty)
                continue;
            PyObject *tup = PyTuple_Pack(2, block, level_obj);
            if (tup == NULL)
                goto fail;
            int rc = PyList_Append(removed, tup);
            Py_DECREF(tup);
            if (rc < 0)
                goto fail;
            Py_INCREF(empty_obj);
            PyList_SetItem(slots, i, empty_obj);
            cleared++;
        }
        if (cleared) {
            long long level = PyLong_AsLongLong(level_obj);
            if (PyErr_Occurred())
                goto fail;
            if (level < 0 || level >= PyList_GET_SIZE(level_used)) {
                PyErr_SetString(PyExc_IndexError, "level out of range");
                goto fail;
            }
            long long used =
                PyLong_AsLongLong(PyList_GET_ITEM(level_used, level));
            if (PyErr_Occurred())
                goto fail;
            PyObject *used_obj = PyLong_FromLongLong(used - cleared);
            if (used_obj == NULL)
                goto fail;
            PyList_SetItem(level_used, level, used_obj);
        }
    }
    Py_DECREF(empty_obj);
    return removed;

fail:
    Py_DECREF(empty_obj);
    Py_DECREF(removed);
    return NULL;
}

/* ---------------------------------------------------------------- */
/* Stash index surgery shared by the bulk-add and write-path kernels */
/* ---------------------------------------------------------------- */

static inline long long
bit_length(unsigned long long x)
{
    return x ? 64 - __builtin_clzll(x) : 0;
}

/* Remove `block` from the stash dicts (entries, seq, prefix bucket).
 * The caller must hold another reference to `block` (e.g. a tree slot).
 */
static int
stash_remove_indexed(PyObject *entries, PyObject *seq_dict,
                     PyObject *by_prefix, long long prefix_shift,
                     PyObject *block)
{
    PyObject *leaf_obj = PyDict_GetItem(entries, block);
    if (leaf_obj == NULL) {
        PyErr_SetString(PyExc_KeyError, "block not in stash");
        return -1;
    }
    long long leaf = PyLong_AsLongLong(leaf_obj);
    if (leaf == -1 && PyErr_Occurred())
        return -1;
    PyObject *seq_obj = PyDict_GetItem(seq_dict, block);
    if (seq_obj == NULL) {
        PyErr_SetString(PyExc_KeyError, "block not in stash seq index");
        return -1;
    }
    Py_INCREF(seq_obj);
    PyObject *prefix_obj = PyLong_FromLongLong(leaf >> prefix_shift);
    if (prefix_obj == NULL) {
        Py_DECREF(seq_obj);
        return -1;
    }
    PyObject *bucket = PyDict_GetItem(by_prefix, prefix_obj);
    if (bucket == NULL || PyDict_DelItem(bucket, seq_obj) < 0) {
        if (bucket == NULL)
            PyErr_SetString(PyExc_KeyError, "stash prefix bucket missing");
        Py_DECREF(prefix_obj);
        Py_DECREF(seq_obj);
        return -1;
    }
    if (PyDict_GET_SIZE(bucket) == 0 &&
        PyDict_DelItem(by_prefix, prefix_obj) < 0) {
        Py_DECREF(prefix_obj);
        Py_DECREF(seq_obj);
        return -1;
    }
    Py_DECREF(prefix_obj);
    Py_DECREF(seq_obj);
    if (PyDict_DelItem(seq_dict, block) < 0)
        return -1;
    return PyDict_DelItem(entries, block);
}

/* Insert or update one stash entry with full index maintenance (the body
 * of Stash.add).  ``leaf_obj``/``leaf`` are the block's current mapping;
 * the previous mapping is read *before* the entries dict is updated so
 * the borrowed old-leaf reference is never used after its slot has been
 * replaced.  Advances ``*next_seq`` for fresh entries.  Returns 0, or -1
 * with an exception set.
 */
static int
stash_add_one(PyObject *entries, PyObject *seq_dict, PyObject *by_prefix,
              long long prefix_shift, PyObject *block, PyObject *leaf_obj,
              long long leaf, long long *next_seq)
{
    PyObject *old_leaf = PyDict_GetItem(entries, block);
    long long old = 0;
    int fresh = (old_leaf == NULL);
    if (!fresh) {
        old = PyLong_AsLongLong(old_leaf);
        if (old == -1 && PyErr_Occurred())
            return -1;
    }
    if (PyDict_SetItem(entries, block, leaf_obj) < 0)
        return -1;
    if (fresh) {
        /* Fresh entry: assign a sequence number and index it. */
        PyObject *seq_obj = PyLong_FromLongLong(*next_seq);
        if (seq_obj == NULL)
            return -1;
        (*next_seq)++;
        if (PyDict_SetItem(seq_dict, block, seq_obj) < 0) {
            Py_DECREF(seq_obj);
            return -1;
        }
        PyObject *prefix_obj = PyLong_FromLongLong(leaf >> prefix_shift);
        if (prefix_obj == NULL) {
            Py_DECREF(seq_obj);
            return -1;
        }
        PyObject *bucket = PyDict_GetItem(by_prefix, prefix_obj);
        if (bucket == NULL) {
            bucket = PyDict_New();
            if (bucket == NULL ||
                PyDict_SetItem(by_prefix, prefix_obj, bucket) < 0) {
                Py_XDECREF(bucket);
                Py_DECREF(prefix_obj);
                Py_DECREF(seq_obj);
                return -1;
            }
            Py_DECREF(bucket);  /* by_prefix holds it now */
        }
        if (PyDict_SetItem(bucket, seq_obj, block) < 0) {
            Py_DECREF(prefix_obj);
            Py_DECREF(seq_obj);
            return -1;
        }
        Py_DECREF(prefix_obj);
        Py_DECREF(seq_obj);
        return 0;
    }
    /* Existing entry: keep its seq, move buckets if needed. */
    {
        long long old_prefix = old >> prefix_shift;
        long long new_prefix = leaf >> prefix_shift;
        if (old_prefix == new_prefix)
            return 0;
        PyObject *seq_obj = PyDict_GetItem(seq_dict, block);
        if (seq_obj == NULL) {
            PyErr_SetString(PyExc_KeyError, "stash seq missing");
            return -1;
        }
        Py_INCREF(seq_obj);
        PyObject *old_obj = PyLong_FromLongLong(old_prefix);
        PyObject *bucket =
            old_obj ? PyDict_GetItem(by_prefix, old_obj) : NULL;
        if (bucket == NULL || PyDict_DelItem(bucket, seq_obj) < 0) {
            if (bucket == NULL && !PyErr_Occurred())
                PyErr_SetString(PyExc_KeyError,
                                "stash prefix bucket missing");
            Py_XDECREF(old_obj);
            Py_DECREF(seq_obj);
            return -1;
        }
        if (PyDict_GET_SIZE(bucket) == 0)
            PyDict_DelItem(by_prefix, old_obj);
        Py_DECREF(old_obj);
        PyObject *new_obj = PyLong_FromLongLong(new_prefix);
        if (new_obj == NULL) {
            Py_DECREF(seq_obj);
            return -1;
        }
        bucket = PyDict_GetItem(by_prefix, new_obj);
        if (bucket == NULL) {
            bucket = PyDict_New();
            if (bucket == NULL ||
                PyDict_SetItem(by_prefix, new_obj, bucket) < 0) {
                Py_XDECREF(bucket);
                Py_DECREF(new_obj);
                Py_DECREF(seq_obj);
                return -1;
            }
            Py_DECREF(bucket);
        }
        if (PyDict_SetItem(bucket, seq_obj, block) < 0) {
            Py_DECREF(new_obj);
            Py_DECREF(seq_obj);
            return -1;
        }
        Py_DECREF(new_obj);
        Py_DECREF(seq_obj);
    }
    return 0;
}

/* Insert a fresh block into the stash dicts with a pre-assigned
 * sequence number — the array-mode write-back for path survivors that
 * bypassed the dicts during the read phase.  The block must not already
 * be present; dict operations run in the same order as the fresh branch
 * of stash_add_one so the resulting index state is identical.
 */
static int
stash_insert_with_seq(PyObject *entries, PyObject *seq_dict,
                      PyObject *by_prefix, long long prefix_shift,
                      PyObject *block, PyObject *leaf_obj, long long leaf,
                      long long seq)
{
    if (PyDict_SetItem(entries, block, leaf_obj) < 0)
        return -1;
    PyObject *seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL)
        return -1;
    if (PyDict_SetItem(seq_dict, block, seq_obj) < 0) {
        Py_DECREF(seq_obj);
        return -1;
    }
    PyObject *prefix_obj = PyLong_FromLongLong(leaf >> prefix_shift);
    if (prefix_obj == NULL) {
        Py_DECREF(seq_obj);
        return -1;
    }
    PyObject *bucket = PyDict_GetItem(by_prefix, prefix_obj);
    if (bucket == NULL) {
        bucket = PyDict_New();
        if (bucket == NULL ||
            PyDict_SetItem(by_prefix, prefix_obj, bucket) < 0) {
            Py_XDECREF(bucket);
            Py_DECREF(prefix_obj);
            Py_DECREF(seq_obj);
            return -1;
        }
        Py_DECREF(bucket);  /* by_prefix holds it now */
    }
    if (PyDict_SetItem(bucket, seq_obj, block) < 0) {
        Py_DECREF(prefix_obj);
        Py_DECREF(seq_obj);
        return -1;
    }
    Py_DECREF(prefix_obj);
    Py_DECREF(seq_obj);
    return 0;
}

/* stash_bulk_add(removed, entries, seq_dict, by_prefix, prefix_shift,
 *                next_seq, leaf_table, top) -> (next_seq, top_blocks)
 *
 * Insert every (block, level) pair pulled off a path into the stash with
 * full leaf-prefix index maintenance, mirroring Stash.add.  Blocks read
 * out of the cached top levels are returned so the caller can run the
 * tree-top structure's removal hook on exactly those.
 */
static PyObject *
stash_bulk_add(PyObject *self, PyObject *args)
{
    PyObject *removed, *entries, *seq_dict, *by_prefix, *leaf_table;
    long long prefix_shift, next_seq, top;
    if (!PyArg_ParseTuple(args, "O!O!O!O!LLO!L",
                          &PyList_Type, &removed,
                          &PyDict_Type, &entries,
                          &PyDict_Type, &seq_dict,
                          &PyDict_Type, &by_prefix,
                          &prefix_shift, &next_seq,
                          &PyList_Type, &leaf_table, &top))
        return NULL;

    PyObject *top_blocks = PyList_New(0);
    if (top_blocks == NULL)
        return NULL;
    Py_ssize_t n = PyList_GET_SIZE(removed);
    Py_ssize_t table_size = PyList_GET_SIZE(leaf_table);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *pair = PyList_GET_ITEM(removed, i);
        PyObject *block = PyTuple_GET_ITEM(pair, 0);
        long long level = PyLong_AsLongLong(PyTuple_GET_ITEM(pair, 1));
        long long block_id = PyLong_AsLongLong(block);
        if (PyErr_Occurred())
            goto fail;
        if (level < top && PyList_Append(top_blocks, block) < 0)
            goto fail;
        if (block_id < 0 || block_id >= table_size) {
            PyErr_SetString(PyExc_IndexError, "block outside position map");
            goto fail;
        }
        PyObject *leaf_obj = PyList_GET_ITEM(leaf_table, block_id);
        long long leaf = PyLong_AsLongLong(leaf_obj);
        if (leaf == -1) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError, "block has no mapping");
            goto fail;
        }
        if (stash_add_one(entries, seq_dict, by_prefix, prefix_shift,
                          block, leaf_obj, leaf, &next_seq) < 0)
            goto fail;
    }
    {
        PyObject *seq_val = PyLong_FromLongLong(next_seq);
        if (seq_val == NULL)
            goto fail;
        PyObject *result = PyTuple_Pack(2, seq_val, top_blocks);
        Py_DECREF(seq_val);
        Py_DECREF(top_blocks);
        return result;
    }

fail:
    Py_DECREF(top_blocks);
    return NULL;
}

/* write_path_place(leaf, entries, seq_dict, by_prefix, prefix_shift,
 *                  prefix_levels, path_slots, z_per_level, level_used,
 *                  levels, top, empty) -> placed_top
 *
 * The full greedy bottom-up write phase for the ungated case (dedicated
 * tree-top cache: may_place always true, placement hooks are counters):
 * group every stash block by deepest eligible level via the leaf-prefix
 * index, then fill bucket slots deepest-first, removing placed blocks
 * from the stash.  Mirrors Stash.path_pools + the placement loop in
 * PathORAMController._write_path.
 */

typedef struct {
    long long seq;
    PyObject *block;
    Py_ssize_t idx;   /* read-order index (array-mode placement only) */
} PoolItem;

static int
pool_item_cmp(const void *a, const void *b)
{
    long long sa = ((const PoolItem *)a)->seq;
    long long sb = ((const PoolItem *)b)->seq;
    return (sa > sb) - (sa < sb);
}

#define FASTPATH_MAX_LEVELS 64

/* Cap on the packed per-leaf triple cache inside a batch ctx; mirrors
 * ORAMTree.PATH_CACHE_LIMIT so both memo layers evict in step.
 */
#define PACKED_CACHE_LIMIT (1 << 16)

/* Depth-bucket every stash block for the path to `leaf` via the prefix
 * index: blocks sharing the target prefix get an exact XOR/bit-length
 * depth, diverging prefix buckets land wholesale at the prefix divergence
 * depth.  Fills `items` (capacity >= len(entries)) segmented by depth
 * (counts/offsets, length `levels`), each segment sorted by stash
 * insertion sequence.  Mirrors Stash.path_pools.  Returns 0, or -1 with
 * an exception set.
 */
static int
group_by_depth(long long leaf, PyObject *entries, PyObject *by_prefix,
               long long prefix_shift, long long prefix_levels,
               long long levels, PoolItem *items,
               Py_ssize_t *counts, Py_ssize_t *offsets)
{
    long long base = levels - 1;
    long long target_prefix = leaf >> prefix_shift;
    Py_ssize_t fill[FASTPATH_MAX_LEVELS];
    PyObject *prefix_obj, *bucket;
    Py_ssize_t pos = 0;

    memset(counts, 0, sizeof(Py_ssize_t) * (size_t)levels);
    /* count per depth */
    while (PyDict_Next(by_prefix, &pos, &prefix_obj, &bucket)) {
        long long prefix = PyLong_AsLongLong(prefix_obj);
        if (prefix == -1 && PyErr_Occurred())
            return -1;
        if (prefix == target_prefix) {
            PyObject *seq_obj, *block;
            Py_ssize_t bpos = 0;
            while (PyDict_Next(bucket, &bpos, &seq_obj, &block)) {
                PyObject *leaf_obj = PyDict_GetItem(entries, block);
                if (leaf_obj == NULL) {
                    PyErr_SetString(PyExc_KeyError,
                                    "stash index out of sync");
                    return -1;
                }
                long long block_leaf = PyLong_AsLongLong(leaf_obj);
                if (block_leaf == -1 && PyErr_Occurred())
                    return -1;
                long long depth =
                    base - bit_length(
                        (unsigned long long)(leaf ^ block_leaf));
                counts[depth]++;
            }
        } else {
            long long depth =
                prefix_levels - bit_length(
                    (unsigned long long)(prefix ^ target_prefix));
            counts[depth] += PyDict_GET_SIZE(bucket);
        }
    }
    offsets[0] = 0;
    for (long long d = 1; d < levels; d++)
        offsets[d] = offsets[d - 1] + counts[d - 1];
    memcpy(fill, offsets, sizeof(Py_ssize_t) * (size_t)levels);
    /* fill */
    pos = 0;
    while (PyDict_Next(by_prefix, &pos, &prefix_obj, &bucket)) {
        long long prefix = PyLong_AsLongLong(prefix_obj);
        PyObject *seq_obj, *block;
        Py_ssize_t bpos = 0;
        if (prefix == target_prefix) {
            while (PyDict_Next(bucket, &bpos, &seq_obj, &block)) {
                long long block_leaf = PyLong_AsLongLong(
                    PyDict_GetItem(entries, block));
                long long depth =
                    base - bit_length(
                        (unsigned long long)(leaf ^ block_leaf));
                items[fill[depth]].seq = PyLong_AsLongLong(seq_obj);
                items[fill[depth]].block = block;
                fill[depth]++;
            }
        } else {
            long long depth =
                prefix_levels - bit_length(
                    (unsigned long long)(prefix ^ target_prefix));
            while (PyDict_Next(bucket, &bpos, &seq_obj, &block)) {
                items[fill[depth]].seq = PyLong_AsLongLong(seq_obj);
                items[fill[depth]].block = block;
                fill[depth]++;
            }
        }
    }
    if (PyErr_Occurred())
        return -1;
    for (long long d = 0; d < levels; d++)
        if (counts[d] > 1)
            qsort(items + offsets[d], (size_t)counts[d],
                  sizeof(PoolItem), pool_item_cmp);
    return 0;
}

/* path_pools_fill(leaf, entries, by_prefix, prefix_shift, prefix_levels,
 *                 levels, pools) -> None
 *
 * Fill the stash's reusable per-depth pool lists for the path to `leaf`
 * (the grouping step of the write phase), leaving placement to the
 * caller — used by schemes whose tree-top structure gates placement.
 */
static PyObject *
path_pools_fill(PyObject *self, PyObject *args)
{
    PyObject *entries, *by_prefix, *pools;
    long long leaf, prefix_shift, prefix_levels, levels;
    if (!PyArg_ParseTuple(args, "LO!O!LLLO!",
                          &leaf,
                          &PyDict_Type, &entries,
                          &PyDict_Type, &by_prefix,
                          &prefix_shift, &prefix_levels, &levels,
                          &PyList_Type, &pools))
        return NULL;
    if (levels < 1 || levels > FASTPATH_MAX_LEVELS ||
        PyList_GET_SIZE(pools) < (Py_ssize_t)levels) {
        PyErr_SetString(PyExc_ValueError, "unsupported level count");
        return NULL;
    }
    for (long long d = 0; d < levels; d++) {
        PyObject *pool = PyList_GET_ITEM(pools, d);
        if (!PyList_Check(pool)) {
            PyErr_SetString(PyExc_TypeError, "pools must hold lists");
            return NULL;
        }
        if (PyList_GET_SIZE(pool) &&
            PyList_SetSlice(pool, 0, PY_SSIZE_T_MAX, NULL) < 0)
            return NULL;
    }
    Py_ssize_t total = PyDict_GET_SIZE(entries);
    if (total == 0)
        Py_RETURN_NONE;

    PoolItem *items = PyMem_Malloc(sizeof(PoolItem) * (size_t)total);
    if (items == NULL)
        return PyErr_NoMemory();
    Py_ssize_t counts[FASTPATH_MAX_LEVELS];
    Py_ssize_t offsets[FASTPATH_MAX_LEVELS];
    if (group_by_depth(leaf, entries, by_prefix, prefix_shift,
                       prefix_levels, levels, items, counts, offsets) < 0) {
        PyMem_Free(items);
        return NULL;
    }
    for (long long d = 0; d < levels; d++) {
        PyObject *pool = PyList_GET_ITEM(pools, d);
        for (Py_ssize_t i = 0; i < counts[d]; i++) {
            if (PyList_Append(pool, items[offsets[d] + i].block) < 0) {
                PyMem_Free(items);
                return NULL;
            }
        }
    }
    PyMem_Free(items);
    Py_RETURN_NONE;
}

/* SStash.on_remove without the stats hook: drop ``block`` from the
 * block-address index and release its set slot.
 */
static int
sstash_remove(PyObject *resident, PyObject *set_count, PyObject *block)
{
    PyObject *idx_obj = PyDict_GetItemWithError(resident, block);
    if (idx_obj == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_KeyError, "block not in S-Stash");
        return -1;
    }
    Py_INCREF(idx_obj);
    if (PyDict_DelItem(resident, block) < 0) {
        Py_DECREF(idx_obj);
        return -1;
    }
    PyObject *cnt_obj = PyDict_GetItemWithError(set_count, idx_obj);
    if (cnt_obj == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_KeyError, "S-Stash set count missing");
        Py_DECREF(idx_obj);
        return -1;
    }
    long long cnt = PyLong_AsLongLong(cnt_obj);
    if (cnt == -1 && PyErr_Occurred()) {
        Py_DECREF(idx_obj);
        return -1;
    }
    int rc;
    if (cnt <= 1) {
        rc = PyDict_DelItem(set_count, idx_obj);
    } else {
        PyObject *new_obj = PyLong_FromLongLong(cnt - 1);
        rc = new_obj ? PyDict_SetItem(set_count, idx_obj, new_obj) : -1;
        Py_XDECREF(new_obj);
    }
    Py_DECREF(idx_obj);
    return rc;
}

/* The shared placement engine behind write_path_place and run_batch:
 * greedy bottom-up placement over ``items`` already segmented by depth
 * (counts/offsets, each segment sorted by sequence).  ``items`` must
 * have capacity 3*total — the upper two thirds are scratch for the
 * pool stack and the per-level rejection list.
 *
 * ``gated`` selects the S-Stash variant: placements into the cached top
 * levels consult the set-associativity constraint (``set_of`` callable,
 * ``set_count`` dict, ``ways``) and maintain the block-address index
 * (``resident``), mirroring the Python placement loop with
 * SStash.may_place/on_place; rejected blocks are retried at shallower
 * levels exactly like the Python ``pool.extend(rejected)``.  Counter
 * deltas accumulate into placed_top / ss_placed / ss_skips.
 *
 * ``remove_placed`` selects how placements reconcile with the stash:
 * the dict-backed caller removes each placed block from the stash
 * index, while the array-mode caller (whose blocks never entered the
 * dicts) just gets ``placed_out[item.idx]`` marked so survivors can be
 * written back afterwards.
 */
static int
place_pools(PoolItem *items, Py_ssize_t total, const Py_ssize_t *counts,
            const Py_ssize_t *offsets, PyObject *entries,
            PyObject *seq_dict, PyObject *by_prefix,
            long long prefix_shift, PyObject *path_slots,
            const long long *z_arr, long long *used_arr, long long levels,
            long long top, long long empty, int gated,
            PyObject *resident, PyObject *set_count, PyObject *set_of,
            long long ways, int remove_placed, unsigned char *placed_out,
            long long *placed_top, long long *ss_placed,
            long long *ss_skips)
{
    PoolItem *stack = items + total;
    PoolItem *rejected = items + 2 * total;

    /* Greedy bottom-up placement, pool kept as a stack. */
    {
        Py_ssize_t stack_size = 0;
        Py_ssize_t ps_idx = PyList_GET_SIZE(path_slots) - 1;
        for (long long level = levels - 1; level >= 0; level--) {
            Py_ssize_t cnt = counts[level];
            if (cnt) {
                memcpy(stack + stack_size, items + offsets[level],
                       sizeof(PoolItem) * (size_t)cnt);
                stack_size += cnt;
            }
            long long z = z_arr[level];
            if (z == 0)
                continue;
            if (ps_idx < 0) {
                PyErr_SetString(PyExc_ValueError,
                                "path_slots out of sync with z_per_level");
                goto fail;
            }
            PyObject *pair = PyList_GET_ITEM(path_slots, ps_idx);
            long long pair_level =
                PyLong_AsLongLong(PyTuple_GET_ITEM(pair, 0));
            if (pair_level != level) {
                PyErr_SetString(PyExc_ValueError,
                                "path_slots out of sync with z_per_level");
                goto fail;
            }
            PyObject *slots = PyTuple_GET_ITEM(pair, 1);
            ps_idx--;
            if (stack_size == 0)
                continue;
            int level_gated = gated && level < top;
            Py_ssize_t z_size = PyList_GET_SIZE(slots);
            Py_ssize_t scan = 0;
            Py_ssize_t n_rej = 0;
            long long placed = 0;
            long long used_delta = 0;
            while (stack_size > 0 && placed < z) {
                PoolItem item = stack[--stack_size];
                PyObject *block = item.block;
                PyObject *idx_obj = NULL;
                long long set_cnt = 0;
                if (level_gated) {
                    idx_obj = PyObject_CallOneArg(set_of, block);
                    if (idx_obj == NULL)
                        goto fail;
                    PyObject *cnt_obj =
                        PyDict_GetItemWithError(set_count, idx_obj);
                    if (cnt_obj == NULL && PyErr_Occurred()) {
                        Py_DECREF(idx_obj);
                        goto fail;
                    }
                    if (cnt_obj != NULL) {
                        set_cnt = PyLong_AsLongLong(cnt_obj);
                        if (set_cnt == -1 && PyErr_Occurred()) {
                            Py_DECREF(idx_obj);
                            goto fail;
                        }
                    }
                    if (set_cnt >= ways) {
                        /* Set full: skip this block for this round. */
                        Py_DECREF(idx_obj);
                        rejected[n_rej++] = item;
                        (*ss_skips)++;
                        continue;
                    }
                }
                /* first EMPTY slot (earlier ones were just filled) */
                Py_ssize_t free_idx = -1;
                for (Py_ssize_t i = scan; i < z_size; i++) {
                    long long occupant = PyLong_AsLongLong(
                        PyList_GET_ITEM(slots, i));
                    if (occupant == -1 && PyErr_Occurred()) {
                        Py_XDECREF(idx_obj);
                        goto fail;
                    }
                    if (occupant == empty) {
                        free_idx = i;
                        break;
                    }
                }
                if (free_idx < 0) {
                    PyErr_SetString(PyExc_RuntimeError,
                                    "bucket full during write phase");
                    Py_XDECREF(idx_obj);
                    goto fail;
                }
                Py_INCREF(block);
                PyList_SetItem(slots, free_idx, block);
                scan = free_idx + 1;
                used_delta++;
                placed++;
                if (level_gated) {
                    PyObject *cnt_obj = PyLong_FromLongLong(set_cnt + 1);
                    if (cnt_obj == NULL ||
                        PyDict_SetItem(set_count, idx_obj, cnt_obj) < 0) {
                        Py_XDECREF(cnt_obj);
                        Py_DECREF(idx_obj);
                        goto fail;
                    }
                    Py_DECREF(cnt_obj);
                    if (PyDict_SetItem(resident, block, idx_obj) < 0) {
                        Py_DECREF(idx_obj);
                        goto fail;
                    }
                    Py_DECREF(idx_obj);
                    (*ss_placed)++;
                } else if (level < top) {
                    (*placed_top)++;
                }
                if (remove_placed) {
                    if (stash_remove_indexed(entries, seq_dict, by_prefix,
                                             prefix_shift, block) < 0)
                        goto fail;
                } else {
                    placed_out[item.idx] = 1;
                }
            }
            /* Re-stack rejected blocks in rejection order: the next pop
             * takes the most recently rejected first, matching
             * pool.extend(rejected) + pool.pop(). */
            for (Py_ssize_t r = 0; r < n_rej; r++)
                stack[stack_size++] = rejected[r];
            used_arr[level] += used_delta;
        }
    }
    return 0;

fail:
    return -1;
}

/* Dict-backed placement: depth-bucket the whole stash via the prefix
 * index, then run the shared engine with placed blocks removed from
 * the stash index as they land.
 */
static int
write_place_core(long long leaf, PyObject *entries, PyObject *seq_dict,
                 PyObject *by_prefix, long long prefix_shift,
                 long long prefix_levels, PyObject *path_slots,
                 const long long *z_arr, long long *used_arr,
                 long long levels,
                 long long top, long long empty, int gated,
                 PyObject *resident, PyObject *set_count, PyObject *set_of,
                 long long ways, long long *placed_top,
                 long long *ss_placed, long long *ss_skips)
{
    Py_ssize_t total = PyDict_GET_SIZE(entries);
    if (total == 0)
        return 0;

    PoolItem *items = PyMem_Malloc(sizeof(PoolItem) * (size_t)total * 3);
    if (items == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    Py_ssize_t counts[FASTPATH_MAX_LEVELS];
    Py_ssize_t offsets[FASTPATH_MAX_LEVELS];
    int rc = group_by_depth(leaf, entries, by_prefix, prefix_shift,
                            prefix_levels, levels, items, counts, offsets);
    if (rc == 0)
        rc = place_pools(items, total, counts, offsets, entries, seq_dict,
                         by_prefix, prefix_shift, path_slots, z_arr,
                         used_arr, levels, top, empty, gated, resident,
                         set_count, set_of, ways, 1, NULL, placed_top,
                         ss_placed, ss_skips);
    PyMem_Free(items);
    return rc;
}

static PyObject *
write_path_place(PyObject *self, PyObject *args)
{
    PyObject *entries, *seq_dict, *by_prefix, *path_slots, *z_list,
        *level_used;
    long long leaf, prefix_shift, prefix_levels, levels, top, empty;
    if (!PyArg_ParseTuple(args, "LO!O!O!LLO!O!O!LLL",
                          &leaf,
                          &PyDict_Type, &entries,
                          &PyDict_Type, &seq_dict,
                          &PyDict_Type, &by_prefix,
                          &prefix_shift, &prefix_levels,
                          &PyList_Type, &path_slots,
                          &PyList_Type, &z_list,
                          &PyList_Type, &level_used,
                          &levels, &top, &empty))
        return NULL;
    if (levels < 1 || levels > FASTPATH_MAX_LEVELS ||
        PyList_GET_SIZE(z_list) < (Py_ssize_t)levels ||
        PyList_GET_SIZE(level_used) < (Py_ssize_t)levels) {
        PyErr_SetString(PyExc_ValueError, "unsupported level count");
        return NULL;
    }
    long long z_arr[FASTPATH_MAX_LEVELS];
    long long used_arr[FASTPATH_MAX_LEVELS];
    for (long long d = 0; d < levels; d++) {
        z_arr[d] = PyLong_AsLongLong(PyList_GET_ITEM(z_list, d));
        used_arr[d] = PyLong_AsLongLong(PyList_GET_ITEM(level_used, d));
    }
    if (PyErr_Occurred())
        return NULL;
    long long placed_top = 0;
    long long ss_placed = 0;
    long long ss_skips = 0;
    if (write_place_core(leaf, entries, seq_dict, by_prefix, prefix_shift,
                         prefix_levels, path_slots, z_arr, used_arr,
                         levels, top, empty, 0, NULL, NULL, NULL, 0,
                         &placed_top, &ss_placed, &ss_skips) < 0)
        return NULL;
    for (long long d = 0; d < levels; d++) {
        PyObject *used_obj = PyLong_FromLongLong(used_arr[d]);
        if (used_obj == NULL)
            return NULL;
        PyList_SetItem(level_used, d, used_obj);
    }
    return PyLong_FromLongLong(placed_top);
}

/* path_triples(leaf, level_meta, row_blocks, channels, banks_per_channel)
 *   -> [bank, channel, row, ...]
 *
 * Fused TreeLayout.path_addresses + DRAMModel.decompose_batch for one
 * path: walk the layout's per-level meta tuples
 * (shift, z, r, mask, offsets, row_base, rows) and emit the flat DRAM
 * triple list directly, skipping the intermediate address list.
 */
static PyObject *
path_triples(PyObject *self, PyObject *args)
{
    PyObject *meta;
    long long leaf, row_blocks, channels, banks_per_channel;
    if (!PyArg_ParseTuple(args, "LO!LLL",
                          &leaf, &PyList_Type, &meta,
                          &row_blocks, &channels, &banks_per_channel))
        return NULL;
    if (row_blocks <= 0 || channels <= 0 || banks_per_channel <= 0) {
        PyErr_SetString(PyExc_ValueError, "invalid DRAM geometry");
        return NULL;
    }

    Py_ssize_t n_levels = PyList_GET_SIZE(meta);
    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n_levels; i++) {
        PyObject *entry = PyList_GET_ITEM(meta, i);
        long long z = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
        if (z == -1 && PyErr_Occurred())
            return NULL;
        total += (Py_ssize_t)z;
    }
    PyObject *flat = PyList_New(total * 3);
    if (flat == NULL)
        return NULL;
    Py_ssize_t out = 0;
    for (Py_ssize_t i = 0; i < n_levels; i++) {
        PyObject *entry = PyList_GET_ITEM(meta, i);
        long long shift = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 0));
        long long z = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
        long long r = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 2));
        long long mask = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 3));
        PyObject *offsets = PyTuple_GET_ITEM(entry, 4);
        long long row_base = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 5));
        long long rows = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 6));
        if (PyErr_Occurred() || !PyList_Check(offsets)) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_TypeError, "offsets must be a list");
            goto fail;
        }
        long long position = leaf >> shift;
        Py_ssize_t off_idx = (Py_ssize_t)(mask + (position & mask));
        if (off_idx < 0 || off_idx >= PyList_GET_SIZE(offsets)) {
            PyErr_SetString(PyExc_IndexError, "layout offset out of range");
            goto fail;
        }
        long long offset =
            PyLong_AsLongLong(PyList_GET_ITEM(offsets, off_idx));
        if (offset == -1 && PyErr_Occurred())
            goto fail;
        long long row0 = row_base + (position >> r) * rows;
        for (long long slot = 0; slot < z; slot++) {
            long long combined = offset + slot;
            long long row = row0 + combined / row_blocks;
            long long channel = row % channels;
            long long bank =
                channel * banks_per_channel +
                (row / channels) % banks_per_channel;
            PyObject *bank_obj = PyLong_FromLongLong(bank);
            PyObject *chan_obj = PyLong_FromLongLong(channel);
            PyObject *row_obj = PyLong_FromLongLong(row);
            if (bank_obj == NULL || chan_obj == NULL || row_obj == NULL) {
                Py_XDECREF(bank_obj);
                Py_XDECREF(chan_obj);
                Py_XDECREF(row_obj);
                goto fail;
            }
            PyList_SET_ITEM(flat, out++, bank_obj);
            PyList_SET_ITEM(flat, out++, chan_obj);
            PyList_SET_ITEM(flat, out++, row_obj);
        }
    }
    return flat;

fail:
    Py_DECREF(flat);
    return NULL;
}

/* ---------------------------------------------------------------- */
/* Whole-run batch stepping                                          */
/* ---------------------------------------------------------------- */

typedef struct {
    long long ratio;      /* CPU cycles per DRAM cycle */
    long long t_rp;
    long long t_rcd;
    long long t_burst;
    long long cas_burst;  /* t_cas + t_burst */
} DramTiming;

/* DRAMModel._service_py over bank state hoisted into C arrays.  The
 * triples are a packed ``long long`` array of (bank, channel, row)
 * groups, range-checked once at pack time.  Row hit/conflict counts
 * accumulate into the caller's running totals.
 */
static void
dram_run_arr(const long long *triples, Py_ssize_t n3, long long *ready,
             long long *open_row, long long *bus_free, long long now_dram,
             const DramTiming *cfg, long long *finish_out,
             long long *hits_out, long long *conflicts_out)
{
    long long finish = now_dram;
    for (Py_ssize_t i = 0; i < n3; i++) {
        long long bank = triples[3 * i];
        long long channel = triples[3 * i + 1];
        long long row = triples[3 * i + 2];
        long long t = ready[bank];
        if (bus_free[channel] > t)
            t = bus_free[channel];
        if (now_dram > t)
            t = now_dram;
        if (open_row[bank] != row) {
            if (open_row[bank] != -1) {
                t += cfg->t_rp;
                (*conflicts_out)++;
            }
            t += cfg->t_rcd;
            open_row[bank] = row;
        } else {
            (*hits_out)++;
        }
        long long done = t + cfg->cas_burst;
        long long next_slot = t + cfg->t_burst;
        bus_free[channel] = next_slot;
        ready[bank] = next_slot;
        if (done > finish)
            finish = done;
    }
    *finish_out = finish;
}

/* Pack one leaf's (triples list, blocks) cache entry into a bytes
 * object: [blocks, bank0, chan0, row0, bank1, ...] as ``long long``.
 * Bank/channel indices are range-checked here, once per leaf, so the
 * per-path DRAM loop can run unchecked.  Returns a new reference.
 */
static PyObject *
pack_triples(PyObject *cached, Py_ssize_t n_banks, Py_ssize_t n_channels)
{
    if (!PyTuple_Check(cached) || PyTuple_GET_SIZE(cached) != 2 ||
        !PyList_Check(PyTuple_GET_ITEM(cached, 0))) {
        PyErr_SetString(PyExc_TypeError,
                        "triples entry must be (list, blocks)");
        return NULL;
    }
    PyObject *triples = PyTuple_GET_ITEM(cached, 0);
    long long blocks = PyLong_AsLongLong(PyTuple_GET_ITEM(cached, 1));
    if (blocks == -1 && PyErr_Occurred())
        return NULL;
    Py_ssize_t n = PyList_GET_SIZE(triples);
    Py_ssize_t n3 = n / 3;
    PyObject *packed = PyBytes_FromStringAndSize(
        NULL, (Py_ssize_t)sizeof(long long) * (3 * n3 + 1));
    if (packed == NULL)
        return NULL;
    long long *arr = (long long *)PyBytes_AS_STRING(packed);
    arr[0] = blocks;
    for (Py_ssize_t i = 0; i < 3 * n3; i++) {
        long long value = PyLong_AsLongLong(PyList_GET_ITEM(triples, i));
        if (value == -1 && PyErr_Occurred()) {
            Py_DECREF(packed);
            return NULL;
        }
        arr[i + 1] = value;
    }
    for (Py_ssize_t i = 0; i < n3; i++) {
        long long bank = arr[3 * i + 1];
        long long channel = arr[3 * i + 2];
        if (bank < 0 || bank >= n_banks ||
            channel < 0 || channel >= n_channels) {
            PyErr_SetString(PyExc_IndexError, "bank/channel out of range");
            Py_DECREF(packed);
            return NULL;
        }
    }
    return packed;
}

/* pack_triples(cached, n_banks, n_channels) -> bytes
 *
 * Python entry to the packed-triple encoder, so controllers can
 * pre-fill the batch kernel's packed cache while warming the per-leaf
 * memo caches instead of paying the packing cost inside measured runs.
 */
static PyObject *
pack_triples_entry(PyObject *self, PyObject *args)
{
    PyObject *cached;
    long long n_banks, n_channels;
    if (!PyArg_ParseTuple(args, "OLL", &cached, &n_banks, &n_channels))
        return NULL;
    if (n_banks <= 0 || n_channels <= 0) {
        PyErr_SetString(PyExc_ValueError, "invalid DRAM geometry");
        return NULL;
    }
    return pack_triples(cached, (Py_ssize_t)n_banks,
                        (Py_ssize_t)n_channels);
}

/* run_batch(ctx, now, next_seq, interval, max_paths, horizon,
 *           stop_threshold, trigger_threshold, want_bounds,
 *           collect_timing)
 *   -> (n, now, next_seq, max_occupancy, bounds | None, agg,
 *       timings | None)
 *
 * Execute up to ``max_paths`` whole dummy-path accesses — RNG leaf draw,
 * read-phase DRAM timing, path read-and-clear into the stash, greedy
 * bottom-up write placement, write-phase DRAM timing — without returning
 * to the interpreter between paths.  Each iteration is bit-identical to
 * PathORAMController.dummy_path followed by ``now = max(now + interval,
 * finish_write)``.
 *
 * ``ctx`` is the 29-slot tuple built by the controller (RNG callable and
 * leaf count, the two per-leaf caches with their miss fallbacks, stash
 * index dicts, position-map leaf table, tree geometry, DRAM bank-state
 * lists and timing parameters, the tree-top mode: 0 = dedicated
 * counter-only cache, 1 = S-Stash gating, a dict the kernel fills with
 * packed per-leaf triple arrays so repeat leaves skip unboxing, and the
 * RNG's bound ``getrandbits`` plus the leaf-count bit width when the
 * controller verified plain ``random.Random`` semantics — the kernel
 * then draws leaves with rejection sampling exactly as
 * ``Random._randbelow_with_getrandbits`` does, skipping the interpreted
 * ``randrange`` wrapper while consuming the identical bit stream).  The batch stops early at
 * ``horizon`` (next real work item, -1 = none), or as soon as the stash
 * is over ``stop_threshold`` (-1 = never), so every slot-boundary
 * decision the per-access loop would have made stays identical.  Stash
 * occupancy is compared against ``trigger_threshold`` after every write
 * phase to accumulate eviction-trigger counts.
 *
 * ``agg`` is (blocks, row_hits, row_conflicts, placed_top, removed_top,
 * eviction_triggers, sstash_placed, sstash_removed, sstash_skips);
 * ``bounds`` is a flat [start, finish_read, finish_write, ...] list when
 * requested; ``timings`` is (rng_ns, read_dram_ns, stash_ns, place_ns,
 * write_dram_ns) when ``collect_timing`` is set.
 */
static PyObject *
run_batch(PyObject *self, PyObject *args)
{
    PyObject *ctx;
    long long now, next_seq, interval, max_paths, horizon, stop_threshold,
        trigger_threshold;
    int want_bounds, collect_timing;
    if (!PyArg_ParseTuple(args, "O!LLLLLLLpp",
                          &PyTuple_Type, &ctx, &now, &next_seq, &interval,
                          &max_paths, &horizon, &stop_threshold,
                          &trigger_threshold, &want_bounds,
                          &collect_timing))
        return NULL;
    if (PyTuple_GET_SIZE(ctx) != 29) {
        PyErr_SetString(PyExc_ValueError, "run_batch ctx must have 29 slots");
        return NULL;
    }
    PyObject *randrange = PyTuple_GET_ITEM(ctx, 0);
    PyObject *leaves_obj = PyTuple_GET_ITEM(ctx, 1);
    PyObject *triples_cache = PyTuple_GET_ITEM(ctx, 2);
    PyObject *triples_fn = PyTuple_GET_ITEM(ctx, 3);
    PyObject *slots_cache = PyTuple_GET_ITEM(ctx, 4);
    PyObject *slots_fn = PyTuple_GET_ITEM(ctx, 5);
    PyObject *entries = PyTuple_GET_ITEM(ctx, 6);
    PyObject *seq_dict = PyTuple_GET_ITEM(ctx, 7);
    PyObject *by_prefix = PyTuple_GET_ITEM(ctx, 8);
    long long prefix_shift = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 9));
    long long prefix_levels = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 10));
    PyObject *leaf_table = PyTuple_GET_ITEM(ctx, 11);
    PyObject *z_list = PyTuple_GET_ITEM(ctx, 12);
    PyObject *level_used = PyTuple_GET_ITEM(ctx, 13);
    long long levels = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 14));
    long long top = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 15));
    long long empty = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 16));
    PyObject *bank_ready = PyTuple_GET_ITEM(ctx, 17);
    PyObject *bank_open_row = PyTuple_GET_ITEM(ctx, 18);
    PyObject *bus_free_list = PyTuple_GET_ITEM(ctx, 19);
    PyObject *dram_params = PyTuple_GET_ITEM(ctx, 20);
    long long treetop_mode = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 21));
    PyObject *resident = PyTuple_GET_ITEM(ctx, 22);
    PyObject *set_count = PyTuple_GET_ITEM(ctx, 23);
    PyObject *set_of = PyTuple_GET_ITEM(ctx, 24);
    long long ways = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 25));
    PyObject *packed_cache = PyTuple_GET_ITEM(ctx, 26);
    PyObject *getrandbits = PyTuple_GET_ITEM(ctx, 27);
    long long leaf_bits = PyLong_AsLongLong(PyTuple_GET_ITEM(ctx, 28));
    if (PyErr_Occurred())
        return NULL;
    if (!PyDict_Check(entries) || !PyDict_Check(seq_dict) ||
        !PyDict_Check(by_prefix) || !PyDict_Check(triples_cache) ||
        !PyDict_Check(packed_cache) ||
        !PyDict_Check(slots_cache) || !PyList_Check(leaf_table) ||
        !PyList_Check(z_list) || !PyList_Check(level_used) ||
        !PyList_Check(bank_ready) || !PyList_Check(bank_open_row) ||
        !PyList_Check(bus_free_list) || !PyTuple_Check(dram_params) ||
        PyTuple_GET_SIZE(dram_params) != 5) {
        PyErr_SetString(PyExc_TypeError, "malformed run_batch ctx");
        return NULL;
    }
    if (treetop_mode == 1 &&
        (!PyDict_Check(resident) || !PyDict_Check(set_count))) {
        PyErr_SetString(PyExc_TypeError, "S-Stash ctx slots must be dicts");
        return NULL;
    }
    DramTiming dcfg;
    dcfg.ratio = PyLong_AsLongLong(PyTuple_GET_ITEM(dram_params, 0));
    dcfg.t_rp = PyLong_AsLongLong(PyTuple_GET_ITEM(dram_params, 1));
    dcfg.t_rcd = PyLong_AsLongLong(PyTuple_GET_ITEM(dram_params, 2));
    dcfg.t_burst = PyLong_AsLongLong(PyTuple_GET_ITEM(dram_params, 3));
    dcfg.cas_burst = PyLong_AsLongLong(PyTuple_GET_ITEM(dram_params, 4));
    if (PyErr_Occurred())
        return NULL;
    if (levels < 1 || levels > FASTPATH_MAX_LEVELS || dcfg.ratio <= 0 ||
        max_paths < 0 || now < 0 ||
        PyList_GET_SIZE(z_list) < (Py_ssize_t)levels ||
        PyList_GET_SIZE(level_used) < (Py_ssize_t)levels) {
        PyErr_SetString(PyExc_ValueError, "unsupported run_batch geometry");
        return NULL;
    }

    /* Hoist the per-level constants and occupancy counters into C
     * arrays for the whole batch; occupancy is written back with the
     * bank state on success.  Nothing the kernel calls back into
     * (cache-miss fallbacks, the RNG) reads these lists mid-batch.
     */
    long long z_arr[FASTPATH_MAX_LEVELS];
    long long used_arr[FASTPATH_MAX_LEVELS];
    for (long long d = 0; d < levels; d++) {
        z_arr[d] = PyLong_AsLongLong(PyList_GET_ITEM(z_list, d));
        used_arr[d] = PyLong_AsLongLong(PyList_GET_ITEM(level_used, d));
    }
    long long leaves_count = PyLong_AsLongLong(leaves_obj);
    if (PyErr_Occurred())
        return NULL;
    int use_grb = (getrandbits != Py_None && leaf_bits > 0);
    PyObject *bits_obj = NULL;
    if (use_grb) {
        bits_obj = PyLong_FromLongLong(leaf_bits);
        if (bits_obj == NULL)
            return NULL;
    }

    /* Hoist bank state into C arrays; written back only on success. */
    Py_ssize_t n_banks = PyList_GET_SIZE(bank_ready);
    Py_ssize_t n_channels = PyList_GET_SIZE(bus_free_list);
    if (PyList_GET_SIZE(bank_open_row) != n_banks) {
        PyErr_SetString(PyExc_ValueError, "bank state lists out of sync");
        Py_XDECREF(bits_obj);
        return NULL;
    }
    long long *bank_state = PyMem_Malloc(
        sizeof(long long) * (size_t)(2 * n_banks + n_channels));
    if (bank_state == NULL) {
        Py_XDECREF(bits_obj);
        return PyErr_NoMemory();
    }
    long long *ready = bank_state;
    long long *open_row = bank_state + n_banks;
    long long *bus_free = bank_state + 2 * n_banks;
    for (Py_ssize_t i = 0; i < n_banks; i++) {
        ready[i] = PyLong_AsLongLong(PyList_GET_ITEM(bank_ready, i));
        open_row[i] = PyLong_AsLongLong(PyList_GET_ITEM(bank_open_row, i));
    }
    for (Py_ssize_t i = 0; i < n_channels; i++)
        bus_free[i] = PyLong_AsLongLong(PyList_GET_ITEM(bus_free_list, i));
    PyObject *empty_obj = PyLong_FromLongLong(empty);
    PyObject *bounds = want_bounds ? PyList_New(0) : NULL;
    if (PyErr_Occurred() || empty_obj == NULL ||
        (want_bounds && bounds == NULL)) {
        PyMem_Free(bank_state);
        Py_XDECREF(empty_obj);
        Py_XDECREF(bounds);
        Py_XDECREF(bits_obj);
        return NULL;
    }

    /* Scratch for the empty-stash array fastpath: when a path begins
     * with an empty stash (the steady state for dummy-path batches),
     * read blocks skip the stash dicts entirely — they are collected
     * in read order, depth-bucketed with group_by_depth's exact
     * XOR/bit-length rule, placed through the shared engine, and only
     * the rare survivors are inserted into the dict index afterwards
     * with their pre-assigned sequence numbers.  Both modes order each
     * depth pool by ascending sequence and keep survivors in read
     * (= sequence) order, so the resulting state is identical.
     */
    long long max_slots = 0;
    for (long long d = 0; d < levels; d++)
        max_slots += z_arr[d];
    PoolItem *abuf = NULL;          /* [read order | 3x engine scratch] */
    PyObject **aleaf_obj = NULL;    /* borrowed leaf objects, read order */
    long long *ableaf = NULL;
    long long *adepth = NULL;
    unsigned char *aplaced = NULL;
    if (max_slots > 0) {
        size_t bytes = (sizeof(PoolItem) * 4 + sizeof(PyObject *) +
                        sizeof(long long) * 2 + 1) * (size_t)max_slots;
        abuf = PyMem_Malloc(bytes);
        if (abuf == NULL) {
            PyMem_Free(bank_state);
            Py_DECREF(empty_obj);
            Py_XDECREF(bounds);
            Py_XDECREF(bits_obj);
            return PyErr_NoMemory();
        }
        aleaf_obj = (PyObject **)(abuf + 4 * max_slots);
        ableaf = (long long *)(aleaf_obj + max_slots);
        adepth = ableaf + max_slots;
        aplaced = (unsigned char *)(adepth + max_slots);
    }

    long long n = 0;
    long long max_occ = 0;
    long long blocks_total = 0, row_hits = 0, row_conflicts = 0;
    long long placed_top = 0, removed_top = 0, ev_triggers = 0;
    long long ss_placed = 0, ss_removed = 0, ss_skips = 0;
    unsigned long long t_rng = 0, t_read_dram = 0, t_stash = 0,
        t_place = 0, t_write_dram = 0;
    Py_ssize_t table_size = PyList_GET_SIZE(leaf_table);

    while (n < max_paths) {
        if (horizon >= 0 && now >= horizon)
            break;
        if (stop_threshold >= 0 &&
            (long long)PyDict_GET_SIZE(entries) > stop_threshold)
            break;
        PyObject *leaf_obj = NULL, *packed = NULL, *pairs = NULL;
        int array_mode = (abuf != NULL && PyDict_GET_SIZE(entries) == 0);
        Py_ssize_t n_read = 0;
        Py_ssize_t acounts[FASTPATH_MAX_LEVELS];
        if (array_mode)
            memset(acounts, 0, sizeof(Py_ssize_t) * (size_t)levels);
        unsigned long long t0 = collect_timing ? now_ns() : 0;

        long long leaf;
        if (use_grb) {
            /* Random._randbelow_with_getrandbits, inlined: draw
             * bit_length(leaves) bits, rejecting draws >= leaves, so
             * the RNG bit stream matches randrange(leaves) exactly.
             */
            for (;;) {
                leaf_obj = PyObject_CallOneArg(getrandbits, bits_obj);
                if (leaf_obj == NULL)
                    goto path_fail;
                leaf = PyLong_AsLongLong(leaf_obj);
                if (leaf == -1 && PyErr_Occurred())
                    goto path_fail;
                if (leaf < leaves_count)
                    break;
                Py_DECREF(leaf_obj);
                leaf_obj = NULL;
            }
        } else {
            leaf_obj = PyObject_CallOneArg(randrange, leaves_obj);
            if (leaf_obj == NULL)
                goto path_fail;
            leaf = PyLong_AsLongLong(leaf_obj);
            if (leaf == -1 && PyErr_Occurred())
                goto path_fail;
        }
        if (collect_timing) {
            unsigned long long t1 = now_ns();
            t_rng += t1 - t0;
            t0 = t1;
        }

        /* Per-leaf DRAM triples as a packed C array: packed-cache hit,
         * else pack from the Python memo (calling its fallback on a
         * full miss) and remember the array for repeat leaves.
         */
        packed = PyDict_GetItemWithError(packed_cache, leaf_obj);
        if (packed != NULL) {
            Py_INCREF(packed);
        } else {
            if (PyErr_Occurred())
                goto path_fail;
            PyObject *cached = PyDict_GetItemWithError(
                triples_cache, leaf_obj);
            if (cached != NULL) {
                Py_INCREF(cached);
            } else {
                if (PyErr_Occurred())
                    goto path_fail;
                cached = PyObject_CallOneArg(triples_fn, leaf_obj);
                if (cached == NULL)
                    goto path_fail;
            }
            packed = pack_triples(cached, n_banks, n_channels);
            Py_DECREF(cached);
            if (packed == NULL)
                goto path_fail;
            if (PyDict_GET_SIZE(packed_cache) >= PACKED_CACHE_LIMIT) {
                /* Mirror the Python memo's FIFO eviction. */
                PyObject *first_key, *first_val;
                Py_ssize_t pos = 0;
                if (PyDict_Next(packed_cache, &pos, &first_key,
                                &first_val) &&
                    PyDict_DelItem(packed_cache, first_key) < 0)
                    goto path_fail;
            }
            if (PyDict_SetItem(packed_cache, leaf_obj, packed) < 0)
                goto path_fail;
        }
        const long long *tarr = (const long long *)PyBytes_AS_STRING(packed);
        long long blocks = tarr[0];
        Py_ssize_t n_triples =
            PyBytes_GET_SIZE(packed) / (Py_ssize_t)sizeof(long long) / 3;

        /* Read phase through the DRAM model. */
        long long now_dram = (now + dcfg.ratio - 1) / dcfg.ratio;
        long long fr_dram = 0;
        dram_run_arr(tarr + 1, n_triples, ready, open_row, bus_free,
                     now_dram, &dcfg, &fr_dram, &row_hits, &row_conflicts);
        long long finish_read = fr_dram * dcfg.ratio;
        if (collect_timing) {
            unsigned long long t1 = now_ns();
            t_read_dram += t1 - t0;
            t0 = t1;
        }

        /* Path slot pairs: cache hit or memoizing Python fallback. */
        pairs = PyDict_GetItemWithError(slots_cache, leaf_obj);
        if (pairs != NULL) {
            Py_INCREF(pairs);
        } else {
            if (PyErr_Occurred())
                goto path_fail;
            pairs = PyObject_CallOneArg(slots_fn, leaf_obj);
            if (pairs == NULL)
                goto path_fail;
        }
        if (!PyList_Check(pairs)) {
            PyErr_SetString(PyExc_TypeError, "path_slots must be a list");
            goto path_fail;
        }

        /* Fused read_and_clear + stash insertion + tree-top removal. */
        long long tprefix = leaf >> prefix_shift;
        Py_ssize_t n_pairs = PyList_GET_SIZE(pairs);
        for (Py_ssize_t p = 0; p < n_pairs; p++) {
            PyObject *pair = PyList_GET_ITEM(pairs, p);
            if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2 ||
                !PyList_Check(PyTuple_GET_ITEM(pair, 1))) {
                PyErr_SetString(PyExc_TypeError,
                                "pairs must hold (level, slots)");
                goto path_fail;
            }
            PyObject *level_obj = PyTuple_GET_ITEM(pair, 0);
            PyObject *slots = PyTuple_GET_ITEM(pair, 1);
            long long level = PyLong_AsLongLong(level_obj);
            if (level == -1 && PyErr_Occurred())
                goto path_fail;
            Py_ssize_t z_size = PyList_GET_SIZE(slots);
            long long cleared = 0;
            for (Py_ssize_t s = 0; s < z_size; s++) {
                PyObject *block = PyList_GET_ITEM(slots, s);
                long long value = PyLong_AsLongLong(block);
                if (value == -1 && PyErr_Occurred())
                    goto path_fail;
                if (value == empty)
                    continue;
                Py_INCREF(block);  /* outlive the slot overwrite */
                Py_INCREF(empty_obj);
                PyList_SetItem(slots, s, empty_obj);
                cleared++;
                if (level < top) {
                    if (treetop_mode == 1) {
                        if (sstash_remove(resident, set_count, block) < 0) {
                            Py_DECREF(block);
                            goto path_fail;
                        }
                        ss_removed++;
                    } else {
                        removed_top++;
                    }
                }
                if (value < 0 || value >= table_size) {
                    PyErr_SetString(PyExc_IndexError,
                                    "block outside position map");
                    Py_DECREF(block);
                    goto path_fail;
                }
                PyObject *bleaf_obj = PyList_GET_ITEM(leaf_table, value);
                long long bleaf = PyLong_AsLongLong(bleaf_obj);
                if (bleaf == -1) {
                    if (!PyErr_Occurred())
                        PyErr_SetString(PyExc_ValueError,
                                        "block has no mapping");
                    Py_DECREF(block);
                    goto path_fail;
                }
                if (array_mode) {
                    long long bprefix = bleaf >> prefix_shift;
                    long long depth = (bprefix == tprefix)
                        ? (levels - 1) -
                              bit_length((unsigned long long)(leaf ^ bleaf))
                        : prefix_levels -
                              bit_length(
                                  (unsigned long long)(bprefix ^ tprefix));
                    if (n_read >= max_slots || depth < 0 ||
                        depth >= levels) {
                        PyErr_SetString(PyExc_RuntimeError,
                                        "path read overflow");
                        Py_DECREF(block);
                        goto path_fail;
                    }
                    abuf[n_read].seq = next_seq;
                    abuf[n_read].block = block;  /* keep the strong ref */
                    abuf[n_read].idx = n_read;
                    aleaf_obj[n_read] = bleaf_obj;
                    ableaf[n_read] = bleaf;
                    adepth[n_read] = depth;
                    acounts[depth]++;
                    next_seq++;
                    n_read++;
                } else {
                    if (stash_add_one(entries, seq_dict, by_prefix,
                                      prefix_shift, block, bleaf_obj, bleaf,
                                      &next_seq) < 0) {
                        Py_DECREF(block);
                        goto path_fail;
                    }
                    Py_DECREF(block);
                }
            }
            if (cleared) {
                if (level < 0 || level >= levels) {
                    PyErr_SetString(PyExc_IndexError, "level out of range");
                    goto path_fail;
                }
                used_arr[level] -= cleared;
            }
        }
        {
            long long occ = array_mode
                ? (long long)n_read
                : (long long)PyDict_GET_SIZE(entries);
            if (occ > max_occ)
                max_occ = occ;
        }
        if (collect_timing) {
            unsigned long long t1 = now_ns();
            t_stash += t1 - t0;
            t0 = t1;
        }

        /* Greedy bottom-up write placement. */
        if (array_mode) {
            if (n_read > 0) {
                /* Segment the read-order items by depth; read order is
                 * ascending sequence, so each segment stays sorted. */
                Py_ssize_t aoffsets[FASTPATH_MAX_LEVELS];
                Py_ssize_t afill[FASTPATH_MAX_LEVELS];
                aoffsets[0] = 0;
                for (long long d = 1; d < levels; d++)
                    aoffsets[d] = aoffsets[d - 1] + acounts[d - 1];
                memcpy(afill, aoffsets,
                       sizeof(Py_ssize_t) * (size_t)levels);
                PoolItem *seg = abuf + max_slots;
                for (Py_ssize_t i = 0; i < n_read; i++)
                    seg[afill[adepth[i]]++] = abuf[i];
                memset(aplaced, 0, (size_t)n_read);
                if (place_pools(seg, n_read, acounts, aoffsets, entries,
                                seq_dict, by_prefix, prefix_shift, pairs,
                                z_arr, used_arr, levels, top, empty,
                                treetop_mode == 1, resident, set_count,
                                set_of, ways, 0, aplaced, &placed_top,
                                &ss_placed, &ss_skips) < 0)
                    goto path_fail;
                /* Survivors enter the stash dicts in read order with
                 * their pre-assigned sequence numbers. */
                for (Py_ssize_t i = 0; i < n_read; i++) {
                    if (!aplaced[i] &&
                        stash_insert_with_seq(entries, seq_dict,
                                              by_prefix, prefix_shift,
                                              abuf[i].block, aleaf_obj[i],
                                              ableaf[i], abuf[i].seq) < 0)
                        goto path_fail;
                }
                for (Py_ssize_t i = 0; i < n_read; i++)
                    Py_DECREF(abuf[i].block);
                n_read = 0;
            }
        } else if (write_place_core(leaf, entries, seq_dict, by_prefix,
                                    prefix_shift, prefix_levels, pairs,
                                    z_arr, used_arr, levels, top, empty,
                                    treetop_mode == 1, resident, set_count,
                                    set_of, ways, &placed_top, &ss_placed,
                                    &ss_skips) < 0)
            goto path_fail;
        if (collect_timing) {
            unsigned long long t1 = now_ns();
            t_place += t1 - t0;
            t0 = t1;
        }

        /* Write phase through the DRAM model. */
        now_dram = (finish_read + dcfg.ratio - 1) / dcfg.ratio;
        long long fw_dram = 0;
        dram_run_arr(tarr + 1, n_triples, ready, open_row, bus_free,
                     now_dram, &dcfg, &fw_dram, &row_hits, &row_conflicts);
        long long finish_write = fw_dram * dcfg.ratio;
        if (collect_timing)
            t_write_dram += now_ns() - t0;

        if ((long long)PyDict_GET_SIZE(entries) > trigger_threshold)
            ev_triggers++;
        blocks_total += blocks;

        if (want_bounds) {
            long long triple[3] = {now, finish_read, finish_write};
            for (int b = 0; b < 3; b++) {
                PyObject *value = PyLong_FromLongLong(triple[b]);
                if (value == NULL || PyList_Append(bounds, value) < 0) {
                    Py_XDECREF(value);
                    goto path_fail;
                }
                Py_DECREF(value);
            }
        }
        Py_DECREF(pairs);
        Py_DECREF(packed);
        Py_DECREF(leaf_obj);

        long long next_now = now + interval;
        now = finish_write > next_now ? finish_write : next_now;
        n++;
        continue;

    path_fail:
        for (Py_ssize_t i = 0; i < n_read; i++)
            Py_DECREF(abuf[i].block);
        Py_XDECREF(pairs);
        Py_XDECREF(packed);
        Py_XDECREF(leaf_obj);
        goto fail;
    }

    /* Write the bank state and level occupancy back to the model's
     * lists. */
    for (Py_ssize_t i = 0; i < n_banks; i++) {
        PyObject *value = PyLong_FromLongLong(ready[i]);
        if (value == NULL)
            goto fail;
        PyList_SetItem(bank_ready, i, value);
        value = PyLong_FromLongLong(open_row[i]);
        if (value == NULL)
            goto fail;
        PyList_SetItem(bank_open_row, i, value);
    }
    for (Py_ssize_t i = 0; i < n_channels; i++) {
        PyObject *value = PyLong_FromLongLong(bus_free[i]);
        if (value == NULL)
            goto fail;
        PyList_SetItem(bus_free_list, i, value);
    }
    for (long long d = 0; d < levels; d++) {
        PyObject *value = PyLong_FromLongLong(used_arr[d]);
        if (value == NULL)
            goto fail;
        PyList_SetItem(level_used, d, value);
    }
    PyMem_Free(bank_state);
    PyMem_Free(abuf);
    Py_DECREF(empty_obj);
    Py_XDECREF(bits_obj);
    {
        PyObject *agg = Py_BuildValue(
            "(LLLLLLLLL)", blocks_total, row_hits, row_conflicts,
            placed_top, removed_top, ev_triggers, ss_placed, ss_removed,
            ss_skips);
        if (agg == NULL) {
            Py_XDECREF(bounds);
            return NULL;
        }
        PyObject *timings = collect_timing
            ? Py_BuildValue("(KKKKK)", t_rng, t_read_dram, t_stash,
                            t_place, t_write_dram)
            : Py_NewRef(Py_None);
        if (timings == NULL) {
            Py_DECREF(agg);
            Py_XDECREF(bounds);
            return NULL;
        }
        if (bounds == NULL)
            bounds = Py_NewRef(Py_None);
        PyObject *result = Py_BuildValue(
            "(LLLLNNN)", n, now, next_seq, max_occ, bounds, agg, timings);
        return result;
    }

fail:
    PyMem_Free(bank_state);
    PyMem_Free(abuf);
    Py_DECREF(empty_obj);
    Py_XDECREF(bits_obj);
    Py_XDECREF(bounds);
    return NULL;
}

static PyMethodDef fastpath_methods[] = {
    {"dram_service", dram_service, METH_VARARGS,
     "Batch DRAM timing over pre-decomposed (bank, channel, row) triples."},
    {"read_and_clear", read_and_clear, METH_VARARGS,
     "Clear a path's slots, returning the removed (block, level) pairs."},
    {"stash_bulk_add", stash_bulk_add, METH_VARARGS,
     "Insert read-phase blocks into the stash with index maintenance."},
    {"write_path_place", write_path_place, METH_VARARGS,
     "Greedy bottom-up write-phase placement for ungated tree-top caches."},
    {"path_triples", path_triples, METH_VARARGS,
     "Fused path address generation + DRAM decomposition for one leaf."},
    {"path_pools_fill", path_pools_fill, METH_VARARGS,
     "Group stash blocks by deepest eligible level into reusable pools."},
    {"pack_triples", pack_triples_entry, METH_VARARGS,
     "Pack a (triples, blocks) cache entry into the kernel's byte form."},
    {"run_batch", run_batch, METH_VARARGS,
     "Whole-batch dummy-path execution over live controller state."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fastpath_module = {
    PyModuleDef_HEAD_INIT,
    "_repro_fastpath",
    "C hot-path kernels for the repro ORAM simulator.",
    -1,
    fastpath_methods,
};

PyMODINIT_FUNC
PyInit__repro_fastpath(void)
{
    return PyModule_Create(&fastpath_module);
}
