/* Optional C hot-path kernels for the repro simulator.
 *
 * Compiled on demand by repro.perf.native with the system C compiler and
 * loaded as the extension module `_repro_fastpath`.  Every function here
 * mirrors a pure-Python implementation bit for bit — the Python versions
 * stay in the tree as both fallback and behavioural oracle, and the
 * equivalence tests compare whole simulations across the two.
 *
 * The kernels operate directly on the simulator's live Python objects
 * (plain lists of ints), so there is a single source of truth for all
 * state; no separate C-side state is kept.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdlib.h>
#include <string.h>

/* dram_service(triples, ready, open_row, bus_free,
 *              now_dram, t_rp, t_rcd, t_burst, cas_burst)
 *   -> (finish_dram, row_hits, row_conflicts)
 *
 * `triples` is the flat [bank, channel, row, ...] list produced by
 * DRAMModel.decompose_batch; `ready`, `open_row` (row id or -1 = closed)
 * and `bus_free` are the model's bank-state lists, mutated in place.
 * Mirrors DRAMModel._service_py.
 */
static PyObject *
dram_service(PyObject *self, PyObject *args)
{
    PyObject *triples, *ready, *open_row, *bus_free;
    long long now_dram, t_rp, t_rcd, t_burst, cas_burst;
    if (!PyArg_ParseTuple(
            args, "O!O!O!O!LLLLL",
            &PyList_Type, &triples, &PyList_Type, &ready,
            &PyList_Type, &open_row, &PyList_Type, &bus_free,
            &now_dram, &t_rp, &t_rcd, &t_burst, &cas_burst))
        return NULL;

    Py_ssize_t n = PyList_GET_SIZE(triples);
    long long finish = now_dram;
    long long row_hits = 0;
    long long conflicts = 0;

    for (Py_ssize_t i = 0; i + 2 < n; i += 3) {
        long long bank = PyLong_AsLongLong(PyList_GET_ITEM(triples, i));
        long long channel = PyLong_AsLongLong(PyList_GET_ITEM(triples, i + 1));
        long long row = PyLong_AsLongLong(PyList_GET_ITEM(triples, i + 2));
        if (PyErr_Occurred())
            return NULL;
        if (bank < 0 || bank >= PyList_GET_SIZE(ready) ||
            channel < 0 || channel >= PyList_GET_SIZE(bus_free)) {
            PyErr_SetString(PyExc_IndexError, "bank/channel out of range");
            return NULL;
        }

        long long t = PyLong_AsLongLong(PyList_GET_ITEM(ready, bank));
        long long freed = PyLong_AsLongLong(PyList_GET_ITEM(bus_free, channel));
        if (freed > t)
            t = freed;
        if (now_dram > t)
            t = now_dram;

        long long current = PyLong_AsLongLong(PyList_GET_ITEM(open_row, bank));
        if (PyErr_Occurred())
            return NULL;
        if (current != row) {
            if (current != -1) {
                t += t_rp;
                conflicts++;
            }
            t += t_rcd;
            PyObject *row_obj = PyLong_FromLongLong(row);
            if (row_obj == NULL)
                return NULL;
            PyList_SetItem(open_row, bank, row_obj);
        } else {
            row_hits++;
        }

        long long done = t + cas_burst;
        long long next_slot = t + t_burst;
        PyObject *slot_obj = PyLong_FromLongLong(next_slot);
        if (slot_obj == NULL)
            return NULL;
        PyList_SetItem(bus_free, channel, slot_obj);
        slot_obj = PyLong_FromLongLong(next_slot);
        if (slot_obj == NULL)
            return NULL;
        PyList_SetItem(ready, bank, slot_obj);
        if (done > finish)
            finish = done;
    }
    return Py_BuildValue("LLL", finish, row_hits, conflicts);
}

/* read_and_clear(pairs, level_used, empty) -> [(block, level), ...]
 *
 * `pairs` is a list of (level, slots) tuples (ORAMTree.path_slots);
 * every non-empty slot is cleared to `empty`, its block collected, and
 * level_used decremented per level.  Mirrors the pure-Python loop in
 * ORAMTree.read_and_clear.
 */
static PyObject *
read_and_clear(PyObject *self, PyObject *args)
{
    PyObject *pairs, *level_used;
    long long empty;
    if (!PyArg_ParseTuple(args, "O!O!L",
                          &PyList_Type, &pairs,
                          &PyList_Type, &level_used, &empty))
        return NULL;

    PyObject *removed = PyList_New(0);
    if (removed == NULL)
        return NULL;
    PyObject *empty_obj = PyLong_FromLongLong(empty);
    if (empty_obj == NULL) {
        Py_DECREF(removed);
        return NULL;
    }

    Py_ssize_t n_pairs = PyList_GET_SIZE(pairs);
    for (Py_ssize_t p = 0; p < n_pairs; p++) {
        PyObject *pair = PyList_GET_ITEM(pairs, p);
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
            PyErr_SetString(PyExc_TypeError, "pairs must hold (level, slots)");
            goto fail;
        }
        PyObject *level_obj = PyTuple_GET_ITEM(pair, 0);
        PyObject *slots = PyTuple_GET_ITEM(pair, 1);
        if (!PyList_Check(slots)) {
            PyErr_SetString(PyExc_TypeError, "slots must be a list");
            goto fail;
        }
        Py_ssize_t z = PyList_GET_SIZE(slots);
        long long cleared = 0;
        for (Py_ssize_t i = 0; i < z; i++) {
            PyObject *block = PyList_GET_ITEM(slots, i);
            long long value = PyLong_AsLongLong(block);
            if (PyErr_Occurred())
                goto fail;
            if (value == empty)
                continue;
            PyObject *tup = PyTuple_Pack(2, block, level_obj);
            if (tup == NULL)
                goto fail;
            int rc = PyList_Append(removed, tup);
            Py_DECREF(tup);
            if (rc < 0)
                goto fail;
            Py_INCREF(empty_obj);
            PyList_SetItem(slots, i, empty_obj);
            cleared++;
        }
        if (cleared) {
            long long level = PyLong_AsLongLong(level_obj);
            if (PyErr_Occurred())
                goto fail;
            if (level < 0 || level >= PyList_GET_SIZE(level_used)) {
                PyErr_SetString(PyExc_IndexError, "level out of range");
                goto fail;
            }
            long long used =
                PyLong_AsLongLong(PyList_GET_ITEM(level_used, level));
            if (PyErr_Occurred())
                goto fail;
            PyObject *used_obj = PyLong_FromLongLong(used - cleared);
            if (used_obj == NULL)
                goto fail;
            PyList_SetItem(level_used, level, used_obj);
        }
    }
    Py_DECREF(empty_obj);
    return removed;

fail:
    Py_DECREF(empty_obj);
    Py_DECREF(removed);
    return NULL;
}

/* ---------------------------------------------------------------- */
/* Stash index surgery shared by the bulk-add and write-path kernels */
/* ---------------------------------------------------------------- */

static inline long long
bit_length(unsigned long long x)
{
    return x ? 64 - __builtin_clzll(x) : 0;
}

/* Remove `block` from the stash dicts (entries, seq, prefix bucket).
 * The caller must hold another reference to `block` (e.g. a tree slot).
 */
static int
stash_remove_indexed(PyObject *entries, PyObject *seq_dict,
                     PyObject *by_prefix, long long prefix_shift,
                     PyObject *block)
{
    PyObject *leaf_obj = PyDict_GetItem(entries, block);
    if (leaf_obj == NULL) {
        PyErr_SetString(PyExc_KeyError, "block not in stash");
        return -1;
    }
    long long leaf = PyLong_AsLongLong(leaf_obj);
    if (leaf == -1 && PyErr_Occurred())
        return -1;
    PyObject *seq_obj = PyDict_GetItem(seq_dict, block);
    if (seq_obj == NULL) {
        PyErr_SetString(PyExc_KeyError, "block not in stash seq index");
        return -1;
    }
    Py_INCREF(seq_obj);
    PyObject *prefix_obj = PyLong_FromLongLong(leaf >> prefix_shift);
    if (prefix_obj == NULL) {
        Py_DECREF(seq_obj);
        return -1;
    }
    PyObject *bucket = PyDict_GetItem(by_prefix, prefix_obj);
    if (bucket == NULL || PyDict_DelItem(bucket, seq_obj) < 0) {
        if (bucket == NULL)
            PyErr_SetString(PyExc_KeyError, "stash prefix bucket missing");
        Py_DECREF(prefix_obj);
        Py_DECREF(seq_obj);
        return -1;
    }
    if (PyDict_GET_SIZE(bucket) == 0 &&
        PyDict_DelItem(by_prefix, prefix_obj) < 0) {
        Py_DECREF(prefix_obj);
        Py_DECREF(seq_obj);
        return -1;
    }
    Py_DECREF(prefix_obj);
    Py_DECREF(seq_obj);
    if (PyDict_DelItem(seq_dict, block) < 0)
        return -1;
    return PyDict_DelItem(entries, block);
}

/* stash_bulk_add(removed, entries, seq_dict, by_prefix, prefix_shift,
 *                next_seq, leaf_table, top) -> (next_seq, top_blocks)
 *
 * Insert every (block, level) pair pulled off a path into the stash with
 * full leaf-prefix index maintenance, mirroring Stash.add.  Blocks read
 * out of the cached top levels are returned so the caller can run the
 * tree-top structure's removal hook on exactly those.
 */
static PyObject *
stash_bulk_add(PyObject *self, PyObject *args)
{
    PyObject *removed, *entries, *seq_dict, *by_prefix, *leaf_table;
    long long prefix_shift, next_seq, top;
    if (!PyArg_ParseTuple(args, "O!O!O!O!LLO!L",
                          &PyList_Type, &removed,
                          &PyDict_Type, &entries,
                          &PyDict_Type, &seq_dict,
                          &PyDict_Type, &by_prefix,
                          &prefix_shift, &next_seq,
                          &PyList_Type, &leaf_table, &top))
        return NULL;

    PyObject *top_blocks = PyList_New(0);
    if (top_blocks == NULL)
        return NULL;
    Py_ssize_t n = PyList_GET_SIZE(removed);
    Py_ssize_t table_size = PyList_GET_SIZE(leaf_table);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *pair = PyList_GET_ITEM(removed, i);
        PyObject *block = PyTuple_GET_ITEM(pair, 0);
        long long level = PyLong_AsLongLong(PyTuple_GET_ITEM(pair, 1));
        long long block_id = PyLong_AsLongLong(block);
        if (PyErr_Occurred())
            goto fail;
        if (level < top && PyList_Append(top_blocks, block) < 0)
            goto fail;
        if (block_id < 0 || block_id >= table_size) {
            PyErr_SetString(PyExc_IndexError, "block outside position map");
            goto fail;
        }
        PyObject *leaf_obj = PyList_GET_ITEM(leaf_table, block_id);
        long long leaf = PyLong_AsLongLong(leaf_obj);
        if (leaf == -1) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError, "block has no mapping");
            goto fail;
        }

        PyObject *old_leaf = PyDict_GetItem(entries, block);
        if (PyDict_SetItem(entries, block, leaf_obj) < 0)
            goto fail;
        if (old_leaf == NULL) {
            /* Fresh entry: assign a sequence number and index it. */
            PyObject *seq_obj = PyLong_FromLongLong(next_seq);
            if (seq_obj == NULL)
                goto fail;
            next_seq++;
            if (PyDict_SetItem(seq_dict, block, seq_obj) < 0) {
                Py_DECREF(seq_obj);
                goto fail;
            }
            PyObject *prefix_obj = PyLong_FromLongLong(leaf >> prefix_shift);
            if (prefix_obj == NULL) {
                Py_DECREF(seq_obj);
                goto fail;
            }
            PyObject *bucket = PyDict_GetItem(by_prefix, prefix_obj);
            if (bucket == NULL) {
                bucket = PyDict_New();
                if (bucket == NULL ||
                    PyDict_SetItem(by_prefix, prefix_obj, bucket) < 0) {
                    Py_XDECREF(bucket);
                    Py_DECREF(prefix_obj);
                    Py_DECREF(seq_obj);
                    goto fail;
                }
                Py_DECREF(bucket);  /* by_prefix holds it now */
            }
            if (PyDict_SetItem(bucket, seq_obj, block) < 0) {
                Py_DECREF(prefix_obj);
                Py_DECREF(seq_obj);
                goto fail;
            }
            Py_DECREF(prefix_obj);
            Py_DECREF(seq_obj);
        } else {
            /* Existing entry: keep its seq, move buckets if needed. */
            long long old = PyLong_AsLongLong(old_leaf);
            if (old == -1 && PyErr_Occurred())
                goto fail;
            long long old_prefix = old >> prefix_shift;
            long long new_prefix = leaf >> prefix_shift;
            if (old_prefix != new_prefix) {
                PyObject *seq_obj = PyDict_GetItem(seq_dict, block);
                if (seq_obj == NULL) {
                    PyErr_SetString(PyExc_KeyError, "stash seq missing");
                    goto fail;
                }
                Py_INCREF(seq_obj);
                PyObject *old_obj = PyLong_FromLongLong(old_prefix);
                PyObject *bucket =
                    old_obj ? PyDict_GetItem(by_prefix, old_obj) : NULL;
                if (bucket == NULL || PyDict_DelItem(bucket, seq_obj) < 0) {
                    if (bucket == NULL && !PyErr_Occurred())
                        PyErr_SetString(PyExc_KeyError,
                                        "stash prefix bucket missing");
                    Py_XDECREF(old_obj);
                    Py_DECREF(seq_obj);
                    goto fail;
                }
                if (PyDict_GET_SIZE(bucket) == 0)
                    PyDict_DelItem(by_prefix, old_obj);
                Py_DECREF(old_obj);
                PyObject *new_obj = PyLong_FromLongLong(new_prefix);
                if (new_obj == NULL) {
                    Py_DECREF(seq_obj);
                    goto fail;
                }
                bucket = PyDict_GetItem(by_prefix, new_obj);
                if (bucket == NULL) {
                    bucket = PyDict_New();
                    if (bucket == NULL ||
                        PyDict_SetItem(by_prefix, new_obj, bucket) < 0) {
                        Py_XDECREF(bucket);
                        Py_DECREF(new_obj);
                        Py_DECREF(seq_obj);
                        goto fail;
                    }
                    Py_DECREF(bucket);
                }
                if (PyDict_SetItem(bucket, seq_obj, block) < 0) {
                    Py_DECREF(new_obj);
                    Py_DECREF(seq_obj);
                    goto fail;
                }
                Py_DECREF(new_obj);
                Py_DECREF(seq_obj);
            }
        }
    }
    {
        PyObject *seq_val = PyLong_FromLongLong(next_seq);
        if (seq_val == NULL)
            goto fail;
        PyObject *result = PyTuple_Pack(2, seq_val, top_blocks);
        Py_DECREF(seq_val);
        Py_DECREF(top_blocks);
        return result;
    }

fail:
    Py_DECREF(top_blocks);
    return NULL;
}

/* write_path_place(leaf, entries, seq_dict, by_prefix, prefix_shift,
 *                  prefix_levels, path_slots, z_per_level, level_used,
 *                  levels, top, empty) -> placed_top
 *
 * The full greedy bottom-up write phase for the ungated case (dedicated
 * tree-top cache: may_place always true, placement hooks are counters):
 * group every stash block by deepest eligible level via the leaf-prefix
 * index, then fill bucket slots deepest-first, removing placed blocks
 * from the stash.  Mirrors Stash.path_pools + the placement loop in
 * PathORAMController._write_path.
 */

typedef struct {
    long long seq;
    PyObject *block;
} PoolItem;

static int
pool_item_cmp(const void *a, const void *b)
{
    long long sa = ((const PoolItem *)a)->seq;
    long long sb = ((const PoolItem *)b)->seq;
    return (sa > sb) - (sa < sb);
}

#define FASTPATH_MAX_LEVELS 64

/* Depth-bucket every stash block for the path to `leaf` via the prefix
 * index: blocks sharing the target prefix get an exact XOR/bit-length
 * depth, diverging prefix buckets land wholesale at the prefix divergence
 * depth.  Fills `items` (capacity >= len(entries)) segmented by depth
 * (counts/offsets, length `levels`), each segment sorted by stash
 * insertion sequence.  Mirrors Stash.path_pools.  Returns 0, or -1 with
 * an exception set.
 */
static int
group_by_depth(long long leaf, PyObject *entries, PyObject *by_prefix,
               long long prefix_shift, long long prefix_levels,
               long long levels, PoolItem *items,
               Py_ssize_t *counts, Py_ssize_t *offsets)
{
    long long base = levels - 1;
    long long target_prefix = leaf >> prefix_shift;
    Py_ssize_t fill[FASTPATH_MAX_LEVELS];
    PyObject *prefix_obj, *bucket;
    Py_ssize_t pos = 0;

    memset(counts, 0, sizeof(Py_ssize_t) * (size_t)levels);
    /* count per depth */
    while (PyDict_Next(by_prefix, &pos, &prefix_obj, &bucket)) {
        long long prefix = PyLong_AsLongLong(prefix_obj);
        if (prefix == -1 && PyErr_Occurred())
            return -1;
        if (prefix == target_prefix) {
            PyObject *seq_obj, *block;
            Py_ssize_t bpos = 0;
            while (PyDict_Next(bucket, &bpos, &seq_obj, &block)) {
                PyObject *leaf_obj = PyDict_GetItem(entries, block);
                if (leaf_obj == NULL) {
                    PyErr_SetString(PyExc_KeyError,
                                    "stash index out of sync");
                    return -1;
                }
                long long block_leaf = PyLong_AsLongLong(leaf_obj);
                if (block_leaf == -1 && PyErr_Occurred())
                    return -1;
                long long depth =
                    base - bit_length(
                        (unsigned long long)(leaf ^ block_leaf));
                counts[depth]++;
            }
        } else {
            long long depth =
                prefix_levels - bit_length(
                    (unsigned long long)(prefix ^ target_prefix));
            counts[depth] += PyDict_GET_SIZE(bucket);
        }
    }
    offsets[0] = 0;
    for (long long d = 1; d < levels; d++)
        offsets[d] = offsets[d - 1] + counts[d - 1];
    memcpy(fill, offsets, sizeof(Py_ssize_t) * (size_t)levels);
    /* fill */
    pos = 0;
    while (PyDict_Next(by_prefix, &pos, &prefix_obj, &bucket)) {
        long long prefix = PyLong_AsLongLong(prefix_obj);
        PyObject *seq_obj, *block;
        Py_ssize_t bpos = 0;
        if (prefix == target_prefix) {
            while (PyDict_Next(bucket, &bpos, &seq_obj, &block)) {
                long long block_leaf = PyLong_AsLongLong(
                    PyDict_GetItem(entries, block));
                long long depth =
                    base - bit_length(
                        (unsigned long long)(leaf ^ block_leaf));
                items[fill[depth]].seq = PyLong_AsLongLong(seq_obj);
                items[fill[depth]].block = block;
                fill[depth]++;
            }
        } else {
            long long depth =
                prefix_levels - bit_length(
                    (unsigned long long)(prefix ^ target_prefix));
            while (PyDict_Next(bucket, &bpos, &seq_obj, &block)) {
                items[fill[depth]].seq = PyLong_AsLongLong(seq_obj);
                items[fill[depth]].block = block;
                fill[depth]++;
            }
        }
    }
    if (PyErr_Occurred())
        return -1;
    for (long long d = 0; d < levels; d++)
        if (counts[d] > 1)
            qsort(items + offsets[d], (size_t)counts[d],
                  sizeof(PoolItem), pool_item_cmp);
    return 0;
}

/* path_pools_fill(leaf, entries, by_prefix, prefix_shift, prefix_levels,
 *                 levels, pools) -> None
 *
 * Fill the stash's reusable per-depth pool lists for the path to `leaf`
 * (the grouping step of the write phase), leaving placement to the
 * caller — used by schemes whose tree-top structure gates placement.
 */
static PyObject *
path_pools_fill(PyObject *self, PyObject *args)
{
    PyObject *entries, *by_prefix, *pools;
    long long leaf, prefix_shift, prefix_levels, levels;
    if (!PyArg_ParseTuple(args, "LO!O!LLLO!",
                          &leaf,
                          &PyDict_Type, &entries,
                          &PyDict_Type, &by_prefix,
                          &prefix_shift, &prefix_levels, &levels,
                          &PyList_Type, &pools))
        return NULL;
    if (levels < 1 || levels > FASTPATH_MAX_LEVELS ||
        PyList_GET_SIZE(pools) < (Py_ssize_t)levels) {
        PyErr_SetString(PyExc_ValueError, "unsupported level count");
        return NULL;
    }
    for (long long d = 0; d < levels; d++) {
        PyObject *pool = PyList_GET_ITEM(pools, d);
        if (!PyList_Check(pool)) {
            PyErr_SetString(PyExc_TypeError, "pools must hold lists");
            return NULL;
        }
        if (PyList_GET_SIZE(pool) &&
            PyList_SetSlice(pool, 0, PY_SSIZE_T_MAX, NULL) < 0)
            return NULL;
    }
    Py_ssize_t total = PyDict_GET_SIZE(entries);
    if (total == 0)
        Py_RETURN_NONE;

    PoolItem *items = PyMem_Malloc(sizeof(PoolItem) * (size_t)total);
    if (items == NULL)
        return PyErr_NoMemory();
    Py_ssize_t counts[FASTPATH_MAX_LEVELS];
    Py_ssize_t offsets[FASTPATH_MAX_LEVELS];
    if (group_by_depth(leaf, entries, by_prefix, prefix_shift,
                       prefix_levels, levels, items, counts, offsets) < 0) {
        PyMem_Free(items);
        return NULL;
    }
    for (long long d = 0; d < levels; d++) {
        PyObject *pool = PyList_GET_ITEM(pools, d);
        for (Py_ssize_t i = 0; i < counts[d]; i++) {
            if (PyList_Append(pool, items[offsets[d] + i].block) < 0) {
                PyMem_Free(items);
                return NULL;
            }
        }
    }
    PyMem_Free(items);
    Py_RETURN_NONE;
}

static PyObject *
write_path_place(PyObject *self, PyObject *args)
{
    PyObject *entries, *seq_dict, *by_prefix, *path_slots, *z_list,
        *level_used;
    long long leaf, prefix_shift, prefix_levels, levels, top, empty;
    if (!PyArg_ParseTuple(args, "LO!O!O!LLO!O!O!LLL",
                          &leaf,
                          &PyDict_Type, &entries,
                          &PyDict_Type, &seq_dict,
                          &PyDict_Type, &by_prefix,
                          &prefix_shift, &prefix_levels,
                          &PyList_Type, &path_slots,
                          &PyList_Type, &z_list,
                          &PyList_Type, &level_used,
                          &levels, &top, &empty))
        return NULL;
    if (levels < 1 || levels > FASTPATH_MAX_LEVELS) {
        PyErr_SetString(PyExc_ValueError, "unsupported level count");
        return NULL;
    }

    Py_ssize_t total = PyDict_GET_SIZE(entries);
    long long placed_top = 0;
    if (total == 0)
        return PyLong_FromLongLong(0);

    PoolItem *items = PyMem_Malloc(sizeof(PoolItem) * (size_t)total * 2);
    if (items == NULL)
        return PyErr_NoMemory();
    PoolItem *stack = items + total;
    Py_ssize_t counts[FASTPATH_MAX_LEVELS];
    Py_ssize_t offsets[FASTPATH_MAX_LEVELS];

    /* Pass 1: depth-bucket every stash block via the prefix index. */
    if (group_by_depth(leaf, entries, by_prefix, prefix_shift,
                       prefix_levels, levels, items, counts, offsets) < 0)
        goto fail;

    /* Pass 2: greedy bottom-up placement, pool kept as a stack. */
    {
        Py_ssize_t stack_size = 0;
        Py_ssize_t ps_idx = PyList_GET_SIZE(path_slots) - 1;
        for (long long level = levels - 1; level >= 0; level--) {
            Py_ssize_t cnt = counts[level];
            if (cnt) {
                memcpy(stack + stack_size, items + offsets[level],
                       sizeof(PoolItem) * (size_t)cnt);
                stack_size += cnt;
            }
            long long z = PyLong_AsLongLong(
                PyList_GET_ITEM(z_list, level));
            if (z == -1 && PyErr_Occurred())
                goto fail;
            if (z == 0)
                continue;
            if (ps_idx < 0) {
                PyErr_SetString(PyExc_ValueError,
                                "path_slots out of sync with z_per_level");
                goto fail;
            }
            PyObject *pair = PyList_GET_ITEM(path_slots, ps_idx);
            long long pair_level =
                PyLong_AsLongLong(PyTuple_GET_ITEM(pair, 0));
            if (pair_level != level) {
                PyErr_SetString(PyExc_ValueError,
                                "path_slots out of sync with z_per_level");
                goto fail;
            }
            PyObject *slots = PyTuple_GET_ITEM(pair, 1);
            ps_idx--;
            if (stack_size == 0)
                continue;
            Py_ssize_t z_size = PyList_GET_SIZE(slots);
            Py_ssize_t scan = 0;
            long long placed = 0;
            long long used_delta = 0;
            while (stack_size > 0 && placed < z) {
                PyObject *block = stack[--stack_size].block;
                /* first EMPTY slot (earlier ones were just filled) */
                Py_ssize_t free_idx = -1;
                for (Py_ssize_t i = scan; i < z_size; i++) {
                    long long occupant = PyLong_AsLongLong(
                        PyList_GET_ITEM(slots, i));
                    if (occupant == -1 && PyErr_Occurred())
                        goto fail;
                    if (occupant == empty) {
                        free_idx = i;
                        break;
                    }
                }
                if (free_idx < 0) {
                    PyErr_SetString(PyExc_RuntimeError,
                                    "bucket full during write phase");
                    goto fail;
                }
                Py_INCREF(block);
                PyList_SetItem(slots, free_idx, block);
                scan = free_idx + 1;
                used_delta++;
                placed++;
                if (level < top)
                    placed_top++;
                if (stash_remove_indexed(entries, seq_dict, by_prefix,
                                         prefix_shift, block) < 0)
                    goto fail;
            }
            if (used_delta) {
                long long used = PyLong_AsLongLong(
                    PyList_GET_ITEM(level_used, level));
                if (used == -1 && PyErr_Occurred())
                    goto fail;
                PyObject *used_obj =
                    PyLong_FromLongLong(used + used_delta);
                if (used_obj == NULL)
                    goto fail;
                PyList_SetItem(level_used, level, used_obj);
            }
        }
    }
    PyMem_Free(items);
    return PyLong_FromLongLong(placed_top);

fail:
    PyMem_Free(items);
    return NULL;
}

/* path_triples(leaf, level_meta, row_blocks, channels, banks_per_channel)
 *   -> [bank, channel, row, ...]
 *
 * Fused TreeLayout.path_addresses + DRAMModel.decompose_batch for one
 * path: walk the layout's per-level meta tuples
 * (shift, z, r, mask, offsets, row_base, rows) and emit the flat DRAM
 * triple list directly, skipping the intermediate address list.
 */
static PyObject *
path_triples(PyObject *self, PyObject *args)
{
    PyObject *meta;
    long long leaf, row_blocks, channels, banks_per_channel;
    if (!PyArg_ParseTuple(args, "LO!LLL",
                          &leaf, &PyList_Type, &meta,
                          &row_blocks, &channels, &banks_per_channel))
        return NULL;
    if (row_blocks <= 0 || channels <= 0 || banks_per_channel <= 0) {
        PyErr_SetString(PyExc_ValueError, "invalid DRAM geometry");
        return NULL;
    }

    Py_ssize_t n_levels = PyList_GET_SIZE(meta);
    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n_levels; i++) {
        PyObject *entry = PyList_GET_ITEM(meta, i);
        long long z = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
        if (z == -1 && PyErr_Occurred())
            return NULL;
        total += (Py_ssize_t)z;
    }
    PyObject *flat = PyList_New(total * 3);
    if (flat == NULL)
        return NULL;
    Py_ssize_t out = 0;
    for (Py_ssize_t i = 0; i < n_levels; i++) {
        PyObject *entry = PyList_GET_ITEM(meta, i);
        long long shift = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 0));
        long long z = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
        long long r = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 2));
        long long mask = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 3));
        PyObject *offsets = PyTuple_GET_ITEM(entry, 4);
        long long row_base = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 5));
        long long rows = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 6));
        if (PyErr_Occurred() || !PyList_Check(offsets)) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_TypeError, "offsets must be a list");
            goto fail;
        }
        long long position = leaf >> shift;
        Py_ssize_t off_idx = (Py_ssize_t)(mask + (position & mask));
        if (off_idx < 0 || off_idx >= PyList_GET_SIZE(offsets)) {
            PyErr_SetString(PyExc_IndexError, "layout offset out of range");
            goto fail;
        }
        long long offset =
            PyLong_AsLongLong(PyList_GET_ITEM(offsets, off_idx));
        if (offset == -1 && PyErr_Occurred())
            goto fail;
        long long row0 = row_base + (position >> r) * rows;
        for (long long slot = 0; slot < z; slot++) {
            long long combined = offset + slot;
            long long row = row0 + combined / row_blocks;
            long long channel = row % channels;
            long long bank =
                channel * banks_per_channel +
                (row / channels) % banks_per_channel;
            PyObject *bank_obj = PyLong_FromLongLong(bank);
            PyObject *chan_obj = PyLong_FromLongLong(channel);
            PyObject *row_obj = PyLong_FromLongLong(row);
            if (bank_obj == NULL || chan_obj == NULL || row_obj == NULL) {
                Py_XDECREF(bank_obj);
                Py_XDECREF(chan_obj);
                Py_XDECREF(row_obj);
                goto fail;
            }
            PyList_SET_ITEM(flat, out++, bank_obj);
            PyList_SET_ITEM(flat, out++, chan_obj);
            PyList_SET_ITEM(flat, out++, row_obj);
        }
    }
    return flat;

fail:
    Py_DECREF(flat);
    return NULL;
}

static PyMethodDef fastpath_methods[] = {
    {"dram_service", dram_service, METH_VARARGS,
     "Batch DRAM timing over pre-decomposed (bank, channel, row) triples."},
    {"read_and_clear", read_and_clear, METH_VARARGS,
     "Clear a path's slots, returning the removed (block, level) pairs."},
    {"stash_bulk_add", stash_bulk_add, METH_VARARGS,
     "Insert read-phase blocks into the stash with index maintenance."},
    {"write_path_place", write_path_place, METH_VARARGS,
     "Greedy bottom-up write-phase placement for ungated tree-top caches."},
    {"path_triples", path_triples, METH_VARARGS,
     "Fused path address generation + DRAM decomposition for one leaf."},
    {"path_pools_fill", path_pools_fill, METH_VARARGS,
     "Group stash blocks by deepest eligible level into reusable pools."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fastpath_module = {
    PyModuleDef_HEAD_INIT,
    "_repro_fastpath",
    "C hot-path kernels for the repro ORAM simulator.",
    -1,
    fastpath_methods,
};

PyMODINIT_FUNC
PyInit__repro_fastpath(void)
{
    return PyModule_Create(&fastpath_module);
}
