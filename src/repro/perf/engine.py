"""Persistent warm-pool execution engine with cross-run artifact caching.

PR 1's ``fanout`` paid three recurring costs on every sweep: worker
processes re-imported the scheme zoo per pool, every run re-derived the
same config-dependent artifacts (subtree-layout tables, per-leaf DRAM
triples, workload traces), and ``pool.map`` pre-chunked the points so one
slow scheme could leave every other worker idle.  This module replaces
that with three cooperating pieces:

* **Warm pool** — one long-lived :class:`~concurrent.futures.\
  ProcessPoolExecutor` per process, created on first use with an
  initializer that imports the scheme zoo, and reused by every subsequent
  ``run_many``/``sweep``/``bench``/``experiments`` call.  The pool is
  recreated only when a caller asks for more workers than it has or when
  the ``REPRO_*`` environment knobs change (forked workers snapshot the
  environment).

* **Artifact cache** — a per-process :class:`ArtifactCache` keyed by
  :meth:`repro.config.SystemConfig.fingerprint`.  It holds the subtree
  layout (``level_meta`` + path-address cache), the per-leaf DRAM triple
  tables, generated workload traces, and memoized Z-search outcomes.
  Everything cached is a pure function of the config (and trace seed), so
  injection never changes simulation results — the equivalence tests in
  ``tests/test_engine.py`` assert bit-identical cycles and counters
  against the serial loop.  Triple tables, traces, and Z-search outcomes
  additionally persist under ``.repro_cache/`` (see :func:`cache_root`),
  keyed by a salt over the generating source files so code changes
  invalidate stale entries automatically.

* **Straggler-aware scheduling** — points are dispatched *individually*,
  longest-expected-first, with at most ``jobs`` in flight; per-scheme
  wall-time priors recorded by previous runs (``priors.json``) supply the
  cost estimates.  Results still return in input order, so callers are
  deterministic for every ``--jobs`` value.

Cache-hit counters surface through the normal stats/obs layer under the
``engine.*`` namespace (recorded per run after the simulation result is
snapshotted, so simulation counters stay bit-identical) and aggregate in
the ``python -m repro bench`` report.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from .. import stats_keys as sk
from ..config import ORAMConfig, SystemConfig
from ..errors import EngineFaultError
from ..obs import events as ev
from .parallel import PointResult, SimPoint

T = TypeVar("T")
R = TypeVar("R")

#: schema version of the on-disk cache; bump on layout changes
CACHE_SCHEMA = 1

#: EWMA weight of the newest wall-time observation in the priors store
PRIOR_ALPHA = 0.5


# ----------------------------------------------------------------------
# cache location + code salt
# ----------------------------------------------------------------------
def cache_root() -> str:
    """Directory of the on-disk artifact cache.

    ``REPRO_CACHE_DIR`` overrides; the default is ``.repro_cache`` under
    the current working directory (shared by parent and forked workers).
    """
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.getcwd(), ".repro_cache"
    )


def disk_cache_enabled() -> bool:
    """On-disk persistence can be disabled with ``REPRO_DISK_CACHE=0``."""
    return os.environ.get("REPRO_DISK_CACHE", "1") != "0"


def _quarantine(path: str) -> None:
    """Move a corrupt cache file aside (``<name>.corrupt``) for post-mortem.

    Renaming rather than deleting keeps the evidence while guaranteeing
    the bad bytes are never loaded again; failures here are best-effort
    (another process may have already quarantined or replaced the file).
    """
    try:
        os.replace(path, f"{path}.corrupt")
    except OSError:
        pass


def _code_salt() -> str:
    """Digest over the sources whose behaviour the cached artifacts encode.

    Editing the layout, trace generators, config, or the Z-search changes
    the salt and therefore every disk key, so stale entries can never be
    returned after a code change.
    """
    base = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256(str(CACHE_SCHEMA).encode())
    for rel in (
        "config.py",
        "mem/layout.py",
        "mem/dram.py",
        "core/ir_alloc.py",
        "sim/runner.py",
        "traces/trace.py",
        "traces/synthetic.py",
        "traces/benchmarks.py",
        "traces/mix.py",
    ):
        path = os.path.join(base, rel)
        try:
            with open(path, "rb") as handle:
                digest.update(handle.read())
        except OSError:
            digest.update(rel.encode())
    return digest.hexdigest()[:16]


_SALT: Optional[str] = None


def code_salt() -> str:
    global _SALT
    if _SALT is None:
        _SALT = _code_salt()
    return _SALT


# ----------------------------------------------------------------------
# the per-process artifact cache
# ----------------------------------------------------------------------
class ArtifactCache:
    """Config-fingerprint-keyed artifacts shared across runs in a process.

    All values are pure functions of their keys, so sharing them between
    controllers (or loading them from disk) cannot change simulation
    behaviour.  Counters use the ``engine.*`` keys from
    :mod:`repro.stats_keys`.
    """

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self.disk_dir = disk_dir if disk_dir is not None else cache_root()
        self.counters: Dict[str, int] = {}
        self._layouts: Dict[str, Any] = {}
        self._triples: Dict[str, dict] = {}
        self._traces: Dict[Tuple, Any] = {}
        #: trace entries generated (not disk-loaded) since the last flush
        self._dirty_traces: set = set()

    # -- counters ----------------------------------------------------------
    def _bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    # -- disk helpers ------------------------------------------------------
    def _disk_path(self, kind: str, key: str) -> str:
        return os.path.join(self.disk_dir, kind, f"{key}.pkl")

    def _disk_load(self, kind: str, key: str) -> Optional[Any]:
        if not disk_cache_enabled():
            return None
        path = self._disk_path(kind, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # A torn or corrupt entry (killed writer, bad disk) must not
            # be silently retried forever: quarantine it aside so the next
            # store rebuilds it, and surface the event as a counter.
            _quarantine(path)
            self._bump(sk.ENGINE_CACHE_CORRUPT)
            _bump_local(sk.ENGINE_CACHE_CORRUPT)
            return None

    def _disk_store(self, kind: str, key: str, value: Any) -> None:
        if not disk_cache_enabled():
            return
        path = self._disk_path(kind, key)
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- layouts -----------------------------------------------------------
    def layout_for(self, config: SystemConfig):
        """The shared :class:`~repro.mem.layout.TreeLayout` for a config."""
        from ..mem.layout import TreeLayout

        fp = config.fingerprint()
        layout = self._layouts.get(fp)
        if layout is None:
            self._bump(sk.ENGINE_LAYOUT_MISSES)
            layout = TreeLayout(config.oram, config.dram)
            self._layouts[fp] = layout
        else:
            self._bump(sk.ENGINE_LAYOUT_HITS)
        return layout

    # -- per-leaf DRAM triple tables --------------------------------------
    def triples_for(self, config: SystemConfig) -> dict:
        """The shared ``leaf -> (triples, block_count)`` table for a config.

        Misses fall back to the on-disk copy written by earlier processes;
        a fresh (possibly pre-populated) dict is returned either way and
        grows in place as the controller touches new leaves.
        """
        fp = config.fingerprint()
        table = self._triples.get(fp)
        if table is not None:
            self._bump(sk.ENGINE_TRIPLES_HITS)
            return table
        loaded = self._disk_load("triples", f"{code_salt()}-{fp}")
        if isinstance(loaded, dict) and loaded:
            self._bump(sk.ENGINE_TRIPLES_DISK_HITS)
            table = loaded
        else:
            self._bump(sk.ENGINE_TRIPLES_MISSES)
            table = {}
        self._triples[fp] = table
        return table

    # -- workload traces ---------------------------------------------------
    def trace_for(
        self, name: str, config: SystemConfig, records: int, seed: int
    ):
        """The (deterministic) workload trace for one simulation point."""
        from ..sim.runner import make_workload
        from ..traces.trace import Trace

        key = (
            name,
            records,
            seed,
            config.oram.user_blocks,
            config.llc.lines,
        )
        trace = self._traces.get(key)
        if trace is not None:
            self._bump(sk.ENGINE_TRACE_HITS)
            return trace
        digest = hashlib.sha256(
            f"{code_salt()}:{key}".encode()
        ).hexdigest()[:24]
        loaded = self._disk_load("traces", digest)
        if (
            isinstance(loaded, tuple)
            and len(loaded) == 2
            and loaded[0] == name
        ):
            self._bump(sk.ENGINE_TRACE_DISK_HITS)
            trace = Trace(name, [tuple(rec) for rec in loaded[1]])
        else:
            self._bump(sk.ENGINE_TRACE_MISSES)
            trace = make_workload(name, config, records, seed)
            self._dirty_traces.add((key, digest))
        self._traces[key] = trace
        return trace

    # -- Z-search outcomes -------------------------------------------------
    def zsearch_get(self, digest: str) -> Optional[List[int]]:
        loaded = self._disk_load("zsearch", digest)
        if isinstance(loaded, list) and all(
            isinstance(z, int) for z in loaded
        ):
            self._bump(sk.ENGINE_ZSEARCH_HITS)
            return loaded
        self._bump(sk.ENGINE_ZSEARCH_MISSES)
        return None

    def zsearch_put(self, digest: str, z_vector: Sequence[int]) -> None:
        self._disk_store("zsearch", digest, [int(z) for z in z_vector])

    # -- controller injection ---------------------------------------------
    def attach(self, controller) -> None:
        """Inject shared artifacts into a freshly built controller.

        Only the plain :class:`~repro.oram.controller.PathORAMController`
        participates: subclasses (Rho) lay their trees out at non-zero base
        rows, so their triples must stay private.
        """
        from ..oram.controller import PathORAMController

        if type(controller) is not PathORAMController:
            return
        config = controller.config
        controller.adopt_artifacts(
            self.layout_for(config), self.triples_for(config)
        )

    # -- persistence -------------------------------------------------------
    def flush(self) -> None:
        """Persist triple tables and generated traces (merge with disk).

        Runs at process exit in every process that used the cache — in the
        parent via :mod:`atexit`, in pool workers via
        ``multiprocessing.util.Finalize`` (worker processes leave through
        ``os._exit`` and never run ``atexit`` handlers) — so the next
        *process* starts warm.  Concurrent flushes are safe: the values
        are deterministic, writes are atomic replaces, and a table is
        rewritten only when it holds more leaves than the disk copy.
        """
        if not disk_cache_enabled():
            return
        for fp, table in list(self._triples.items()):
            if not table:
                continue
            key = f"{code_salt()}-{fp}"
            existing = self._disk_load("triples", key)
            if isinstance(existing, dict) and len(existing) >= len(table):
                continue
            merged = dict(existing) if isinstance(existing, dict) else {}
            merged.update(table)
            self._disk_store("triples", key, merged)
        for key, digest in list(self._dirty_traces):
            trace = self._traces.get(key)
            if trace is None:
                continue
            self._disk_store("traces", digest, (trace.name, trace.records))
        self._dirty_traces.clear()


_CACHE: Optional[ArtifactCache] = None
_FLUSH_HOOKED_PID: Optional[int] = None


def _flush_current_cache() -> None:
    if _CACHE is not None:
        _CACHE.flush()


def _hook_flush() -> None:
    """Register the exit-time flush exactly once per process.

    The hook goes through both exit paths: :mod:`atexit` for normal
    interpreter shutdown (the parent), and
    ``multiprocessing.util.Finalize`` for pool workers — multiprocessing
    children leave through ``util._exit_function`` + ``os._exit`` and
    never run ``atexit`` handlers.  Keyed by pid, not a plain flag:
    forked workers inherit the parent's registrations, but ``Finalize``
    objects are pid-guarded and would silently skip in the child, so
    each new process registers its own.  The callback reads the
    *current* ``_CACHE``, so :func:`reset` needs no unregistration.
    """
    global _FLUSH_HOOKED_PID
    if _FLUSH_HOOKED_PID == os.getpid():
        return
    _FLUSH_HOOKED_PID = os.getpid()
    atexit.register(_flush_current_cache)
    from multiprocessing import util as mp_util

    mp_util.Finalize(None, _flush_current_cache, exitpriority=10)


def get_cache() -> ArtifactCache:
    """The process-wide artifact cache (created and exit-hooked lazily)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = ArtifactCache()
        _hook_flush()
    return _CACHE


# ----------------------------------------------------------------------
# wall-time priors (straggler-aware dispatch order)
# ----------------------------------------------------------------------
class PriorStore:
    """EWMA wall-time priors persisted as ``priors.json`` in the cache dir.

    Priors only influence dispatch *order*, never results, so a missing,
    stale, or corrupt store degrades to input-order dispatch.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path if path is not None else os.path.join(
            cache_root(), "priors.json"
        )
        self.data: Dict[str, Dict[str, float]] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            if isinstance(raw, dict):
                self.data = {
                    str(ns): {
                        str(k): float(v) for k, v in entries.items()
                    }
                    for ns, entries in raw.items()
                    if isinstance(entries, dict)
                }
        except FileNotFoundError:
            pass
        except Exception:
            # Corrupt priors only cost dispatch-order quality, but a torn
            # file left in place would fail on every load: quarantine it
            # and count the event like any other cache corruption.
            _quarantine(self.path)
            _bump_local(sk.ENGINE_CACHE_CORRUPT)
            self.data = {}

    def predict(self, namespace: str, key: str) -> Optional[float]:
        return self.data.get(namespace, {}).get(key)

    def observe(self, namespace: str, key: str, value: float) -> None:
        entries = self.data.setdefault(namespace, {})
        old = entries.get(key)
        entries[key] = (
            value
            if old is None
            else PRIOR_ALPHA * value + (1.0 - PRIOR_ALPHA) * old
        )

    def save(self) -> None:
        if not disk_cache_enabled():
            return
        tmp = f"{self.path}.{os.getpid()}.tmp"
        try:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self.data, handle, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- simulation-point helpers -----------------------------------------
    def point_cost(self, scheme: str, workload: str, records: int) -> float:
        """Expected wall seconds of one simulation point.

        Falls back to the mean per-record rate across all known points —
        and, with an empty store, to the record count itself, which still
        ranks bigger points first.
        """
        per_record = self.predict("points", f"{scheme}/{workload}")
        if per_record is None:
            known = self.data.get("points", {})
            per_record = (
                sum(known.values()) / len(known) if known else 1.0
            )
        return records * per_record

    def observe_point(
        self, scheme: str, workload: str, records: int, wall_s: float
    ) -> None:
        self.observe(
            "points", f"{scheme}/{workload}", wall_s / max(records, 1)
        )


_PRIORS: Optional[PriorStore] = None


def get_priors() -> PriorStore:
    global _PRIORS
    if _PRIORS is None:
        _PRIORS = PriorStore()
    return _PRIORS


# ----------------------------------------------------------------------
# the warm pool
# ----------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_ENV: Dict[str, str] = {}
_COUNTERS: Dict[str, int] = {}


def _bump_local(key: str, amount: int = 1) -> None:
    _COUNTERS[key] = _COUNTERS.get(key, 0) + amount


def engine_counters() -> Dict[str, int]:
    """Pool-lifecycle counters of this process (starts, reuses, tasks)."""
    return dict(_COUNTERS)


def _worker_init() -> None:
    """Warm a pool worker: import the heavy modules once, hook the flush."""
    import repro.core.schemes  # noqa: F401  (imports the scheme zoo)
    import repro.sim.simulator  # noqa: F401
    import repro.traces.benchmarks  # noqa: F401
    import repro.validate  # noqa: F401  (auditor, for REPRO_AUDIT runs)

    get_cache()  # registers the atexit flush for this worker


def _repro_env() -> Dict[str, str]:
    return {
        key: value
        for key, value in os.environ.items()
        if key.startswith("REPRO_")
    }


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent executor, grown or recycled as needed.

    The pool is recreated when more workers are requested than exist, when
    a worker died (broken pool), or when the ``REPRO_*`` environment
    changed — forked workers snapshot the environment at creation, so a
    stale pool would otherwise run with outdated knobs.
    """
    global _POOL, _POOL_WORKERS, _POOL_ENV
    env = _repro_env()
    if _POOL is not None:
        broken = getattr(_POOL, "_broken", False)
        if broken or _POOL_WORKERS < workers or _POOL_ENV != env:
            _POOL.shutdown(wait=True)
            _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        )
        _POOL_WORKERS = workers
        _POOL_ENV = env
        _bump_local(sk.ENGINE_POOL_STARTS)
    else:
        _bump_local(sk.ENGINE_POOL_REUSES)
    return _POOL


def shutdown() -> None:
    """Shut the warm pool down (atexit, and explicitly from tests)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None


atexit.register(shutdown)


def reset() -> None:
    """Forget all process-wide engine state (pool, caches, priors).

    Test hook: combined with ``REPRO_CACHE_DIR`` this yields a fully
    isolated engine per test.
    """
    global _CACHE, _PRIORS
    shutdown()
    _CACHE = None
    _PRIORS = None
    _COUNTERS.clear()


# ----------------------------------------------------------------------
# scheduling + supervision
# ----------------------------------------------------------------------
#: optional observer of supervision events; called as ``hook(kind, **data)``
#: with the ``engine.*`` kinds from :mod:`repro.obs.events`.  Process-wide
#: (the engine itself is process-wide state); tests and the chaos harness
#: install one to assert recovery behaviour.
_EVENT_HOOK: Optional[Callable[..., None]] = None


def set_event_hook(hook: Optional[Callable[..., None]]) -> None:
    """Install (or clear, with ``None``) the supervision event observer."""
    global _EVENT_HOOK
    _EVENT_HOOK = hook


def _emit(kind: str, **data: Any) -> None:
    if _EVENT_HOOK is not None:
        _EVENT_HOOK(kind, **data)


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "") or default)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly hung) pool down without waiting on its workers."""
    global _POOL
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    if _POOL is pool:
        _POOL = None


@dataclass
class _TaskState:
    """Supervision bookkeeping for one in-flight item."""

    index: int
    attempt: int  # 0 on the first dispatch
    deadline: Optional[float]  # monotonic seconds, None = unbounded


class _Supervisor:
    """Drives one ``engine_map`` call through crashes, hangs, and respawns.

    Recovery never changes *what* is computed — workers are pure functions
    of their item, so a re-dispatched task returns bit-identical results —
    only *where* it runs.  The escalation ladder:

    1. a task raising an exception is retried with exponential backoff,
       up to ``REPRO_TASK_RETRIES`` times, then surfaces as
       :class:`~repro.errors.EngineFaultError`;
    2. a crashed worker breaks the pool; the pool is respawned and every
       in-flight task re-dispatched (the crash victim charged a retry);
    3. a task exceeding its deadline (``REPRO_TASK_TIMEOUT`` override, or
       ``max(floor, factor × EWMA prior)`` when a cost estimator exists)
       gets the pool killed and is charged a retry like a crash;
    4. after ``REPRO_MAX_RESPAWNS`` pool failures in one call, the engine
       degrades: every unfinished item runs serially in-process.
    """

    def __init__(
        self,
        worker: Callable[[T], R],
        items: List[T],
        jobs: int,
        costs: Optional[List[float]],
        order: List[int],
    ) -> None:
        self.worker = worker
        self.items = items
        self.jobs = jobs
        self.costs = costs
        self.results: Dict[int, R] = {}
        self.pending: List[int] = list(order)  # dispatch order, front first
        self.attempts: Dict[int, int] = {}
        self.inflight: Dict[Any, _TaskState] = {}
        self.pool_failures = 0
        self.retry_budget = _env_int("REPRO_TASK_RETRIES", 2)
        self.max_respawns = _env_int("REPRO_MAX_RESPAWNS", 3)
        self.timeout_override = _env_float("REPRO_TASK_TIMEOUT", 0.0)
        self.timeout_floor = _env_float("REPRO_TASK_TIMEOUT_FLOOR", 30.0)
        self.timeout_factor = _env_float("REPRO_TASK_TIMEOUT_FACTOR", 20.0)

    # -- policy -------------------------------------------------------------
    def _deadline_for(self, index: int) -> Optional[float]:
        if self.timeout_override > 0:
            seconds = self.timeout_override
        elif self.costs is not None:
            seconds = max(
                self.timeout_floor, self.timeout_factor * self.costs[index]
            )
        else:
            return None  # no estimate, no override: don't guess a ceiling
        return time.monotonic() + seconds

    def _charge_retry(self, index: int, cause: str) -> None:
        attempt = self.attempts.get(index, 0) + 1
        self.attempts[index] = attempt
        if attempt > self.retry_budget:
            raise EngineFaultError(
                f"task {index} failed {attempt} times (last cause: {cause}); "
                f"retry budget REPRO_TASK_RETRIES={self.retry_budget} "
                "exhausted"
            )
        _bump_local(sk.ENGINE_RETRIES)
        _emit(ev.ENGINE_RETRY, index=index, attempt=attempt, cause=cause)
        # Exponential backoff: transient faults (OOM-killed sibling, disk
        # pressure) get breathing room; capped so hard failures fail fast.
        time.sleep(min(0.05 * (2 ** (attempt - 1)), 1.0))

    # -- dispatch -----------------------------------------------------------
    def _submit(self, pool: ProcessPoolExecutor, index: int) -> None:
        try:
            future = pool.submit(self.worker, self.items[index])
        except BrokenExecutor:
            # The pool died between refills; put the item back so the
            # respawn path re-dispatches it instead of dropping it.
            self.pending.insert(0, index)
            raise
        self.inflight[future] = _TaskState(
            index=index,
            attempt=self.attempts.get(index, 0),
            deadline=self._deadline_for(index),
        )
        if self.attempts.get(index, 0) == 0:
            _bump_local(sk.ENGINE_TASKS)

    def _refill(self, pool: ProcessPoolExecutor) -> None:
        while self.pending and len(self.inflight) < self.jobs:
            self._submit(pool, self.pending.pop(0))

    def _respawn(self, pool: ProcessPoolExecutor, cause: str) -> None:
        """Kill the pool and push every in-flight task back to pending."""
        displaced = sorted(state.index for state in self.inflight.values())
        self.inflight.clear()
        _kill_pool(pool)
        self.pool_failures += 1
        _bump_local(sk.ENGINE_RESPAWNS)
        _emit(ev.ENGINE_RESPAWN, cause=cause, inflight=len(displaced))
        # Re-dispatch in front of untouched work: these items were already
        # charged wall time, and finishing them first keeps tail latency low.
        self.pending[:0] = [
            index for index in displaced if index not in self.results
        ]

    def _degraded(self) -> List[R]:
        _bump_local(sk.ENGINE_DEGRADED)
        _emit(ev.ENGINE_DEGRADED, remaining=len(self.items) - len(self.results))
        for index in range(len(self.items)):
            if index not in self.results:
                self.results[index] = self.worker(self.items[index])
        return [self.results[index] for index in range(len(self.items))]

    # -- the loop -----------------------------------------------------------
    def run(self) -> List[R]:
        while len(self.results) < len(self.items):
            if self.pool_failures > self.max_respawns:
                return self._degraded()
            pool = get_pool(self.jobs)
            try:
                self._refill(pool)
                self._step(pool)
            except BrokenExecutor:
                self._respawn(pool, cause="broken_pool")
        return [self.results[index] for index in range(len(self.items))]

    def _step(self, pool: ProcessPoolExecutor) -> None:
        """One wait + harvest round; raises BrokenExecutor on pool death."""
        if not self.inflight:
            return
        now = time.monotonic()
        deadlines = [
            state.deadline
            for state in self.inflight.values()
            if state.deadline is not None
        ]
        timeout = max(0.0, min(deadlines) - now) if deadlines else None
        done, _ = wait(
            set(self.inflight), timeout=timeout, return_when=FIRST_COMPLETED
        )
        broken = False
        for future in done:
            state = self.inflight.pop(future)
            try:
                self.results[state.index] = future.result()
            except BrokenExecutor:
                # The whole pool died; the remaining in-flight futures are
                # doomed too.  Charge the victims and respawn once.
                self._charge_retry(state.index, cause="worker_crash")
                self.pending.insert(0, state.index)
                broken = True
            except Exception as exc:
                self._charge_retry(
                    state.index, cause=f"{type(exc).__name__}: {exc}"
                )
                self.pending.insert(0, state.index)
        if broken:
            raise BrokenProcessPool("worker crashed mid-task")
        self._expire(pool)

    def _expire(self, pool: ProcessPoolExecutor) -> None:
        """Charge tasks past their deadline and kill the pool under them."""
        now = time.monotonic()
        expired = [
            (future, state)
            for future, state in self.inflight.items()
            if state.deadline is not None and now >= state.deadline
        ]
        if not expired:
            return
        for future, state in expired:
            if future.done():
                continue  # finished in the window between wait() and here
            _bump_local(sk.ENGINE_TIMEOUTS)
            _emit(
                ev.ENGINE_TIMEOUT,
                index=state.index,
                deadline_s=round(state.deadline - now, 3),
            )
            self._charge_retry(state.index, cause="timeout")
        # A hung worker can't be cancelled individually — concurrent.futures
        # offers no per-task kill — so the whole pool goes.
        raise BrokenProcessPool("task exceeded its deadline")


def engine_map(
    worker: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    cost: Optional[Callable[[T], float]] = None,
) -> List[R]:
    """Map a picklable worker over items through the supervised warm pool.

    Items are submitted individually — longest-expected-first when a
    ``cost`` estimator is given (stable for ties, so input order is the
    tiebreak) — with at most ``jobs`` in flight, so a straggler never
    strands pre-chunked work on an idle worker.  Results return in input
    order.  With ``jobs <= 1`` (or one item) this is a plain in-process
    loop.

    Worker crashes, hangs, and broken pools are handled by
    :class:`_Supervisor`: tasks are retried (bounded by
    ``REPRO_TASK_RETRIES``), the pool respawned (bounded by
    ``REPRO_MAX_RESPAWNS``), and as a last resort the remaining items run
    serially in-process — in every case returning exactly what the serial
    loop would have returned.  Recovery activity surfaces through the
    ``engine.retries`` / ``engine.respawns`` / ``engine.timeouts`` /
    ``engine.degraded`` counters and the :func:`set_event_hook` observer.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    jobs = min(jobs, len(items))
    order = list(range(len(items)))
    costs: Optional[List[float]] = None
    if cost is not None:
        costs = [float(cost(item)) for item in items]
        order.sort(key=lambda index: -costs[index])
    return _Supervisor(worker, items, jobs, costs, order).run()


# ----------------------------------------------------------------------
# simulation-point execution (warm workers)
# ----------------------------------------------------------------------
def run_point_warm(point: SimPoint) -> PointResult:
    """Run one point with artifact injection; executed inside workers."""
    from .. import api

    spec = api.RunSpec(
        scheme=point.scheme,
        workload=point.workload,
        records=point.records,
        seed=point.seed,
        config=point.config,
        obs=api.ObsOptions(trace_out=point.trace_out),
    )
    out = api.run(spec, artifacts=get_cache())
    engine_counts = {
        key: int(value)
        for key, value in out.stats.counters.items()
        if key.startswith("engine.")
    }
    return PointResult(point, out.result, out.wall_s, engine_counts)


def run_spec_warm(spec) -> Any:
    """Run one :class:`repro.api.RunSpec` with artifact injection."""
    from .. import api

    return api.run(spec, artifacts=get_cache())


def spec_cost(spec) -> float:
    return get_priors().point_cost(spec.scheme, spec.workload, spec.records)


def run_points(
    points: Sequence[SimPoint], jobs: int = 1
) -> Tuple[List[PointResult], float]:
    """Run simulation points through the engine; results in input order.

    Bit-identical to a serial ``api.run`` loop for every ``jobs`` value
    (each point carries its own seed and the injected artifacts are pure
    functions of the config).  Observed wall times update the priors store
    so the *next* sweep dispatches its stragglers first.
    """
    start = time.perf_counter()
    points = list(points)
    priors = get_priors()
    results = engine_map(
        run_point_warm,
        points,
        jobs=jobs,
        cost=lambda p: priors.point_cost(p.scheme, p.workload, p.records),
    )
    for item in results:
        priors.observe_point(
            item.point.scheme,
            item.point.workload,
            item.point.records,
            item.wall_s,
        )
    priors.save()
    return results, time.perf_counter() - start


def aggregate_engine_counters(
    results: Sequence[PointResult],
) -> Dict[str, int]:
    """Sum the per-point ``engine.*`` counter deltas (across workers)."""
    totals: Dict[str, int] = {}
    for item in results:
        for key, value in item.engine_counters.items():
            totals[key] = totals.get(key, 0) + value
    for key, value in engine_counters().items():
        totals[key] = totals.get(key, 0) + value
    return totals


# ----------------------------------------------------------------------
# memoized Z-search (IR-Alloc greedy search, Section IV-B)
# ----------------------------------------------------------------------
def memoized_evaluator(evaluate: Callable) -> Callable:
    """Memoize a Z-search evaluation callback by candidate Z vector.

    The greedy search re-visits overlapping candidates across iterations;
    the evaluator is deterministic per vector, so memoization is free
    speedup with identical outcomes.
    """
    memo: Dict[Tuple[int, ...], Dict[str, float]] = {}

    def wrapped(oram: ORAMConfig) -> Dict[str, float]:
        key = tuple(oram.z_per_level)
        hit = memo.get(key)
        if hit is None:
            hit = memo[key] = evaluate(oram)
        return hit

    return wrapped


def zsearch_digest(
    config: SystemConfig,
    records: int,
    seed: int,
    max_space_reduction: float,
    max_eviction_increase: float,
    min_z: int,
) -> str:
    payload = (
        f"{code_salt()}:{config.fingerprint()}:{records}:{seed}:"
        f"{max_space_reduction}:{max_eviction_increase}:{min_z}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def cached_z_allocation(
    config: SystemConfig,
    records: int = 1200,
    seed: int = 99,
    max_space_reduction: float = 0.03,
    max_eviction_increase: float = 0.15,
    min_z: int = 1,
) -> ORAMConfig:
    """The greedy Z-search outcome for a geometry, disk-memoized.

    The search itself is expensive (dozens of random-trace simulations);
    its outcome is a pure function of the inputs hashed by
    :func:`zsearch_digest`, so re-runs of ``repro zsearch`` and the
    Z-search experiment skip straight to the stored allocation.
    """
    from ..core.ir_alloc import find_z_allocation
    from ..sim.runner import random_trace_evaluator

    cache = get_cache()
    digest = zsearch_digest(
        config, records, seed, max_space_reduction,
        max_eviction_increase, min_z,
    )
    vector = cache.zsearch_get(digest)
    if vector is not None and len(vector) == config.oram.levels:
        return config.oram.with_z_vector(vector)
    evaluate = memoized_evaluator(
        random_trace_evaluator(config, records=records, seed=seed)
    )
    best = find_z_allocation(
        config.oram,
        evaluate,
        max_space_reduction=max_space_reduction,
        max_eviction_increase=max_eviction_increase,
        min_z=min_z,
    )
    cache.zsearch_put(digest, best.z_per_level)
    return best
