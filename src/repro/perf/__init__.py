"""Performance engine: C hot-path kernels and parallel experiment fan-out.

* :mod:`repro.perf.native` — optional C kernels for the simulator's
  innermost loops, compiled on demand with a pure-Python fallback.
* :mod:`repro.perf.parallel` — ``ProcessPoolExecutor`` fan-out over
  independent (scheme, workload, seed) simulation points.
* :mod:`repro.perf.bench` — the ``python -m repro bench`` suite, emitting
  machine-readable ``BENCH_*.json`` snapshots for regression tracking.
"""

from .native import available as native_available  # noqa: F401
