"""On-demand build and load of the optional C hot-path kernels.

The simulator's innermost loops (batch DRAM timing, path read-and-clear)
have bit-identical C implementations in ``_fastpath.c``.  This module
compiles them with the system C compiler on first use, caches the shared
object under ``~/.cache/repro-fastpath/`` keyed by source hash and Python
ABI, and exposes the loaded module as :data:`fastpath`.

Everything degrades gracefully: no compiler, a failed build, a failed
self-test, or ``REPRO_FASTPATH=0`` in the environment all yield
``fastpath = None`` and the simulator runs on its pure-Python fallbacks.
No third-party packages are involved — only the system toolchain.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import struct
import subprocess
import sys
import sysconfig
from typing import Optional

_MODULE_NAME = "_repro_fastpath"
_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_fastpath.c")


def _cache_dir() -> str:
    override = os.environ.get("REPRO_FASTPATH_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-fastpath")


def _self_test(module) -> bool:
    """Run the kernels on tiny inputs with known-good answers."""
    # One bank, one channel, two accesses to the same fresh row:
    # activate (t_rcd=3) + 2 bursts of 2, finish = 3 + 2 + 5 = 10 with
    # cas_burst=5; second access is a row hit issuing at t=5, done at 10.
    ready = [0]
    open_row = [-1]
    bus_free = [0]
    finish, hits, conflicts = module.dram_service(
        [0, 0, 7, 0, 0, 7], ready, open_row, bus_free, 0, 4, 3, 2, 5
    )
    if (finish, hits, conflicts) != (10, 1, 0):
        return False
    if ready != [7] or open_row != [7] or bus_free != [7]:
        return False

    slots = [3, -1, 9]
    level_used = [0, 2]
    removed = module.read_and_clear([(1, slots)], level_used, -1)
    if not (
        removed == [(3, 1), (9, 1)]
        and slots == [-1, -1, -1]
        and level_used == [0, 0]
    ):
        return False

    # Stash bulk add: two fresh blocks, leaves 6 and 3, prefix shift 2;
    # block 5 was read from level 0 (< top=1).
    entries: dict = {}
    seq: dict = {}
    by_prefix: dict = {}
    leaf_table = [0] * 10
    leaf_table[5] = 6
    leaf_table[9] = 3
    next_seq, top_blocks = module.stash_bulk_add(
        [(5, 0), (9, 1)], entries, seq, by_prefix, 2, 0, leaf_table, 1
    )
    if not (
        (next_seq, top_blocks) == (2, [5])
        and entries == {5: 6, 9: 3}
        and seq == {5: 0, 9: 1}
        and by_prefix == {1: {0: 5}, 0: {1: 9}}
    ):
        return False

    # Pool grouping alone: same two blocks against target leaf 1 in a
    # 3-level tree (prefix covers the whole 2-bit leaf).
    pools = [[7], [], []]
    module.path_pools_fill(1, {5: 1, 9: 3}, {1: {0: 5}, 3: {1: 9}},
                           0, 2, 3, pools)
    if pools != [[9], [], [5]]:
        return False

    # Write-phase placement: 3 levels, z=1 everywhere, target leaf 1.
    # Block 5 (leaf 1) belongs at the bottom, block 9 (leaf 3) diverges
    # at the root; both place and leave the stash empty.
    entries = {5: 1, 9: 3}
    seq = {5: 0, 9: 1}
    by_prefix = {1: {0: 5}, 3: {1: 9}}
    path_slots = [(0, [-1]), (1, [-1]), (2, [-1])]
    level_used = [0, 0, 0]
    placed_top = module.write_path_place(
        1, entries, seq, by_prefix, 0, 2, path_slots, [1, 1, 1],
        level_used, 3, 0, -1
    )
    if not (
        placed_top == 0
        and entries == {}
        and seq == {}
        and by_prefix == {}
        and path_slots == [(0, [9]), (1, [-1]), (2, [5])]
        and level_used == [1, 0, 1]
    ):
        return False

    # Fused path->triples: one level, Z=2, offset 5 in a 4-block row at
    # row base 3 -> both slots land in row 4 of channel 0, bank 0.
    meta = [(0, 2, 0, 0, [5], 3, 1)]
    triples = module.path_triples(0, meta, 4, 2, 2)
    if triples != [0, 0, 4, 0, 0, 4]:
        return False

    # Whole-path batch: 2 leaves, 2 levels, block 3 sits at the root of
    # leaf 1's path mapped to leaf 0 -> read at t=0 finishes at 10
    # (activate 3 + two row-hit bursts), write finishes at 17, and the
    # block is placed back at the root (diverges from its leaf at level
    # 1), leaving the stash empty again.
    entries = {}
    seq = {}
    by_prefix = {}
    leaf_table = [-1, -1, -1, 0]
    level_used = [1, 0]
    ready = [0]
    open_row = [-1]
    bus_free = [0]
    slots0 = [3]
    batch_ctx = (
        (lambda n: 1),                     # randrange
        2,                                 # leaves
        {1: ([0, 0, 7, 0, 0, 7], 2)},      # triples cache
        (lambda leaf: None),               # triples fallback (unused)
        {1: [(0, slots0), (1, [-1])]},     # path-slots cache
        (lambda leaf: None),               # slots fallback (unused)
        entries, seq, by_prefix,
        0,                                 # prefix shift
        1,                                 # prefix levels
        leaf_table,
        [1, 1],                            # z per level
        level_used,
        2,                                 # levels
        0,                                 # top (no tree-top cache)
        -1,                                # empty marker
        ready, open_row, bus_free,
        (1, 4, 3, 2, 5),                   # ratio, t_rp, t_rcd, t_burst, cas+burst
        0,                                 # treetop mode: counter cache
        None, None, None, 0,               # S-Stash slots unused
        {},                                # packed triple arrays
        None, 0,                           # getrandbits leg disabled
    )
    result = module.run_batch(batch_ctx, 0, 0, 0, 1, -1, -1, 10, 1, 0)
    if result != (1, 17, 1, 1, [0, 10, 17],
                  (2, 3, 0, 0, 0, 0, 0, 0, 0), None):
        return False
    packed = batch_ctx[26].get(1)
    if packed != struct.pack("=7q", 2, 0, 0, 7, 0, 0, 7):
        return False
    if module.pack_triples(([0, 0, 7, 0, 0, 7], 2), 1, 1) != packed:
        return False
    return (
        entries == {}
        and seq == {}
        and by_prefix == {}
        and slots0 == [3]
        and level_used == [1, 0]
        and ready == [14]
        and open_row == [7]
        and bus_free == [14]
    )


def _build(so_path: str) -> bool:
    cc = (
        os.environ.get("CC")
        or sysconfig.get_config_var("CC")
        or "cc"
    ).split()
    include = sysconfig.get_paths()["include"]
    tmp_path = f"{so_path}.{os.getpid()}.tmp"
    cmd = cc + [
        "-O2",
        "-shared",
        "-fPIC",
        f"-I{include}",
        _SOURCE,
        "-o",
        tmp_path,
    ]
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
        )
    except (OSError, subprocess.SubprocessError):
        return False
    if proc.returncode != 0 or not os.path.exists(tmp_path):
        return False
    os.replace(tmp_path, so_path)
    return True


def _load() -> Optional[object]:
    if os.environ.get("REPRO_FASTPATH", "1") == "0":
        return None
    try:
        with open(_SOURCE, "rb") as handle:
            source = handle.read()
        tag = hashlib.sha256(
            source + sys.implementation.cache_tag.encode()
        ).hexdigest()[:16]
        cache = _cache_dir()
        os.makedirs(cache, exist_ok=True)
        so_path = os.path.join(cache, f"{_MODULE_NAME}-{tag}.so")
        if not os.path.exists(so_path) and not _build(so_path):
            return None
        loader = importlib.machinery.ExtensionFileLoader(_MODULE_NAME, so_path)
        spec = importlib.util.spec_from_loader(
            _MODULE_NAME, loader, origin=so_path
        )
        if spec is None:
            return None
        module = importlib.util.module_from_spec(spec)
        loader.exec_module(module)
        if not _self_test(module):
            return None
        return module
    except Exception:
        return None


#: the loaded C kernel module, or None when unavailable
fastpath = _load()


def available() -> bool:
    """Whether the C kernels are active in this process."""
    return fastpath is not None
