"""The ``python -m repro bench`` performance suite.

Two sections, both deterministic for a fixed seed:

* **suite** — full-system simulations (scheme × workload grid) through
  :func:`repro.perf.parallel.fanout`, timed per point and end to end;
* **kernel** — a tight ``dummy_path`` loop per scheme, measuring the
  hot-path layer alone (read phase + stash + write phase + DRAM model)
  in paths per second, with no trace/LLC machinery around it.

Reports are machine-readable JSON (``BENCH_PR1.json`` at the repo root is
the committed reference).  ``--check`` compares the *normalized*
throughputs (paths per second, which are records-count independent) of a
fresh run against a reference report and fails on regressions beyond
``--max-regression`` — this is what CI runs with ``--smoke``.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from .engine import aggregate_engine_counters, run_points
from .native import available as native_available
from .parallel import SimPoint

#: rows kept per phase by ``--profile`` (sorted by cumulative time)
PROFILE_TOP_N = 12

#: tree levels for every bench configuration (kept modest so the suite
#: finishes in seconds while still exercising the real protocol depth)
BENCH_LEVELS = 13

FULL_SCHEMES = ["Baseline", "IR-Alloc", "IR-Stash", "IR-DWB", "IR-ORAM", "LLC-D"]
FULL_WORKLOADS = ["mix", "random", "gcc"]
FULL_RECORDS = 2500

SMOKE_SCHEMES = ["Baseline", "IR-Stash", "IR-ORAM"]
SMOKE_WORKLOADS = ["mix"]
SMOKE_RECORDS = 800

KERNEL_SCHEMES = ["Baseline", "IR-Alloc", "IR-Stash", "IR-ORAM"]
FULL_KERNEL_PATHS = 18000
SMOKE_KERNEL_PATHS = 1500

#: paths per native run_batch call in the kernel loop
KERNEL_BATCH_SLOTS = 512

BENCH_SEED = 7


def _kernel_worker(
    spec: Tuple[str, int, int, int], profile: bool = False
) -> Dict[str, object]:
    """One kernel measurement: a batched dummy-path loop on a fresh scheme.

    Drains paths through :meth:`PathORAMController.run_dummy_batch` in
    chunks — the native whole-batch kernel when available, the bit-
    identical per-path loop otherwise — so the measured cycles are the
    same either way and double as a cross-machine determinism gate.
    ``cycles_smoke`` snapshots the clock after ``SMOKE_KERNEL_PATHS``
    paths, a point every kernel run passes, so smoke and full reports
    stay cycle-comparable to each other.
    """
    from ..core.schemes import build_scheme

    scheme, levels, paths, seed = spec
    config = SystemConfig.scaled(levels=levels)
    controller = build_scheme(
        scheme, config, rng=random.Random(seed)
    ).controller
    # Warm the pure address-geometry caches (path slots, DRAM triples)
    # outside the timed region: they never affect simulated cycles, and
    # cold misses otherwise dominate the first few thousand paths.
    warm = getattr(controller, "warm_path_caches", None)
    if warm is not None:
        warm()
    now = 0
    done = 0
    cycles_smoke = 0
    start = time.perf_counter()
    while done < paths:
        target = paths
        if done < SMOKE_KERNEL_PATHS <= paths:
            target = SMOKE_KERNEL_PATHS
        chunk = min(KERNEL_BATCH_SLOTS, target - done)
        issued, now, _ = controller.run_dummy_batch(
            now, chunk, collect_timing=profile
        )
        if issued != chunk:
            raise RuntimeError(
                f"kernel batch stopped early: {issued}/{chunk} paths"
            )
        done += issued
        if done == SMOKE_KERNEL_PATHS:
            cycles_smoke = now
    wall = time.perf_counter() - start
    return {
        "scheme": scheme,
        "paths": paths,
        "cycles": now,
        "cycles_smoke": cycles_smoke,
        "wall_s": round(wall, 4),
        "paths_per_s": round(paths / wall, 1),
        "batch": dict(controller.batch_counters),
    }


def _profile_rows(profile: cProfile.Profile) -> List[Dict[str, object]]:
    """Top-N rows of a finished profile, sorted by cumulative time."""
    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    rows: List[Dict[str, object]] = []
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: -item[1][3],  # cumulative time
    )
    for (filename, line, name), data in entries[:PROFILE_TOP_N]:
        calls, _, tottime, cumtime, _ = data
        rows.append(
            {
                "func": f"{os.path.basename(filename)}:{line}({name})",
                "calls": int(calls),
                "tottime": round(tottime, 4),
                "cumtime": round(cumtime, 4),
            }
        )
    return rows


def run_bench(
    smoke: bool = False,
    jobs: int = 1,
    seed: int = BENCH_SEED,
    trace_out: Optional[str] = None,
    profile: bool = False,
) -> Dict[str, object]:
    """Run the suite and return the JSON-ready report.

    ``trace_out`` names a directory; each suite point then streams its
    event trace to ``<trace_out>/<scheme>_<workload>.jsonl`` (one file per
    point, so parallel workers never share a handle).  Tracing does not
    change simulation results, but it does cost wall time — traced bench
    numbers are not comparable to untraced references.

    ``profile`` wraps each phase in :mod:`cProfile` and attaches the
    top-N hotspots per phase to the report.  Profiling forces the suite
    serial (``jobs=1``) — child processes cannot be profiled from here —
    and costs wall time, so profiled numbers are not comparable either.
    """
    schemes = SMOKE_SCHEMES if smoke else FULL_SCHEMES
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    records = SMOKE_RECORDS if smoke else FULL_RECORDS
    kernel_paths = SMOKE_KERNEL_PATHS if smoke else FULL_KERNEL_PATHS
    if profile:
        jobs = 1

    if trace_out is not None:
        os.makedirs(trace_out, exist_ok=True)

    def point_trace(scheme: str, workload: str) -> Optional[str]:
        if trace_out is None:
            return None
        return os.path.join(trace_out, f"{scheme}_{workload}.jsonl")

    config = SystemConfig.scaled(levels=BENCH_LEVELS)
    points = [
        SimPoint(
            scheme,
            workload,
            records=records,
            seed=seed,
            config=config,
            trace_out=point_trace(scheme, workload),
        )
        for scheme in schemes
        for workload in workloads
    ]
    suite_profile = cProfile.Profile() if profile else None
    if suite_profile is not None:
        suite_profile.enable()
    results, suite_wall = run_points(points, jobs=jobs)
    if suite_profile is not None:
        suite_profile.disable()

    point_rows = []
    total_paths = 0.0
    for item in results:
        paths = item.result.total_paths()
        total_paths += paths
        point_rows.append(
            {
                "scheme": item.point.scheme,
                "workload": item.point.workload,
                "records": item.point.records,
                "seed": item.point.seed,
                "cycles": item.result.cycles,
                "paths": int(paths),
                "wall_s": round(item.wall_s, 4),
                "paths_per_s": round(paths / max(item.wall_s, 1e-9), 1),
            }
        )

    # The kernel section measures single-core throughput, so it always
    # runs serially — parallel kernel runs would contend with each other
    # and report degraded, machine-load-dependent numbers.
    kernel_profile = cProfile.Profile() if profile else None
    if kernel_profile is not None:
        kernel_profile.enable()
    kernel_rows = [
        _kernel_worker(
            (scheme, BENCH_LEVELS, kernel_paths, seed), profile=profile
        )
        for scheme in KERNEL_SCHEMES
    ]
    if kernel_profile is not None:
        kernel_profile.disable()

    report_extra = {} if trace_out is None else {"trace_out": trace_out}
    report = {
        "suite": "smoke" if smoke else "full",
        "levels": BENCH_LEVELS,
        "seed": seed,
        "jobs": jobs,
        **report_extra,
        "native_kernels": native_available(),
        "suite_wall_s": round(suite_wall, 4),
        "suite_paths_per_s": round(total_paths / max(suite_wall, 1e-9), 1),
        "engine": {
            key.split(".", 1)[1]: value
            for key, value in sorted(
                aggregate_engine_counters(results).items()
            )
        },
        "points": point_rows,
        "kernel": kernel_rows,
    }
    if suite_profile is not None and kernel_profile is not None:
        report["profile"] = {
            "suite": _profile_rows(suite_profile),
            "kernel": _profile_rows(kernel_profile),
        }
        batch_rows = _batch_profile_rows(kernel_rows)
        if batch_rows:
            # Only present when the native batch kernel ran: its
            # engine.batch.*_ns clocks attribute the opaque C frame.
            report["profile"]["batch"] = batch_rows
    return report


def _batch_profile_rows(
    kernel_rows: Sequence[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Per-phase time spent *inside* the native batch kernel.

    cProfile sees one opaque C frame per ``run_batch`` call; the kernel's
    own ``engine.batch.*_ns`` clocks attribute that time to the protocol
    phases instead.
    """
    totals: Dict[str, int] = {}
    for row in kernel_rows:
        for key, value in (row.get("batch") or {}).items():
            if key.endswith("_ns"):
                totals[key] = totals.get(key, 0) + int(value)
    return [
        {
            "phase": key.rsplit(".", 1)[1][: -len("_ns")],
            "ms": round(value / 1e6, 3),
        }
        for key, value in sorted(totals.items(), key=lambda kv: -kv[1])
    ]


def check_report(
    current: Dict[str, object],
    reference: Dict[str, object],
    max_regression: float = 2.0,
) -> List[str]:
    """Regression check: normalized throughput vs a reference report.

    Compares paths-per-second figures (independent of how many records or
    paths each suite ran), so a ``--smoke`` run can be checked against a
    committed full-bench reference.  Returns failure descriptions; empty
    means the check passed.
    """
    failures: List[str] = []
    floor = 1.0 / max_regression

    # Suite aggregate throughput is only meaningful against a reference
    # of the same kind: a smoke suite is startup-dominated, so checking
    # it against a full-bench reference measures process warmup, not the
    # simulator.  Cross-kind checks rely on the kernel rows instead.
    same_kind = current.get("suite") == reference.get("suite")
    ref_suite = float(reference.get("suite_paths_per_s", 0.0))
    cur_suite = float(current.get("suite_paths_per_s", 0.0))
    if same_kind and ref_suite > 0 and cur_suite < ref_suite * floor:
        failures.append(
            f"suite throughput {cur_suite:.0f} paths/s is more than "
            f"{max_regression:.1f}x below reference {ref_suite:.0f}"
        )

    ref_rows = {
        row["scheme"]: row for row in reference.get("kernel", [])
    }
    comparable = (
        current.get("seed") == reference.get("seed")
        and current.get("levels") == reference.get("levels")
    )
    for row in current.get("kernel", []):
        scheme = row["scheme"]
        ref_row = ref_rows.get(scheme)
        if ref_row is None:
            continue
        ref = float(ref_row["paths_per_s"])
        if ref and float(row["paths_per_s"]) < ref * floor:
            failures.append(
                f"kernel {scheme}: {row['paths_per_s']:.0f} paths/s is more "
                f"than {max_regression:.1f}x below reference {ref:.0f}"
            )
        if not comparable:
            continue
        # Cycle counts are simulated, not measured: for the same seed and
        # geometry they are machine-independent, so any comparable figure
        # must match the reference *exactly* (the determinism gate).
        for key in ("cycles_smoke", "cycles"):
            if key == "cycles" and row.get("paths") != ref_row.get("paths"):
                continue
            cur_val = row.get(key)
            ref_val = ref_row.get(key)
            if cur_val is not None and ref_val is not None \
                    and cur_val != ref_val:
                failures.append(
                    f"kernel {scheme}: {key}={cur_val} differs from "
                    f"reference {ref_val} (determinism violation)"
                )
    return failures


def format_report(report: Dict[str, object]) -> str:
    lines = [
        f"bench suite={report['suite']} levels={report['levels']} "
        f"jobs={report['jobs']} native={report['native_kernels']}",
        f"suite wall {report['suite_wall_s']:.2f}s  "
        f"({report['suite_paths_per_s']:.0f} paths/s aggregate)",
        "",
        f"{'scheme':<10} {'workload':<8} {'cycles':>13} {'paths':>7} "
        f"{'wall s':>7} {'paths/s':>9}",
    ]
    for row in report["points"]:
        lines.append(
            f"{row['scheme']:<10} {row['workload']:<8} "
            f"{row['cycles']:>13,} {row['paths']:>7} "
            f"{row['wall_s']:>7.2f} {row['paths_per_s']:>9.0f}"
        )
    lines.append("")
    lines.append(f"{'kernel (hot path alone)':<19} {'paths/s':>9}")
    for row in report["kernel"]:
        lines.append(f"{row['scheme']:<19} {row['paths_per_s']:>9.0f}")
    engine = report.get("engine") or {}
    if engine:
        lines.append("")
        lines.append(
            "engine: " + "  ".join(
                f"{key}={value}" for key, value in sorted(engine.items())
            )
        )
    for phase, rows in (report.get("profile") or {}).items():
        lines.append("")
        if rows and "phase" in rows[0]:
            lines.append(f"profile [{phase}]  {'ms':>10}")
            for row in rows:
                lines.append(f"  {row['phase']:<48} {row['ms']:>10.3f}")
            continue
        lines.append(
            f"profile [{phase}]  {'calls':>9} {'tottime':>8} {'cumtime':>8}"
        )
        for row in rows:
            lines.append(
                f"  {row['func']:<48} {row['calls']:>7} "
                f"{row['tottime']:>8.3f} {row['cumtime']:>8.3f}"
            )
    return "\n".join(lines)


def load_report(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
