"""``ProcessPoolExecutor`` fan-out over independent simulation points.

Every simulation point (scheme, workload, records, seed, config) is fully
self-contained: the simulator derives all randomness from the point's own
seed, so points can run in any process in any order and still produce the
exact numbers a serial loop would.  :func:`fanout` exploits that — results
come back in *input order* regardless of completion order, so callers are
deterministic for any ``--jobs`` value.

Workers are module-level functions (picklable); with ``jobs <= 1`` or a
single point everything runs in-process, which keeps the serial path free
of multiprocessing overhead and trivially debuggable.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..config import SystemConfig
from ..sim.results import SimulationResult

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class SimPoint:
    """One independent (scheme, workload) simulation."""

    scheme: str
    workload: str
    records: int = 2500
    seed: int = 7
    config: Optional[SystemConfig] = None
    #: optional per-point JSONL event trace destination
    trace_out: Optional[str] = None

    def label(self) -> str:
        return f"{self.scheme}/{self.workload}"


@dataclass
class PointResult:
    """A finished point: the simulation result plus its wall-clock cost."""

    point: SimPoint
    result: SimulationResult
    wall_s: float


def _run_point(point: SimPoint) -> PointResult:
    # Imported lazily so worker processes pay the import once, not the
    # parent at module load (the facade imports the full scheme zoo).
    from .. import api

    spec = api.RunSpec(
        scheme=point.scheme,
        workload=point.workload,
        records=point.records,
        seed=point.seed,
        config=point.config,
        obs=api.ObsOptions(trace_out=point.trace_out),
    )
    out = api.run(spec)
    return PointResult(point, out.result, out.wall_s)


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all cores."""
    return max(1, os.cpu_count() or 1)


def fanout_map(
    worker: Callable[[T], R], items: Sequence[T], jobs: int = 1
) -> List[R]:
    """Map a picklable worker over items, preserving input order.

    With ``jobs <= 1`` (or one item) this is a plain in-process loop.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, items))


def fanout(points: Sequence[SimPoint], jobs: int = 1) -> List[PointResult]:
    """Run simulation points, parallel across processes, in input order."""
    return fanout_map(_run_point, points, jobs)


def run_points(
    points: Sequence[SimPoint], jobs: int = 1
) -> Tuple[List[PointResult], float]:
    """:func:`fanout` plus the overall suite wall time."""
    start = time.perf_counter()
    results = fanout(points, jobs)
    return results, time.perf_counter() - start
