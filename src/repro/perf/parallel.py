"""Fan-out over independent simulation points (engine-backed).

Every simulation point (scheme, workload, records, seed, config) is fully
self-contained: the simulator derives all randomness from the point's own
seed, so points can run in any process in any order and still produce the
exact numbers a serial loop would.  :func:`fanout` exploits that — results
come back in *input order* regardless of completion order, so callers are
deterministic for any ``--jobs`` value.

Since PR 3 the actual execution lives in :mod:`repro.perf.engine`: a
persistent warm worker pool with a cross-run artifact cache and
straggler-aware (longest-expected-first) dispatch.  This module keeps the
stable point/result types and the thin entry points the rest of the repo
imports; ``fanout_map`` remains the generic order-preserving map for
callers that bring their own worker function.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..config import SystemConfig
from ..sim.results import SimulationResult

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class SimPoint:
    """One independent (scheme, workload) simulation."""

    scheme: str
    workload: str
    records: int = 2500
    seed: int = 7
    config: Optional[SystemConfig] = None
    #: optional per-point JSONL event trace destination
    trace_out: Optional[str] = None

    def label(self) -> str:
        return f"{self.scheme}/{self.workload}"


@dataclass
class PointResult:
    """A finished point: the simulation result plus its wall-clock cost.

    ``engine_counters`` holds the ``engine.*`` artifact-cache deltas this
    point observed in its worker (empty when run without the engine);
    simulation counters live in ``result.counters`` and never include
    them, keeping results bit-identical to the serial loop.
    """

    point: SimPoint
    result: SimulationResult
    wall_s: float
    engine_counters: Dict[str, int] = field(default_factory=dict)


def _run_point(point: SimPoint) -> PointResult:
    # Imported lazily so worker processes pay the import once, not the
    # parent at module load (the facade imports the full scheme zoo).
    from .. import api

    spec = api.RunSpec(
        scheme=point.scheme,
        workload=point.workload,
        records=point.records,
        seed=point.seed,
        config=point.config,
        obs=api.ObsOptions(trace_out=point.trace_out),
    )
    out = api.run(spec)
    return PointResult(point, out.result, out.wall_s)


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all cores."""
    return max(1, os.cpu_count() or 1)


def fanout_map(
    worker: Callable[[T], R], items: Sequence[T], jobs: int = 1
) -> List[R]:
    """Map a picklable worker over items, preserving input order.

    With ``jobs <= 1`` (or one item) this is a plain in-process loop;
    otherwise the items go through the warm pool in
    :func:`repro.perf.engine.engine_map`.
    """
    from .engine import engine_map

    return engine_map(worker, items, jobs=jobs)


def fanout(points: Sequence[SimPoint], jobs: int = 1) -> List[PointResult]:
    """Run simulation points, parallel across processes, in input order."""
    results, _ = run_points(points, jobs=jobs)
    return results


def run_points(
    points: Sequence[SimPoint], jobs: int = 1
) -> Tuple[List[PointResult], float]:
    """Engine-backed point execution plus the overall suite wall time."""
    from .engine import run_points as engine_run_points

    return engine_run_points(points, jobs=jobs)
