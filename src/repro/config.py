"""Configuration objects for the IR-ORAM reproduction.

The paper's evaluation platform (Table I) is described by four pieces:

* :class:`ORAMConfig`   — the ORAM tree, stash, PosMap, and timing protection;
* :class:`DRAMConfig`   — the USIMM-like DRAM channel/bank timing model;
* :class:`CacheConfig`  — the LLC in front of the ORAM controller;
* :class:`CPUConfig`    — the trace-driven out-of-order processor front end.

:class:`SystemConfig` bundles them.  Two families of presets are provided:

* ``SystemConfig.paper()`` — the exact Table I configuration (8 GB protected
  space, L=25, Z=4, 10 cached top levels, 2 MB LLC).  Usable but slow in
  pure Python; intended for spot checks.
* ``SystemConfig.scaled()`` — a proportionally scaled configuration used by
  the default experiments.  The scaling preserves the ratios that drive the
  paper's results: the fraction of tree levels cached on chip, the blocks
  fetched per path relative to the baseline, the PosMap recursion depth
  (three levels), and the stash size relative to ``Z * L``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from .errors import ConfigError

#: Number of position-map entries packed into one ORAM block.  With 64-byte
#: blocks and 4-byte entries this is 16, as in Freecursive.
def posmap_fanout(block_bytes: int, entry_bytes: int) -> int:
    """Mappings stored per PosMap block."""
    if entry_bytes <= 0 or block_bytes < entry_bytes:
        raise ConfigError(
            f"invalid posmap entry size {entry_bytes} for block {block_bytes}"
        )
    return block_bytes // entry_bytes


@dataclass(frozen=True)
class ORAMConfig:
    """Static parameters of the Path ORAM tree and controller.

    ``levels`` is L in the paper: the tree has levels 0 (root) through
    ``levels - 1`` (leaves), i.e. ``2 ** (levels - 1)`` leaves.

    ``z_per_level`` holds the bucket size of every level.  The classic Path
    ORAM uses a single Z; IR-Alloc supplies a non-uniform vector.  A value of
    0 means the level is not backed by memory at all (the paper sets Z=0 for
    the cached top levels under IR-Alloc since IR-Stash holds them on chip).
    """

    levels: int
    user_blocks: int
    z_per_level: Tuple[int, ...]
    top_cached_levels: int = 0
    block_bytes: int = 64
    posmap_entry_bytes: int = 4
    stash_capacity: int = 200
    eviction_threshold: int = 150
    eviction_batch: int = 2
    plb_sets: int = 32
    plb_ways: int = 4
    timing_protection: bool = True
    issue_interval: int = 1000
    allow_background_eviction: bool = True

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ConfigError("an ORAM tree needs at least 2 levels")
        if len(self.z_per_level) != self.levels:
            raise ConfigError(
                f"z_per_level has {len(self.z_per_level)} entries for "
                f"{self.levels} levels"
            )
        if any(z < 0 for z in self.z_per_level):
            raise ConfigError("bucket sizes must be non-negative")
        if not 0 <= self.top_cached_levels < self.levels:
            raise ConfigError(
                f"top_cached_levels={self.top_cached_levels} out of range "
                f"for {self.levels} levels"
            )
        if self.user_blocks < 1:
            raise ConfigError("user_blocks must be positive")
        if self.eviction_threshold > self.stash_capacity:
            raise ConfigError("eviction threshold exceeds stash capacity")
        if self.total_blocks() > self.tree_slots():
            raise ConfigError(
                f"tree with {self.tree_slots()} slots cannot hold "
                f"{self.total_blocks()} blocks"
            )

    # -- construction helpers ---------------------------------------------
    @staticmethod
    def uniform(
        levels: int,
        user_blocks: int,
        z: int = 4,
        **kwargs,
    ) -> "ORAMConfig":
        """Classic Path ORAM: the same bucket size at every level."""
        return ORAMConfig(
            levels=levels,
            user_blocks=user_blocks,
            z_per_level=(z,) * levels,
            **kwargs,
        )

    def with_z_vector(self, z_per_level: Sequence[int]) -> "ORAMConfig":
        """Return a copy using a different per-level allocation."""
        return replace(self, z_per_level=tuple(z_per_level))

    # -- derived quantities -------------------------------------------------
    @property
    def leaves(self) -> int:
        """Number of leaves, i.e. distinct path IDs."""
        return 1 << (self.levels - 1)

    @property
    def fanout(self) -> int:
        """PosMap entries per block."""
        return posmap_fanout(self.block_bytes, self.posmap_entry_bytes)

    @property
    def posmap1_blocks(self) -> int:
        """Blocks of the first-level position map (stored in the tree)."""
        return math.ceil(self.user_blocks / self.fanout)

    @property
    def posmap2_blocks(self) -> int:
        """Blocks of the second-level position map (stored in the tree)."""
        return math.ceil(self.posmap1_blocks / self.fanout)

    @property
    def posmap3_entries(self) -> int:
        """Entries of the third-level position map (kept fully on chip)."""
        return self.posmap2_blocks

    def total_blocks(self) -> int:
        """All blocks living in the tree namespace (user + PosMap1 + PosMap2)."""
        return self.user_blocks + self.posmap1_blocks + self.posmap2_blocks

    def tree_slots(self) -> int:
        """Total block slots allocated across the whole tree."""
        return sum(z << level for level, z in enumerate(self.z_per_level))

    def memory_slots(self) -> int:
        """Slots backed by off-chip memory (below the cached top)."""
        return sum(
            z << level
            for level, z in enumerate(self.z_per_level)
            if level >= self.top_cached_levels
        )

    def blocks_per_path(self) -> int:
        """Blocks transferred from memory for one path read (or write).

        This is *PL* in the paper's Section VI-B: the cached top levels cost
        no memory traffic, every deeper level costs its bucket size.
        """
        return sum(
            z
            for level, z in enumerate(self.z_per_level)
            if level >= self.top_cached_levels
        )

    def utilization_target(self) -> float:
        """Fraction of tree slots occupied by real blocks at steady state."""
        return self.total_blocks() / self.tree_slots()

    def space_reduction_vs_uniform(self, z: int = 4) -> float:
        """Fractional slot loss of this allocation vs a uniform-Z tree.

        IR-Alloc's first constraint requires this to stay below 1 %.
        """
        uniform_slots = sum(z << level for level in range(self.levels))
        return 1.0 - self.tree_slots() / uniform_slots


@dataclass(frozen=True)
class DRAMConfig:
    """Bank-level DRAM timing model parameters (USIMM-like).

    All timings are in DRAM cycles; ``cpu_cycles_per_dram_cycle`` converts
    to processor cycles (3.2 GHz core / 800 MHz DRAM = 4 in Table I).
    """

    channels: int = 4
    banks_per_channel: int = 8
    row_bytes: int = 2048
    t_rcd: int = 11
    t_rp: int = 11
    t_cas: int = 11
    t_burst: int = 4
    cpu_cycles_per_dram_cycle: int = 4

    def __post_init__(self) -> None:
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ConfigError("DRAM needs at least one channel and bank")
        if min(self.t_rcd, self.t_rp, self.t_cas, self.t_burst) < 1:
            raise ConfigError("DRAM timings must be positive")

    @property
    def row_blocks(self) -> int:
        """64-byte blocks per DRAM row."""
        return self.row_bytes // 64


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative write-back cache (used for the LLC)."""

    sets: int = 4096
    ways: int = 8
    line_bytes: int = 64
    hit_latency: int = 30

    def __post_init__(self) -> None:
        if self.sets < 1 or self.ways < 1:
            raise ConfigError("cache needs at least one set and way")
        if self.sets & (self.sets - 1):
            raise ConfigError("cache set count must be a power of two")

    @property
    def lines(self) -> int:
        return self.sets * self.ways

    @property
    def capacity_bytes(self) -> int:
        return self.lines * self.line_bytes


@dataclass(frozen=True)
class CPUConfig:
    """Trace-driven processor approximation (Table I)."""

    issue_width: int = 4
    rob_size: int = 128
    max_outstanding_reads: int = 8
    write_buffer: int = 16
    frequency_ghz: float = 3.2

    def __post_init__(self) -> None:
        if self.issue_width < 1 or self.rob_size < 1:
            raise ConfigError("processor width and ROB must be positive")
        if self.write_buffer < 1:
            raise ConfigError("write buffer must hold at least one entry")


@dataclass(frozen=True)
class SystemConfig:
    """Full platform: processor + LLC + ORAM controller + DRAM."""

    oram: ORAMConfig
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    llc: CacheConfig = field(default_factory=CacheConfig)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    seed: int = 12345

    # -- presets ------------------------------------------------------------
    @staticmethod
    def paper(**overrides) -> "SystemConfig":
        """Table I: 8 GB protected space, 4 GB user data, L=25, Z=4.

        4 GB / 64 B = 2**26 user blocks; ten top levels cached on chip in a
        dedicated 256 KB structure; 2 MB 8-way LLC.
        """
        oram = ORAMConfig.uniform(
            levels=25,
            user_blocks=1 << 26,
            z=4,
            top_cached_levels=10,
            stash_capacity=200,
            eviction_threshold=150,
            plb_sets=64,
            plb_ways=4,
        )
        llc = CacheConfig(sets=4096, ways=8)
        return SystemConfig(oram=oram, llc=llc, **overrides)

    @staticmethod
    def scaled(
        levels: int = 15,
        top_cached_levels: Optional[int] = None,
        utilization: float = 0.5,
        **oram_overrides,
    ) -> "SystemConfig":
        """Proportionally scaled configuration for fast experiments.

        ``top_cached_levels`` defaults to 40 % of the tree, matching the
        paper's 10-of-25.  The user-block count is chosen so real blocks
        (user + PosMap) fill ``utilization`` of the tree, matching the
        paper's 4 GB-in-8 GB provisioning.  The issue interval is scaled
        below the shortest optimized path-service time so memory bandwidth
        remains the bottleneck, preserving the paper's operating regime.
        """
        if top_cached_levels is None:
            top_cached_levels = max(1, round(levels * 10 / 25))
        slots = 4 * ((1 << levels) - 1)
        user_blocks = scaled_user_blocks(slots, utilization)
        oram_kwargs = dict(
            levels=levels,
            user_blocks=user_blocks,
            z=4,
            top_cached_levels=top_cached_levels,
            stash_capacity=200,
            eviction_threshold=150,
            plb_sets=16,
            plb_ways=4,
            issue_interval=250,
        )
        oram_kwargs.update(oram_overrides)
        oram = ORAMConfig.uniform(**oram_kwargs)
        llc = CacheConfig(sets=256, ways=8)
        return SystemConfig(oram=oram, llc=llc)

    @staticmethod
    def tiny(levels: int = 9, **oram_overrides) -> "SystemConfig":
        """A very small configuration for unit tests."""
        slots = 4 * ((1 << levels) - 1)
        oram_kwargs = dict(
            levels=levels,
            user_blocks=scaled_user_blocks(slots, 0.5),
            z=4,
            top_cached_levels=max(1, round(levels * 10 / 25)),
            stash_capacity=120,
            eviction_threshold=90,
            plb_sets=8,
            plb_ways=2,
            issue_interval=250,
        )
        oram_kwargs.update(oram_overrides)
        oram = ORAMConfig.uniform(**oram_kwargs)
        llc = CacheConfig(sets=32, ways=8)
        return SystemConfig(oram=oram, llc=llc)

    def with_oram(self, oram: ORAMConfig) -> "SystemConfig":
        return replace(self, oram=oram)

    def fingerprint(self) -> str:
        """Short stable digest identifying this exact platform.

        Keys the cross-run artifact caches in :mod:`repro.perf.engine`.
        Frozen dataclasses render every field (including the nested
        configs) deterministically through ``repr``, so two configs share
        a fingerprint iff they are equal — any field change, e.g. an
        IR-Alloc Z vector, yields a different digest.
        """
        digest = hashlib.sha256(repr(self).encode("utf-8"))
        return digest.hexdigest()[:16]


def scaled_user_blocks(tree_slots: int, utilization: float) -> int:
    """User blocks such that user + PosMap blocks fill ``utilization`` slots.

    With fanout f, total = N * (1 + 1/f + 1/f**2) approximately; solve for N
    and round down to a multiple of the fanout for tidy PosMap sizing.
    """
    if not 0 < utilization < 1:
        raise ConfigError("utilization must be in (0, 1)")
    fanout = 16
    total = int(tree_slots * utilization)
    user = int(total / (1 + 1 / fanout + 1 / fanout**2))
    return max(fanout, (user // fanout) * fanout)
