"""Synthetic models of the paper's evaluated benchmarks (Table II).

The paper drives its simulator with Pin traces of SPEC CPU2017 and PARSEC
programs, characterized in Table II by their L2 read/write MPKI.  Those
traces are proprietary-toolchain artifacts, so each benchmark is modeled by
a generator reproducing the ORAM-relevant properties of its trace:

* **intensity** — L1-miss rate (instruction gaps between records).  The
  L1-miss intensity is the Table II L2 MPKI scaled by a reuse
  amplification: a cache-friendly program's L1 misses mostly hit the LLC,
  so its L1-miss rate is several times its L2 rate, while a streaming
  program's L1 and L2 rates nearly coincide.
* **balance** — read/write mix (Table II read vs write MPKI).
* **short-range reuse** — re-references at distances the LLC captures.
* **spill reuse** — re-references at distances just beyond LLC capacity.
  These are the accesses that miss the LLC but find their block still in
  the top tree levels (where its last fetch or write-back parked it), and
  are therefore the source of the tree-top reuse of Fig. 6 and of the
  S-Stash hits that let IR-Stash skip PosMap work.
* **spatial locality** — sequential scans, which produce PosMap-block
  sharing (16 user blocks per PosMap1 block) and thus PLB hits.
* **burstiness and quiet phases** — miss clusters and compute-only
  stretches.  Quiet phases are where the fixed-rate timing defense inserts
  its dummy paths (PT_m), so their prevalence controls how much IR-DWB can
  help a benchmark (a lot for gcc, almost nothing for cam/dee — Fig. 10).

Reuse distances are expressed in trace records and were calibrated against
the scaled default configuration (LLC = 2048 lines); the paper-scale
configuration scales them with ``distance_scale``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..errors import TraceError
from .trace import Trace, TraceRecord


@dataclass(frozen=True)
class BenchmarkModel:
    """Generator parameters for one benchmark."""

    name: str
    suite: str
    read_mpki: float          # Table II (L2/LLC read misses per kilo-inst)
    write_mpki: float         # Table II (L2/LLC write misses per kilo-inst)
    amplification: float      # L1-miss rate = (read+write MPKI) * amplification
    footprint_frac: float     # fraction of user space ever touched
    stream_prob: float        # probability an access continues a scan
    reuse_prob: float         # probability of a short-range re-reference
    reuse_scale: float        # mean short reuse distance, in records
    #: probability of a *thrash* re-reference: re-access a block the LLC
    #: evicted very recently.  This is the classic capacity-thrash pattern;
    #: it is also exactly what produces ORAM tree-top hits, because a dirty
    #: eviction's write-back parks the block near the top of the tree
    #: moments before the re-reference arrives (Fig. 6 / Fig. 14).
    spill_prob: float = 0.0
    #: probability of a *mid-range* re-reference: uniform over the last few
    #: thousand records.  These reuses usually miss the LLC but land inside
    #: a hierarchical ORAM's hot tree (Rho's small tree), which is how the
    #: paper's locality benchmarks profit from Rho.
    midreuse_prob: float = 0.0
    midreuse_span: int = 8000
    #: size of the cyclic scan region in blocks (0 = whole footprint).
    #: A region above LLC capacity keeps the LLC under thrash pressure.
    scan_blocks: int = 0
    quiet_prob: float = 0.0   # probability a record follows a compute phase
    quiet_gap: int = 10_000   # mean instructions of such a compute phase
    burst_prob: float = 0.05  # probability a record starts a burst
    burst_len: int = 8        # records per burst (tiny gaps inside)

    @property
    def write_prob(self) -> float:
        total = self.read_mpki + self.write_mpki
        if total == 0:
            return 0.0
        return self.write_mpki / total

    @property
    def l1_mpki(self) -> float:
        return (self.read_mpki + self.write_mpki) * self.amplification


#: Table II of the paper, with per-benchmark locality parameters chosen to
#: reflect each program's published character (see module docstring).
BENCHMARKS: Dict[str, BenchmarkModel] = {
    model.name: model
    for model in [
        # SPEC CPU2017
        BenchmarkModel("gcc", "SPEC", 0.1, 0.3, 6.0, 0.055,
                       stream_prob=0.22, reuse_prob=0.55, reuse_scale=1000,
                       spill_prob=0.08, midreuse_prob=0.12, scan_blocks=2300,
                       quiet_prob=0.05, quiet_gap=12_000),
        BenchmarkModel("mcf", "SPEC", 19.5, 0.1, 1.6, 0.9,
                       stream_prob=0.20, reuse_prob=0.20, reuse_scale=1500,
                       spill_prob=0.08, midreuse_prob=0.04, scan_blocks=2600,
                       quiet_prob=0.01, quiet_gap=8_000,
                       burst_prob=0.10, burst_len=16),
        BenchmarkModel("xz", "SPEC", 24.9, 29.6, 1.4, 0.5,
                       stream_prob=0.35, reuse_prob=0.25, reuse_scale=1500,
                       spill_prob=0.08, midreuse_prob=0.05, scan_blocks=2500),
        BenchmarkModel("xal", "SPEC", 0.05, 0.1, 8.0, 0.05,
                       stream_prob=0.22, reuse_prob=0.55, reuse_scale=1000,
                       spill_prob=0.08, midreuse_prob=0.12, scan_blocks=2300,
                       quiet_prob=0.05, quiet_gap=15_000),
        BenchmarkModel("dee", "SPEC", 0.0, 5.7, 2.0, 0.15,
                       stream_prob=0.50, reuse_prob=0.25, reuse_scale=1500,
                       spill_prob=0.06, midreuse_prob=0.06, scan_blocks=2300,
                       quiet_prob=0.01, quiet_gap=8_000),
        BenchmarkModel("bwa", "SPEC", 0.0, 20.7, 1.2, 0.5,
                       stream_prob=0.70, reuse_prob=0.10, reuse_scale=1200,
                       spill_prob=0.05, midreuse_prob=0.03),
        BenchmarkModel("lbm", "SPEC", 0.0, 45.3, 1.1, 0.7,
                       stream_prob=0.85, reuse_prob=0.05, reuse_scale=800,
                       spill_prob=0.02, midreuse_prob=0.02),
        BenchmarkModel("cam", "SPEC", 0.01, 8.8, 1.5, 0.25,
                       stream_prob=0.50, reuse_prob=0.22, reuse_scale=1500,
                       spill_prob=0.05, midreuse_prob=0.06, scan_blocks=2400,
                       quiet_prob=0.01, quiet_gap=8_000),
        BenchmarkModel("ima", "SPEC", 0.3, 2.9, 2.5, 0.12,
                       stream_prob=0.35, reuse_prob=0.38, reuse_scale=1200,
                       spill_prob=0.08, midreuse_prob=0.1, scan_blocks=2300,
                       quiet_prob=0.03, quiet_gap=12_000),
        BenchmarkModel("rom", "SPEC", 0.02, 23.0, 1.2, 0.5,
                       stream_prob=0.65, reuse_prob=0.10, reuse_scale=1200,
                       spill_prob=0.05, midreuse_prob=0.03),
        # PARSEC
        BenchmarkModel("bla", "PARSEC", 2.6, 0.4, 2.5, 0.18,
                       stream_prob=0.32, reuse_prob=0.36, reuse_scale=1500,
                       spill_prob=0.08, midreuse_prob=0.1, scan_blocks=2400,
                       quiet_prob=0.02, quiet_gap=10_000),
        BenchmarkModel("str", "PARSEC", 2.7, 0.5, 2.5, 0.2,
                       stream_prob=0.40, reuse_prob=0.28, reuse_scale=1500,
                       spill_prob=0.08, midreuse_prob=0.08, scan_blocks=2400,
                       quiet_prob=0.02, quiet_gap=10_000),
        BenchmarkModel("fre", "PARSEC", 2.1, 0.4, 2.5, 0.15,
                       stream_prob=0.32, reuse_prob=0.38, reuse_scale=1500,
                       spill_prob=0.10, midreuse_prob=0.1, scan_blocks=2400,
                       quiet_prob=0.03, quiet_gap=10_000),
    ]
}


def benchmark_trace(
    model: BenchmarkModel,
    user_blocks: int,
    count: int,
    rng: random.Random,
    base_block: int = 0,
    region_blocks: int = 0,
    distance_scale: float = 1.0,
    llc_lines: int = 2048,
) -> Trace:
    """Generate ``count`` L1-miss records following a benchmark model.

    ``base_block``/``region_blocks`` confine the trace to a sub-region of
    the user space (used by mix traces).  ``distance_scale`` multiplies
    reuse distances and the scan region; ``llc_lines`` is the capacity of
    the LLC the trace will face, used to aim thrash re-references at
    just-evicted blocks (the generator carries a small LRU model of it).
    """
    if count < 1:
        raise TraceError("trace needs at least one record")
    region = region_blocks or user_blocks
    footprint = max(16, min(region, int(region * model.footprint_frac)))
    scan_region = footprint
    if model.scan_blocks:
        scan_region = max(16, min(footprint, int(model.scan_blocks * distance_scale)))
    mean_gap = 1000.0 / max(model.l1_mpki, 1e-6)
    reuse_scale = max(1.0, model.reuse_scale * distance_scale)
    midreuse_span = max(64, int(model.midreuse_span * distance_scale))
    history_cap = max(64, int(4 * reuse_scale), midreuse_span + 64)

    from collections import OrderedDict, deque

    lru: "OrderedDict[int, None]" = OrderedDict()
    recently_evicted: deque = deque(maxlen=max(64, llc_lines // 4))

    records: List[TraceRecord] = []
    history: List[int] = []
    cursor = rng.randrange(scan_region)
    burst_remaining = 0
    while len(records) < count:
        if burst_remaining > 0:
            gap = 1 + rng.randrange(3)
            burst_remaining -= 1
        else:
            gap = max(1, int(rng.expovariate(1.0 / mean_gap)))
            if model.quiet_prob and rng.random() < model.quiet_prob:
                gap += int(rng.expovariate(1.0 / model.quiet_gap))
            if rng.random() < model.burst_prob:
                burst_remaining = model.burst_len
        draw = rng.random()
        if draw < model.stream_prob:
            cursor = (cursor + 1) % scan_region
            offset = cursor
        elif draw < model.stream_prob + model.reuse_prob and history:
            distance = 1 + int(rng.expovariate(1.0 / reuse_scale))
            offset = history[-min(distance, len(history))]
        elif (
            draw < model.stream_prob + model.reuse_prob + model.spill_prob
            and recently_evicted
        ):
            # Thrash re-reference: a block the LLC evicted moments ago,
            # biased toward the very freshest evictions (whose write-backs
            # just parked them near the top of the ORAM tree).
            back = min(
                int(rng.expovariate(1.0 / 24.0)), len(recently_evicted) - 1
            )
            offset = recently_evicted[len(recently_evicted) - 1 - back]
        elif (
            draw
            < model.stream_prob
            + model.reuse_prob
            + model.spill_prob
            + model.midreuse_prob
            and history
        ):
            distance = 1 + rng.randrange(min(len(history), midreuse_span))
            offset = history[-distance]
        else:
            offset = rng.randrange(footprint)
        history.append(offset)
        if len(history) > history_cap:
            del history[: history_cap // 4]
        # track the LLC the trace will face (pure LRU approximation)
        if offset in lru:
            lru.move_to_end(offset)
        else:
            lru[offset] = None
            if len(lru) > llc_lines:
                victim, _ = lru.popitem(last=False)
                recently_evicted.append(victim)
        block = base_block + offset % region
        is_write = rng.random() < model.write_prob
        records.append((gap, block, is_write))
    return Trace(model.name, records)


def table2_rows() -> List[Dict[str, object]]:
    """Rows of Table II in paper order."""
    return [
        {
            "suite": model.suite,
            "benchmark": model.name,
            "read_mpki": model.read_mpki,
            "write_mpki": model.write_mpki,
        }
        for model in BENCHMARKS.values()
    ]
