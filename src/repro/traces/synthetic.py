"""Synthetic trace generators.

Three primitive access patterns compose into benchmark-like behaviour:

* :func:`random_trace` — uniform random blocks at a fixed intensity.  The
  paper uses such traces to (a) maximize middle-level tree utilization
  (Fig. 3's tail, Fig. 13), (b) drive the IR-Alloc Z-search worst case, and
  (c) measure scalability (Fig. 16).
* :func:`zipf_trace` — skewed reuse over a working set, the ingredient
  that produces PLB hits and tree-top reuse.
* :func:`strided_trace` — streaming scans with strong spatial locality.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import TraceError
from .trace import Trace, TraceRecord


def _check(count: int, footprint: int) -> None:
    if count < 1:
        raise TraceError("trace needs at least one record")
    if footprint < 1:
        raise TraceError("footprint must be positive")


def random_trace(
    count: int,
    footprint: int,
    rng: random.Random,
    gap: int = 40,
    write_fraction: float = 0.0,
    name: str = "random",
) -> Trace:
    """Uniform random accesses over ``[0, footprint)`` blocks."""
    _check(count, footprint)
    records: List[TraceRecord] = []
    for _ in range(count):
        block = rng.randrange(footprint)
        is_write = rng.random() < write_fraction
        records.append((gap, block, is_write))
    return Trace(name, records)


def zipf_trace(
    count: int,
    footprint: int,
    rng: random.Random,
    alpha: float = 1.1,
    gap: int = 200,
    write_fraction: float = 0.2,
    name: str = "zipf",
) -> Trace:
    """Zipf-distributed reuse: few hot blocks dominate, long cold tail.

    Rank-to-block mapping is randomized once so hot blocks scatter over the
    footprint (hot PosMap1 blocks then scatter too, as in real programs).
    """
    _check(count, footprint)
    ranks = _zipf_ranks(footprint, alpha, rng, samples=count)
    perm_cache: dict = {}

    def block_of(rank: int) -> int:
        if rank not in perm_cache:
            perm_cache[rank] = rng.randrange(footprint)
        return perm_cache[rank]

    records: List[TraceRecord] = []
    for rank in ranks:
        is_write = rng.random() < write_fraction
        records.append((gap, block_of(rank), is_write))
    return Trace(name, records)


def _zipf_ranks(
    footprint: int, alpha: float, rng: random.Random, samples: int
) -> List[int]:
    """Draw ranks via inverse-CDF over a truncated zipf distribution."""
    support = min(footprint, 4096)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(support)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    ranks = []
    for _ in range(samples):
        u = rng.random()
        lo, hi = 0, support - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        ranks.append(lo)
    return ranks


def strided_trace(
    count: int,
    footprint: int,
    rng: random.Random,
    stride: int = 1,
    gap: int = 25,
    write_fraction: float = 0.5,
    name: str = "stream",
) -> Trace:
    """Sequential streaming over the footprint (lbm/bwa-like)."""
    _check(count, footprint)
    records: List[TraceRecord] = []
    cursor = rng.randrange(footprint)
    for _ in range(count):
        cursor = (cursor + stride) % footprint
        is_write = rng.random() < write_fraction
        records.append((gap, cursor, is_write))
    return Trace(name, records)
