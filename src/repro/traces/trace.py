"""Trace records and containers.

A trace is the stream of L1 data-cache misses feeding the simulated LLC,
mirroring the paper's methodology (Pin traces of SPEC CPU2017 / PARSEC
covering 2M L1 misses).  Each record carries the number of instructions
executed since the previous record, the 64-byte block address (in user
block numbers), and whether the access is a write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from ..errors import TraceError

#: (instruction_gap, block, is_write)
TraceRecord = Tuple[int, int, bool]


@dataclass
class Trace:
    """A named sequence of memory-access records."""

    name: str
    records: List[TraceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        for gap, block, _ in self.records:
            if gap < 0 or block < 0:
                raise TraceError(f"malformed record in trace {self.name!r}")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # -- summary statistics --------------------------------------------------
    def instructions(self) -> int:
        return sum(gap for gap, _, _ in self.records)

    def reads(self) -> int:
        return sum(1 for _, _, w in self.records if not w)

    def writes(self) -> int:
        return sum(1 for _, _, w in self.records if w)

    def footprint(self) -> int:
        """Distinct blocks touched."""
        return len({block for _, block, _ in self.records})

    def mpki(self) -> Tuple[float, float]:
        """(read, write) misses per kilo-instruction of this stream."""
        insts = self.instructions()
        if insts == 0:
            return 0.0, 0.0
        return 1000 * self.reads() / insts, 1000 * self.writes() / insts

    def max_block(self) -> int:
        if not self.records:
            raise TraceError("empty trace")
        return max(block for _, block, _ in self.records)

    def slice(self, count: int, name: str = "") -> "Trace":
        return Trace(name or f"{self.name}[:{count}]", self.records[:count])


def concat(name: str, traces: Sequence[Trace]) -> Trace:
    """Concatenate traces end-to-end (used for mix + random tails, Fig. 3)."""
    records: List[TraceRecord] = []
    for trace in traces:
        records.extend(trace.records)
    return Trace(name, records)
