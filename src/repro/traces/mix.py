"""Trace mixing.

Two composition modes mirror the paper's setups:

* :func:`mix_traces` interleaves several programs over disjoint address
  regions — the "mix" bar of Fig. 10;
* :func:`benchmark_mix_with_random_tail` reproduces the Fig. 3 methodology:
  a long run of benchmark accesses followed by a purely random tail
  ("trace range [0B-3.7B]" then "(3.7B, 4B]").
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..errors import TraceError
from .benchmarks import BENCHMARKS, benchmark_trace
from .synthetic import random_trace
from .trace import Trace, TraceRecord, concat


def mix_traces(traces: Sequence[Trace], rng: random.Random, name: str = "mix") -> Trace:
    """Round-robin interleave with random jitter, preserving record order
    within each source trace (a multiprogrammed-style mix)."""
    if not traces:
        raise TraceError("cannot mix zero traces")
    cursors = [0] * len(traces)
    records: List[TraceRecord] = []
    remaining = sum(len(t) for t in traces)
    while remaining:
        candidates = [i for i, t in enumerate(traces) if cursors[i] < len(t)]
        index = candidates[rng.randrange(len(candidates))]
        records.append(traces[index].records[cursors[index]])
        cursors[index] += 1
        remaining -= 1
    return Trace(name, records)


def standard_mix(
    user_blocks: int,
    count: int,
    rng: random.Random,
    names: Sequence[str] = ("gcc", "mcf", "lbm"),
    llc_lines: int = 2048,
) -> Trace:
    """The paper's mix of three benchmarks over disjoint regions."""
    region = user_blocks // len(names)
    parts = [
        benchmark_trace(
            BENCHMARKS[name],
            user_blocks,
            count // len(names),
            rng,
            base_block=i * region,
            region_blocks=region,
            llc_lines=llc_lines,
        )
        for i, name in enumerate(names)
    ]
    return mix_traces(parts, rng, name="mix")


def benchmark_mix_with_random_tail(
    user_blocks: int,
    benchmark_count: int,
    random_count: int,
    rng: random.Random,
) -> Trace:
    """Fig. 3's trace: benchmark mix for ~92.5 % of the run, random tail after."""
    head = standard_mix(user_blocks, benchmark_count, rng)
    tail = random_trace(random_count, user_blocks, rng, gap=30, name="random-tail")
    return concat("mix+random", [head, tail])
