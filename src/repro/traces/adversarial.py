"""Adversary-chosen access programs for the trace distinguisher.

In the indistinguishability game of :mod:`repro.validate.distinguish`
the adversary picks two programs; the defense wins only if the recorded
memory traces of the two arms are statistically indistinguishable.  The
programs here are chosen to *maximize* the distance between arms along
every channel a broken scheme could leak through:

* demand intensity (``hot-compute`` vs ``uniform-memory`` — large vs
  small instruction gaps, so dummy-slot behaviour differs maximally);
* temporal shape (``burst`` — dense flurries separated by long idles);
* spatial locality and reuse (``stride-pathological`` — a scan plus a
  tiny hot set, the PLB/tree-top best case).

Each program is a builder ``(config, records, rng) -> Trace`` so the
harness can regenerate it from a seed for replay.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..config import SystemConfig
from .synthetic import random_trace, zipf_trace
from .trace import Trace, TraceRecord

ProgramFn = Callable[[SystemConfig, int, random.Random], Trace]


def _hot_compute(config: SystemConfig, records: int, rng: random.Random) -> Trace:
    """Compute-bound: skewed reuse of a small footprint, long gaps.

    Most accesses hit on chip, so almost every issue slot is a dummy —
    one extreme of the intensity channel.  The instruction gap is sized
    to roughly one issue slot per record, so this arm still produces
    enough paths for the fixed-size statistics even though nearly all
    of them are dummies.
    """
    footprint = max(16, config.oram.user_blocks // 64)
    gap = 4 * config.oram.issue_interval
    trace = zipf_trace(
        records, footprint, rng, alpha=1.3, gap=gap, name="hot-compute"
    )
    return trace


def _uniform_memory(config: SystemConfig, records: int, rng: random.Random) -> Trace:
    """Memory-bound: uniform random over the full footprint, short gaps.

    Every access misses, so issue slots carry real work back to back —
    the other extreme of the intensity channel.
    """
    return random_trace(
        records, config.oram.user_blocks, rng, gap=10, name="uniform-memory"
    )


def _burst(config: SystemConfig, records: int, rng: random.Random) -> Trace:
    """Phased: dense bursts of misses separated by long idle stretches.

    The idle must dwarf a burst's own service backlog (a burst of ~10
    misses takes ~10 issue slots to drain), or the queue absorbs it and
    the phases never reach the memory interface.
    """
    user_blocks = config.oram.user_blocks
    idle = 40 * config.oram.issue_interval
    out: List[TraceRecord] = []
    while len(out) < records:
        burst_len = rng.randrange(2, 6)
        for index in range(min(burst_len, records - len(out))):
            gap = idle if index == 0 else 5
            out.append((gap, rng.randrange(user_blocks), False))
    return Trace("burst", out)


def _stride_pathological(
    config: SystemConfig, records: int, rng: random.Random
) -> Trace:
    """A linear scan interleaved with hammering a tiny hot set.

    The scan defeats the LLC while the hot set concentrates posmap and
    tree-top traffic — the pattern that exposes remap and eviction bugs.
    """
    user_blocks = config.oram.user_blocks
    hot = [rng.randrange(user_blocks) for _ in range(4)]
    out: List[TraceRecord] = []
    cursor = rng.randrange(user_blocks)
    for index in range(records):
        if index % 3 == 2:
            out.append((40, hot[index % len(hot)], index % 2 == 0))
        else:
            cursor = (cursor + 1) % user_blocks
            out.append((40, cursor, False))
    return Trace("stride-pathological", out)


ADVERSARY_PROGRAMS: Dict[str, ProgramFn] = {
    "hot-compute": _hot_compute,
    "uniform-memory": _uniform_memory,
    "burst": _burst,
    "stride-pathological": _stride_pathological,
}

#: The canonical game: compute-bound vs memory-bound.  These two arms
#: differ maximally in demand intensity, the channel the fixed issue
#: rate plus dummy paths is supposed to close.
DEFAULT_PROGRAM_PAIR: Tuple[str, str] = ("hot-compute", "uniform-memory")


def build_program(
    name: str, config: SystemConfig, records: int, rng: random.Random
) -> Trace:
    """Build an adversary program by name (KeyError lists valid names)."""
    try:
        program = ADVERSARY_PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown adversary program {name!r}; "
            f"available: {sorted(ADVERSARY_PROGRAMS)}"
        ) from None
    return program(config, records, rng)
