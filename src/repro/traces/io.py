"""Plain-text trace persistence.

Format: one record per line, ``<gap> <block> <R|W>``, with ``#``-comment
header lines.  Mirrors the simple interchange formats of trace-driven
simulators like USIMM.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from ..errors import TraceError
from .trace import Trace, TraceRecord


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    lines = [f"# trace: {trace.name}", f"# records: {len(trace)}"]
    for gap, block, is_write in trace:
        lines.append(f"{gap} {block} {'W' if is_write else 'R'}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_trace(path: Union[str, Path], name: str = "") -> Trace:
    records: List[TraceRecord] = []
    source = Path(path)
    for line_no, line in enumerate(source.read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3 or parts[2] not in ("R", "W"):
            raise TraceError(f"{source}:{line_no}: malformed record {line!r}")
        records.append((int(parts[0]), int(parts[1]), parts[2] == "W"))
    return Trace(name or source.stem, records)
