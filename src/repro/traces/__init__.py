"""Memory-trace infrastructure: records, synthetic generators, benchmarks."""

from .benchmarks import BENCHMARKS, BenchmarkModel, benchmark_trace
from .mix import mix_traces
from .synthetic import random_trace, strided_trace, zipf_trace
from .trace import Trace, TraceRecord

__all__ = [
    "Trace",
    "TraceRecord",
    "BENCHMARKS",
    "BenchmarkModel",
    "benchmark_trace",
    "random_trace",
    "strided_trace",
    "zipf_trace",
    "mix_traces",
]
