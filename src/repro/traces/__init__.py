"""Memory-trace infrastructure: records, synthetic generators, benchmarks."""

from .adversarial import ADVERSARY_PROGRAMS, DEFAULT_PROGRAM_PAIR, build_program
from .benchmarks import BENCHMARKS, BenchmarkModel, benchmark_trace
from .mix import mix_traces
from .synthetic import random_trace, strided_trace, zipf_trace
from .trace import Trace, TraceRecord

__all__ = [
    "Trace",
    "TraceRecord",
    "ADVERSARY_PROGRAMS",
    "DEFAULT_PROGRAM_PAIR",
    "BENCHMARKS",
    "BenchmarkModel",
    "benchmark_trace",
    "build_program",
    "random_trace",
    "strided_trace",
    "zipf_trace",
    "mix_traces",
]
