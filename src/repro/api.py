"""The single run facade: build a :class:`RunSpec`, get a :class:`RunResult`.

Every in-repo entry point — the CLI, the experiment harness, the bench
suite, the sweep engine, and the examples — constructs simulations through
this module instead of wiring components by hand.  The legacy helpers
``repro.sim.runner.run_trace`` / ``run_benchmark`` still work but are
deprecation shims over :func:`run`.

Quickstart::

    from repro.api import RunSpec, ObsOptions, run

    out = run(RunSpec(scheme="IR-ORAM", workload="gcc", records=4000))
    print(out.cycles, out.result.breakdown.fractions())

    traced = run(RunSpec(
        scheme="Baseline", workload="mix",
        obs=ObsOptions(trace_out="trace.jsonl", metrics_out="metrics.json"),
    ))

Observability (``obs=``) never changes simulation results: traced runs are
cycle- and counter-bit-identical to untraced ones (see
:mod:`repro.obs.tracer`).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from . import stats_keys as sk
from .config import SystemConfig
from .errors import ConfigError
from .obs import (
    CallbackSink,
    JsonlSink,
    MemorySink,
    TraceEvent,
    Tracer,
)
from .sim.results import SimulationResult
from .stats import Stats
from .traces.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sim.persistence import CampaignJournal

#: named platform configurations accepted by :attr:`RunSpec.config_name`
CONFIG_NAMES = ("scaled", "paper", "tiny")


@dataclass(frozen=True)
class ObsOptions:
    """What to observe during a run (all off by default).

    ``trace_out`` streams every event to a JSONL file; ``ring_size`` keeps
    the most recent events in memory (:meth:`RunResult.events`);
    ``callback`` receives every event live; ``progress_every`` emits a
    progress snapshot every N issued paths; ``metrics_out`` writes the
    final :class:`~repro.stats.Stats` registry as JSON.

    ``audit`` attaches the online
    :class:`~repro.validate.invariants.InvariantAuditor`, sweeping the
    protocol invariants every ``audit_every`` issued paths (0 = the
    auditor's default cadence).  The ``REPRO_AUDIT`` environment knob
    overrides both for every run in the process: unset/``0`` off, ``1``
    on at the default cadence, any larger integer on at that cadence.
    Audited runs stay cycle- and counter-bit-identical to unaudited
    ones; a violation raises :class:`~repro.errors.AuditError`.
    """

    trace_out: Optional[str] = None
    metrics_out: Optional[str] = None
    ring_size: int = 0
    progress_every: int = 0
    callback: Optional[Callable[[TraceEvent], None]] = None
    audit: bool = False
    audit_every: int = 0

    @property
    def tracing(self) -> bool:
        """Does this configuration need a live event tracer?"""
        return bool(
            self.trace_out
            or self.ring_size
            or self.progress_every
            or self.callback is not None
        )

    @property
    def enabled(self) -> bool:
        return self.tracing or self.metrics_out is not None


@dataclass(frozen=True)
class RunSpec:
    """One fully specified simulation.

    ``config`` wins when given; otherwise ``config_name`` (+ ``levels``
    for the scaled platform) selects a named platform.  ``trace`` runs a
    pre-built :class:`~repro.traces.trace.Trace` instead of generating the
    named ``workload``.  Specs are frozen, comparable, and picklable (with
    the exception of ``obs.callback``), so they fan out across worker
    processes unchanged.
    """

    scheme: str = "Baseline"
    workload: str = "mix"
    records: int = 4000
    seed: int = 7
    config: Optional[SystemConfig] = None
    config_name: str = "scaled"
    levels: Optional[int] = None
    jobs: int = 1
    utilization_snapshots: int = 0
    trace: Optional[Trace] = None
    obs: ObsOptions = ObsOptions()

    def resolve_config(self) -> SystemConfig:
        """The platform this spec runs on."""
        if self.config is not None:
            return self.config
        if self.config_name == "scaled":
            if self.levels is not None:
                return SystemConfig.scaled(levels=self.levels)
            return SystemConfig.scaled()
        if self.config_name == "paper":
            return SystemConfig.paper()
        if self.config_name == "tiny":
            if self.levels is not None:
                return SystemConfig.tiny(levels=self.levels)
            return SystemConfig.tiny()
        raise ConfigError(
            f"unknown config name {self.config_name!r}; "
            f"options: {CONFIG_NAMES}"
        )

    def with_obs(self, obs: ObsOptions) -> "RunSpec":
        return replace(self, obs=obs)


@dataclass
class RunResult:
    """A finished run: the simulation result plus everything observed."""

    spec: RunSpec
    result: SimulationResult
    stats: Stats
    wall_s: float

    # -- convenience views -------------------------------------------------
    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def breakdown(self):
        return self.result.breakdown

    @property
    def counters(self) -> Dict[str, float]:
        return self.result.counters

    def events(self) -> List[TraceEvent]:
        """Events retained by the in-memory ring (``obs.ring_size``)."""
        tracer = self.stats.tracer
        return tracer.memory_events() if tracer is not None else []

    def metrics_json(self, indent: Optional[int] = None) -> str:
        return self.stats.to_json(indent=indent)

    def prometheus_text(self, prefix: str = "repro") -> str:
        return self.stats.to_prometheus_text(prefix=prefix)


def _audit_options(obs: ObsOptions):
    """Resolve the audit request: ``(enabled, cadence-or-None)``.

    ``REPRO_AUDIT`` wins over the spec so CI (and the warm-pool workers,
    which re-read the environment) can force auditing on without touching
    call sites: unset/``"0"``/``""`` defers to the spec, ``"1"`` enables
    at the default cadence, ``N > 1`` enables at cadence ``N``.
    """
    raw = os.environ.get("REPRO_AUDIT", "").strip()
    if raw and raw != "0":
        try:
            value = int(raw)
        except ValueError:
            value = 1
        return True, (value if value > 1 else None)
    return obs.audit, (obs.audit_every or None)


def _build_tracer(obs: ObsOptions) -> Optional[Tracer]:
    if not obs.tracing:
        return None
    tracer = Tracer(progress_every=obs.progress_every)
    if obs.trace_out:
        tracer.add_sink(JsonlSink(obs.trace_out))
    if obs.ring_size:
        tracer.add_sink(MemorySink(capacity=obs.ring_size))
    if obs.callback is not None:
        tracer.add_sink(CallbackSink(obs.callback))
    return tracer


def _chain_slot_observer(controller, observe: Callable) -> None:
    """Append ``observe`` to the controller's slot-observer chain."""
    previous = controller.slot_observer
    if previous is None:
        controller.slot_observer = observe
    else:
        def chained(result, _previous=previous, _observe=observe):
            _previous(result)
            _observe(result)

        controller.slot_observer = chained


def run(
    spec: RunSpec,
    artifacts=None,
    checkpoint_every: int = 0,
    checkpoint_path: Optional[str] = None,
    checkpoint_limit: int = 0,
) -> RunResult:
    """Run one :class:`RunSpec` to completion.

    ``artifacts`` is an optional :class:`repro.perf.engine.ArtifactCache`
    supplying pre-built config-derived artifacts (workload traces, subtree
    layouts, DRAM triple tables).  Everything it caches is a pure function
    of the config and seed, so injected runs are cycle- and counter-
    bit-identical to cold ones; the cache's hit/miss deltas are recorded
    into :attr:`RunResult.stats` under ``engine.*`` *after* the simulation
    result snapshots its counters, keeping ``result.counters`` clean.

    ``checkpoint_every=N`` writes a resumable mid-run checkpoint to
    ``checkpoint_path`` every N issued paths (``checkpoint_limit`` bounds
    how many; each write replaces the last).  Checkpointing follows the
    same bit-identity contract as observability: a checkpointed run — and
    a run resumed from any of its checkpoints via :func:`resume_run` —
    produces exactly the cycles and counters of an uninterrupted one.
    """
    # Imported here: the scheme zoo and trace generators are heavy, and
    # several modules import repro.api at module load.
    from .core.schemes import build_scheme
    from .sim.runner import make_workload
    from .sim.simulator import Simulator

    start = time.perf_counter()
    config = spec.resolve_config()
    engine_before = dict(artifacts.counters) if artifacts is not None else {}
    if spec.trace is not None:
        trace = spec.trace
    elif artifacts is not None:
        trace = artifacts.trace_for(
            spec.workload, config, spec.records, spec.seed
        )
    else:
        trace = make_workload(spec.workload, config, spec.records, spec.seed)
    stats = Stats()
    tracer = _build_tracer(spec.obs)
    if tracer is not None:
        stats.tracer = tracer
    components = build_scheme(spec.scheme, config, stats, random.Random(spec.seed))
    if artifacts is not None:
        artifacts.attach(components.controller)
    audit, audit_every = _audit_options(spec.obs)
    auditor = None
    if audit:
        from .validate.invariants import attach_auditor

        auditor = attach_auditor(
            components,
            every=audit_every,
            check_rate=config.oram.timing_protection,
        )
    simulator = Simulator(components, trace)
    manager = None
    if checkpoint_every:
        from .sim.checkpoint import CheckpointManager

        if not checkpoint_path:
            raise ConfigError(
                "checkpoint_every requires a checkpoint_path to write to"
            )
        # The frozen spec drops obs: callbacks don't pickle, and a resumed
        # run attaches its own observability anyway.
        manager = CheckpointManager(
            checkpoint_every,
            checkpoint_path,
            spec=spec.with_obs(ObsOptions()),
            limit=checkpoint_limit,
        )
        _chain_slot_observer(components.controller, manager.observe)
        simulator.checkpointer = manager
    try:
        result = simulator.run(
            utilization_snapshots=spec.utilization_snapshots
        )
        if auditor is not None:
            auditor.final_check(result)
    finally:
        if tracer is not None:
            tracer.close()
    if artifacts is not None:
        # Recorded after the Simulator snapshots result.counters, so the
        # engine's bookkeeping never leaks into simulation results.
        for key, value in artifacts.counters.items():
            delta = value - engine_before.get(key, 0)
            if delta:
                stats.set(key, delta)
    if manager is not None and manager.saves:
        # Same post-snapshot rule as the engine counters above.
        stats.set(sk.CHECKPOINT_SAVES, manager.saves)
    _record_batch_counters(components.controller, stats)
    if spec.obs.metrics_out:
        with open(spec.obs.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(stats.to_json(indent=1))
            handle.write("\n")
    return RunResult(spec, result, stats, time.perf_counter() - start)


def _record_batch_counters(controller, stats: Stats) -> None:
    """Surface ``engine.batch.*`` bookkeeping after the result snapshot.

    Batch execution stats describe *how* the run executed, never what it
    simulated, so — like the artifact-cache counters — they are recorded
    only after :class:`SimulationResult` has snapshotted ``counters``.
    """
    batch = getattr(controller, "batch_counters", None)
    if batch:
        for key, value in batch.items():
            stats.set(key, value)


def run_many(
    specs: Sequence[RunSpec], jobs: Optional[int] = None
) -> List[RunResult]:
    """Run independent specs, fanned out over worker processes.

    ``jobs`` defaults to the maximum ``spec.jobs`` across the batch.
    Results come back in input order and are bit-identical to a serial
    loop (each spec carries its own seed).  Specs with an
    ``obs.callback`` cannot cross process boundaries; run those serially.
    With ``jobs > 1`` in-memory ring events are dropped on the way back
    (tracers do not pickle); use ``trace_out`` files instead.

    Execution goes through the warm-pool engine
    (:mod:`repro.perf.engine`): workers persist across calls, config-
    derived artifacts are cached per process, and specs dispatch
    longest-expected-first so stragglers start early.
    """
    from .perf.engine import engine_map, run_spec_warm, spec_cost

    specs = list(specs)
    if jobs is None:
        jobs = max((spec.jobs for spec in specs), default=1)
    return engine_map(run_spec_warm, specs, jobs=jobs, cost=spec_cost)


def resume_run(
    checkpoint: str, obs: Optional[ObsOptions] = None
) -> RunResult:
    """Resume a run from a mid-stream checkpoint written by :func:`run`.

    The restored simulator continues from the exact inter-slot boundary
    the checkpoint froze and finishes with cycles and counters
    bit-identical to the uninterrupted run.  Observability is re-attached
    fresh (``obs`` overrides the checkpointed spec's options), and the
    run keeps checkpointing on its original cadence and path.
    """
    from .sim.checkpoint import load_checkpoint

    start = time.perf_counter()
    payload = load_checkpoint(checkpoint)
    simulator = payload.sim
    spec = payload.spec if payload.spec is not None else RunSpec()
    if obs is not None:
        spec = spec.with_obs(obs)
    stats = simulator.stats
    tracer = _build_tracer(spec.obs)
    if tracer is not None:
        stats.tracer = tracer
    audit, audit_every = _audit_options(spec.obs)
    auditor = None
    if audit:
        from .validate.invariants import attach_auditor

        auditor = attach_auditor(
            simulator.components,
            every=audit_every,
            check_rate=simulator.components.config.oram.timing_protection,
        )
    manager = simulator.checkpointer
    if manager is not None:
        # Observers are stripped on pickling; re-join the chain so the
        # resumed run keeps checkpointing where the original left off.
        _chain_slot_observer(simulator.controller, manager.observe)
    try:
        result = simulator.resume()
        if auditor is not None:
            auditor.final_check(result)
    finally:
        if tracer is not None:
            tracer.close()
    if manager is not None and manager.saves:
        stats.set(sk.CHECKPOINT_SAVES, manager.saves)
    _record_batch_counters(simulator.controller, stats)
    if spec.obs.metrics_out:
        with open(spec.obs.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(stats.to_json(indent=1))
            handle.write("\n")
    return RunResult(spec, result, stats, time.perf_counter() - start)


def campaign_key(spec: RunSpec) -> str:
    """Stable journal key identifying what a spec computes.

    Only inputs that change simulation results participate; observability
    and job-count knobs do not.
    """
    config = spec.resolve_config()
    return "|".join((
        spec.scheme,
        spec.workload,
        str(spec.records),
        str(spec.seed),
        config.fingerprint(),
    ))


def run_campaign(
    specs: Sequence[RunSpec],
    journal: Union[str, "CampaignJournal"],
    jobs: int = 1,
) -> List[SimulationResult]:
    """Run a batch of specs with crash-resumable journaling.

    Each finished point is appended to ``journal`` (a path or a
    :class:`~repro.sim.persistence.CampaignJournal`) before the next one
    is awaited; re-running the same campaign after a crash skips every
    journaled point and simulates only the remainder.  Results return in
    input order regardless of how many came from the journal.
    """
    from .perf.engine import engine_map, run_spec_warm, spec_cost
    from .sim.persistence import CampaignJournal

    if not isinstance(journal, CampaignJournal):
        journal = CampaignJournal(journal)
    specs = list(specs)
    keys = [campaign_key(spec) for spec in specs]
    todo = [
        (index, spec)
        for index, (key, spec) in enumerate(zip(keys, specs))
        if not journal.done(key)
    ]
    fresh = engine_map(
        run_spec_warm, [spec for _, spec in todo], jobs=jobs, cost=spec_cost
    )
    for (index, _), out in zip(todo, fresh):
        journal.record(keys[index], out.result)
    return [journal.get(key) for key in keys]


def sweep(
    parameter: str,
    values: Sequence[Any],
    scheme: str = "Baseline",
    workload: str = "mix",
    config: Optional[SystemConfig] = None,
    records: int = 3000,
    seed: int = 7,
    jobs: int = 1,
):
    """Sweep one platform knob; see :func:`repro.analysis.sweep.sweep_parameter`."""
    from .analysis.sweep import sweep_parameter

    return sweep_parameter(
        parameter,
        values,
        scheme=scheme,
        workload=workload,
        config=config,
        records=records,
        seed=seed,
        jobs=jobs,
    )


def bench(
    smoke: bool = False,
    jobs: int = 1,
    seed: int = 7,
    trace_out: Optional[str] = None,
    profile: bool = False,
) -> Dict[str, object]:
    """Run the performance suite; see :func:`repro.perf.bench.run_bench`."""
    from .perf.bench import run_bench

    return run_bench(
        smoke=smoke, jobs=jobs, seed=seed, trace_out=trace_out,
        profile=profile,
    )


def summarize_trace(path: str) -> Dict[str, Any]:
    """Aggregate a JSONL trace file (``repro inspect``)."""
    from .obs.inspect import summarize_trace as _summarize

    return _summarize(path)


__all__ = [
    "CONFIG_NAMES",
    "ObsOptions",
    "RunSpec",
    "RunResult",
    "run",
    "resume_run",
    "run_many",
    "run_campaign",
    "campaign_key",
    "sweep",
    "bench",
    "summarize_trace",
]
