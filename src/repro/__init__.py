"""IR-ORAM: Path Access Type Based Memory Intensity Reduction for Path-ORAM.

A full reproduction of the HPCA 2022 paper by Raoufi, Zhang, and Yang:
a trace-driven secure-memory simulator (Path ORAM + Freecursive + subtree
layout + background eviction + timing-channel protection over a bank-level
DRAM model) with the paper's three contributions — IR-Alloc, IR-Stash, and
IR-DWB — and the comparison baselines (dedicated-tree-top Baseline, Rho,
LLC-D).

Quickstart::

    from repro import RunSpec, run

    out = run(RunSpec(scheme="IR-ORAM", workload="gcc"))
    print(out.cycles, out.result.path_type_distribution())

The :mod:`repro.api` facade is the entry point for every kind of run
(single runs, batches, sweeps, the bench suite); observability — event
tracing, metrics export, cycle breakdowns — is switched on per run with
:class:`repro.api.ObsOptions`.  The legacy ``run_trace``/``run_benchmark``
helpers still work but emit :class:`DeprecationWarning`.
"""

from . import api
from .api import ObsOptions, RunResult, RunSpec, run, run_many
from .config import (
    CacheConfig,
    CPUConfig,
    DRAMConfig,
    ORAMConfig,
    SystemConfig,
)
from .core.ir_alloc import (
    PAPER_ALLOC_CONFIGS,
    AllocPlan,
    apply_alloc_plan,
    find_z_allocation,
    scale_plan,
)
from .core.ir_dwb import DWBEngine
from .core.ir_stash import SStash
from .core.schemes import SCHEMES, Scheme, build_scheme
from .errors import (
    ConfigError,
    ProtocolError,
    ReproError,
    StashOverflowError,
    TraceError,
)
from .oram.controller import PathORAMController
from .oram.types import PathType
from .security.obliviousness import (
    AccessRecorder,
    ObliviousnessReport,
    check_obliviousness,
)
from .sim.results import SimulationResult
from .sim.runner import make_workload, run_benchmark, run_trace
from .sim.simulator import Simulator
from .stats import Stats
from .traces.benchmarks import BENCHMARKS, BenchmarkModel, benchmark_trace
from .traces.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "api",
    "RunSpec",
    "RunResult",
    "ObsOptions",
    "run",
    "run_many",
    "SystemConfig",
    "ORAMConfig",
    "DRAMConfig",
    "CacheConfig",
    "CPUConfig",
    "PathORAMController",
    "PathType",
    "SCHEMES",
    "Scheme",
    "build_scheme",
    "SStash",
    "DWBEngine",
    "AllocPlan",
    "PAPER_ALLOC_CONFIGS",
    "apply_alloc_plan",
    "scale_plan",
    "find_z_allocation",
    "Simulator",
    "SimulationResult",
    "run_trace",
    "run_benchmark",
    "make_workload",
    "Trace",
    "BENCHMARKS",
    "BenchmarkModel",
    "benchmark_trace",
    "AccessRecorder",
    "ObliviousnessReport",
    "check_obliviousness",
    "Stats",
    "ReproError",
    "ConfigError",
    "ProtocolError",
    "StashOverflowError",
    "TraceError",
]
