"""Exception hierarchy for the IR-ORAM reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class ProtocolError(ReproError):
    """The ORAM protocol reached a state that should be impossible."""


class StashOverflowError(ProtocolError):
    """The stash exceeded its hard capacity with background eviction disabled.

    Path ORAM without background eviction fails if the stash overflows
    (Stefanov et al.).  Ren et al.'s background eviction converts this
    correctness problem into a performance trade-off; this error is only
    raised when eviction is explicitly disabled.
    """


class TraceError(ReproError):
    """A memory trace is malformed or exhausted unexpectedly."""


class CheckpointError(ReproError):
    """A simulator checkpoint could not be written, read, or resumed.

    Raised for torn or truncated checkpoint files, format-version
    mismatches, and checkpoints taken by a different build of the
    simulator (the recorded code salt no longer matches) — resuming any
    of those could silently produce numbers that differ from the
    uninterrupted run, so loading fails loudly instead.
    """


class EngineFaultError(ReproError):
    """A supervised engine task kept failing after every recovery path.

    The warm-pool engine retries crashed tasks, respawns broken pools,
    and finally degrades to serial in-process execution; this error means
    a task still failed (or hung) after the retry budget was exhausted,
    so the failure is deterministic rather than operational.
    """


class AuditError(ReproError):
    """A conformance invariant failed during an audited run.

    Raised by :mod:`repro.validate` — the online invariant auditor, the
    differential oracle, and the golden-corpus checker — when the
    simulator's observable state stops being a Path ORAM (block lost or
    duplicated, residency broken, stash bound exceeded, timing-channel
    rate violated, Merkle root unstable, or cycle attribution not summing
    to the run's cycles).
    """
