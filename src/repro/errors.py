"""Exception hierarchy for the IR-ORAM reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class ProtocolError(ReproError):
    """The ORAM protocol reached a state that should be impossible."""


class StashOverflowError(ProtocolError):
    """The stash exceeded its hard capacity with background eviction disabled.

    Path ORAM without background eviction fails if the stash overflows
    (Stefanov et al.).  Ren et al.'s background eviction converts this
    correctness problem into a performance trade-off; this error is only
    raised when eviction is explicitly disabled.
    """


class TraceError(ReproError):
    """A memory trace is malformed or exhausted unexpectedly."""


class AuditError(ReproError):
    """A conformance invariant failed during an audited run.

    Raised by :mod:`repro.validate` — the online invariant auditor, the
    differential oracle, and the golden-corpus checker — when the
    simulator's observable state stops being a Path ORAM (block lost or
    duplicated, residency broken, stash bound exceeded, timing-channel
    rate violated, Merkle root unstable, or cycle attribution not summing
    to the run's cycles).
    """
