"""Canonical names of every statistic the simulator records.

Every ``Stats.inc``/``bump``/``set``/``record`` call site imports its key
from this module instead of spelling a free-form string, so exporters,
tests, and the observability layer can enumerate what exists without
grepping for magic strings.  Keys are grouped by component namespace; the
part before the first dot is the namespace (``plb.reinserts`` lives in the
``plb`` namespace), which is what :meth:`repro.stats.Stats.namespaces`
and the Prometheus exporter group by.

Dynamic families (per path type, per request kind, per cache instance)
are exposed as helper functions next to their static siblings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .oram.types import PathType, RequestKind

# -- sim: whole-run aggregates ------------------------------------------------
SIM_CYCLES = "sim.cycles"
SIM_INSTRUCTIONS = "sim.instructions"

# -- init: one-time tree initialization --------------------------------------
INIT_OVERFLOW_BLOCKS = "init.overflow_blocks"

# -- requests: controller intake, one counter per RequestKind -----------------
REQUESTS_READ = "requests.read"
REQUESTS_WRITEBACK = "requests.wb"
REQUESTS_REINSERT = "requests.reinsert"


def requests_key(kind: "RequestKind") -> str:
    """Counter for one intake of request kind ``kind``."""
    return f"requests.{kind.value}"


# -- serve: requests completed without a path access --------------------------
SERVE_STASH_HITS = "serve.stash_hits"
SERVE_SSTASH_HITS = "serve.sstash_hits"
SERVE_TREETOP_HITS = "serve.treetop_hits"
SERVE_REINSERTS = "serve.reinserts"

# -- hit: histogram of where demand reads were found --------------------------
HIT_LEVEL = "hit.level"  # histogram: tree level, "stash", "sstash", ...

# -- translation --------------------------------------------------------------
TRANSLATION_COMPLETED = "translation.completed"

# -- plb: the PosMap lookaside buffer -----------------------------------------
PLB_LOOKUP_HITS = "plb.lookup_hits"
PLB_LOOKUP_MISSES = "plb.lookup_misses"
PLB_STASH_PROMOTIONS = "plb.stash_promotions"
PLB_TREETOP_PROMOTIONS = "plb.treetop_promotions"
PLB_DIRTY_EVICTIONS = "plb.dirty_evictions"
PLB_DEFERRED_REINSERTS = "plb.deferred_reinserts"
PLB_REINSERTS = "plb.reinserts"
PLB_MISS_FETCHES = "plb.miss_fetches"

# -- paths: issued path accesses by type --------------------------------------
PATHS_TOTAL = "paths.total"
PATHS_SMALL_TREE = "paths.small_tree"  # Rho: small-tree subset of the total


def paths_key(path_type: "PathType") -> str:
    """Counter for one issued path of ``path_type``."""
    return f"paths.{path_type.value}"


# -- mem: off-chip block traffic ----------------------------------------------
MEM_BLOCKS_READ = "mem.blocks_read"
MEM_BLOCKS_WRITTEN = "mem.blocks_written"


def mem_blocks_key(path_type: "PathType") -> str:
    """Blocks moved (read + written) on paths of ``path_type``."""
    return f"mem.blocks.{path_type.value}"


# -- treetop: the dedicated tree-top cache ------------------------------------
TREETOP_PLACED = "treetop.placed"
TREETOP_REMOVED = "treetop.removed"

# -- sstash: the IR-Stash double-indexed S-Stash ------------------------------
SSTASH_PROBE_HITS = "sstash.probe_hits"
SSTASH_PROBE_MISSES = "sstash.probe_misses"
SSTASH_PLACED = "sstash.placed"
SSTASH_REMOVED = "sstash.removed"
SSTASH_PLACEMENT_SKIPS = "sstash.placement_skips"

# -- migration: Fig. 5 write-phase placement classification -------------------
MIGRATION_PREEXISTING = "migration.preexisting"  # histogram: placement level
MIGRATION_FETCHED = "migration.fetched"          # histogram: placement level


def migration_key(origin: str) -> str:
    """Histogram for write-phase placements of ``origin`` blocks."""
    return f"migration.{origin}"


# -- eviction: background eviction (Ren et al.) -------------------------------
EVICTION_PATHS = "eviction.paths"
EVICTION_CYCLES = "eviction.cycles"
EVICTION_TRIGGERS = "eviction.triggers"
EVICTION_STORM_YIELDS = "eviction.storm_yields"

# -- posmap: recursion through PosMap1/PosMap2 --------------------------------
POSMAP_ACCESSES = "posmap.accesses"
POSMAP_WRITEBACK_PATHS = "posmap.writeback_paths"

# -- writeback: LLC dirty evictions through the ORAM --------------------------
WRITEBACK_PATHS = "writeback.paths"

# -- dwb: the IR-DWB dummy-to-writeback engine --------------------------------
DWB_CONVERTED_SLOTS = "dwb.converted_slots"
DWB_FLUSHES_STARTED = "dwb.flushes_started"
DWB_START_STAGE = "dwb.start_stage"  # histogram: pipeline stage at start
DWB_ABORTS = "dwb.aborts"
DWB_POSMAP_PATHS = "dwb.posmap_paths"
DWB_WRITEBACKS_COMPLETED = "dwb.writebacks_completed"

# -- llc / plb caches: per-instance SetAssocCache counters --------------------
LLC_HITS = "llc.hits"
LLC_MISSES = "llc.misses"
LLC_EVICTIONS = "llc.evictions"
LLC_DIRTY_EVICTIONS = "llc.dirty_evictions"
LLC_DWB_CANDIDATES_FOUND = "llc.dwb_candidates_found"
LLC_DWB_SEARCH_PAUSES = "llc.dwb_search_pauses"
PLB_HITS = "plb.hits"
PLB_MISSES = "plb.misses"
PLB_EVICTIONS = "plb.evictions"
PLB_CACHE_DIRTY_EVICTIONS = "plb.dirty_evictions"


def cache_key(name: str, metric: str) -> str:
    """Counter for a named :class:`SetAssocCache` instance.

    ``metric`` is one of ``hits``, ``misses``, ``evictions``,
    ``dirty_evictions``; ``name`` is the instance name (``llc``, ``plb``).
    """
    return f"{name}.{metric}"


# -- hierarchy: LLC-to-ORAM glue ----------------------------------------------
HIERARCHY_DEMAND_MISSES = "hierarchy.demand_misses"

# -- cpu: the trace-driven processor model ------------------------------------
CPU_STALL_CYCLES = "cpu.stall_cycles"
CPU_READ_MISSES_ISSUED = "cpu.read_misses_issued"
CPU_WRITE_MISSES_ISSUED = "cpu.write_misses_issued"
CPU_BLOCK_EVENTS = "cpu.block_events"

# -- dram: the bank-level timing model ----------------------------------------
DRAM_ACCESSES = "dram.accesses"
DRAM_ROW_HITS = "dram.row_hits"
DRAM_ROW_CONFLICTS = "dram.row_conflicts"
DRAM_READS = "dram.reads"
DRAM_WRITES = "dram.writes"

# -- rho: the two-tree Rho baseline -------------------------------------------
RHO_SMALL_HITS = "rho.small_hits"
RHO_SMALL_STASH_HITS = "rho.small_stash_hits"
RHO_SMALL_EVICTIONS = "rho.small_evictions"
RHO_SMALL_EVICTION_PATHS = "rho.small_eviction_paths"
RHO_SMALL_DUMMIES = "rho.small_dummies"
RHO_PROMOTIONS = "rho.promotions"
RHO_MAIN_REINSERTS = "rho.main_reinserts"
RHO_MAIN_ACCESSES = "rho.main_accesses"
RHO_EXTRACTIONS = "rho.extractions"

# -- ring: the Ring ORAM hot-tree family --------------------------------------
PATHS_RING_TREE = "paths.ring_tree"  # ring-tree subset of the total
RING_HITS = "ring.hits"
RING_STASH_HITS = "ring.stash_hits"
RING_EVICTIONS = "ring.evictions"
RING_EVICT_PATHS = "ring.evict_paths"
RING_EARLY_RESHUFFLES = "ring.early_reshuffles"
RING_XOR_RETURNS = "ring.xor_returns"
RING_DUMMIES = "ring.dummies"
RING_PROMOTIONS = "ring.promotions"
RING_MAIN_REINSERTS = "ring.main_reinserts"
RING_MAIN_ACCESSES = "ring.main_accesses"
RING_EXTRACTIONS = "ring.extractions"

# -- pyramid: the hierarchical Pyramid-style baseline -------------------------
PATHS_PYRAMID = "paths.pyramid"  # pyramid probe/reshuffle subset of the total
PYRAMID_HITS = "pyramid.hits"
PYRAMID_PROBE_DUMMIES = "pyramid.probe_dummies"
PYRAMID_RESHUFFLES = "pyramid.reshuffles"
PYRAMID_PROMOTIONS = "pyramid.promotions"
PYRAMID_SPILLS = "pyramid.spills"
PYRAMID_MAIN_ACCESSES = "pyramid.main_accesses"
PYRAMID_MAIN_REINSERTS = "pyramid.main_reinserts"

# -- engine: warm-pool execution engine + artifact cache ----------------------
ENGINE_LAYOUT_HITS = "engine.layout_hits"
ENGINE_LAYOUT_MISSES = "engine.layout_misses"
ENGINE_TRIPLES_HITS = "engine.triples_hits"
ENGINE_TRIPLES_MISSES = "engine.triples_misses"
ENGINE_TRIPLES_DISK_HITS = "engine.triples_disk_hits"
ENGINE_TRACE_HITS = "engine.trace_hits"
ENGINE_TRACE_MISSES = "engine.trace_misses"
ENGINE_TRACE_DISK_HITS = "engine.trace_disk_hits"
ENGINE_ZSEARCH_HITS = "engine.zsearch_hits"
ENGINE_ZSEARCH_MISSES = "engine.zsearch_misses"
ENGINE_POOL_STARTS = "engine.pool_starts"
ENGINE_POOL_REUSES = "engine.pool_reuses"
ENGINE_TASKS = "engine.tasks"

# -- engine supervision: worker failure handling (repro.perf.engine) ----------
# A retry is one re-dispatch of a task after a crash, hang, or worker
# exception; a respawn is one pool teardown+rebuild after a BrokenProcessPool
# or a hung worker; a timeout is one task exceeding its EWMA-scaled deadline;
# degraded counts engine_map calls that fell back to serial in-process
# execution after the pool repeatedly failed.  cache.corrupt counts artifact
# or prior files quarantined because they failed to load.
ENGINE_RETRIES = "engine.retries"
ENGINE_RESPAWNS = "engine.respawns"
ENGINE_TIMEOUTS = "engine.timeouts"
ENGINE_DEGRADED = "engine.degraded"
ENGINE_CACHE_CORRUPT = "engine.cache.corrupt"

# -- engine.batch: the whole-run native batch fastpath ------------------------
# calls counts run_batch kernel invocations; paths counts paths executed
# inside the kernel; fallback_paths counts paths executed by the
# pure-Python batch loop (natives off, unsupported tree-top, observers
# attached).  The *_ns keys attribute wall time inside the kernel to the
# protocol phases (RNG leaf draw, read-phase DRAM, stash fill, write
# placement, write-phase DRAM); they are only collected under
# ``repro bench --profile``.  All of these describe *execution*, never
# simulated behaviour: cycles and counters are identical with batching
# on or off.
ENGINE_BATCH_CALLS = "engine.batch.calls"
ENGINE_BATCH_PATHS = "engine.batch.paths"
ENGINE_BATCH_FALLBACK_PATHS = "engine.batch.fallback_paths"
ENGINE_BATCH_RNG_NS = "engine.batch.rng_ns"
ENGINE_BATCH_READ_DRAM_NS = "engine.batch.read_dram_ns"
ENGINE_BATCH_STASH_NS = "engine.batch.stash_ns"
ENGINE_BATCH_PLACE_NS = "engine.batch.place_ns"
ENGINE_BATCH_WRITE_DRAM_NS = "engine.batch.write_dram_ns"

# -- decouple: Palermo-style read/write phase decoupling ----------------------
# deferred_writes counts write phases queued behind later read phases by
# the Decoupled scheme's controller (repro.oram.decoupled).
DECOUPLE_DEFERRED_WRITES = "decouple.deferred_writes"

# -- checkpoint: mid-run simulator snapshots (repro.sim.checkpoint) -----------
CHECKPOINT_SAVES = "checkpoint.saves"

# -- audit: the online conformance auditor (repro.validate) -------------------
# These keys live in the auditor's *private* Stats registry, never in the
# run's own — audited runs stay counter-bit-identical to unaudited ones.
AUDIT_CHECKS = "audit.checks"
AUDIT_PATHS_OBSERVED = "audit.paths_observed"
AUDIT_BLOCKS_VERIFIED = "audit.blocks_verified"

# -- integrity: the Merkle-style integrity checker ----------------------------
INTEGRITY_PATH_UPDATES = "integrity.path_updates"
INTEGRITY_PATH_VERIFICATIONS = "integrity.path_verifications"
INTEGRITY_VIOLATIONS = "integrity.violations"
INTEGRITY_RING_UPDATES = "integrity.ring_updates"
INTEGRITY_RING_VERIFICATIONS = "integrity.ring_verifications"
INTEGRITY_RING_VIOLATIONS = "integrity.ring_violations"
INTEGRITY_RING_RECOVERIES = "integrity.ring_recoveries"

# -- series keys (Stats.record) -----------------------------------------------
TREE_UTILIZATION = "tree.utilization"
OBS_PROGRESS = "obs.progress"


def all_static_keys() -> List[str]:
    """Every static key constant defined in this module (sorted, unique).

    Deduplicated: a key may back more than one constant (the PLB's own
    ``plb.dirty_evictions`` and the ``cache_key("plb", "dirty_evictions")``
    instance counter name the same registry slot on purpose).
    """
    return sorted({
        value
        for name, value in globals().items()
        if name.isupper() and isinstance(value, str)
    })


def keys_by_namespace() -> Dict[str, List[str]]:
    """Static keys grouped by their namespace (the part before the dot)."""
    grouped: Dict[str, List[str]] = {}
    for key in all_static_keys():
        grouped.setdefault(key.split(".", 1)[0], []).append(key)
    return grouped
