"""The event tracer threaded through the simulator's components.

One :class:`Tracer` serves a whole run.  It is attached to the run's
:class:`~repro.stats.Stats` registry (``stats.tracer``) before the scheme
is built, so every component that already holds the shared stats object
can observe without any constructor changes.  Instrumentation sites all
follow the same guard::

    tracer = self.stats.tracer
    if tracer is not None:
        tracer.emit(events.PATH_READ, now, leaf=leaf, ...)

With no tracer attached (the default) the cost is one attribute read and
a falsy check; events are never constructed, and a traced run is
cycle/counter bit-identical to an untraced one because observation never
touches the RNG or any model state.

Components that know only a point in state space but not the clock (the
stash's high-water mark, for instance) use :attr:`Tracer.now`, which the
controller refreshes at every issue slot.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .events import TraceEvent
from .sinks import MemorySink, TraceSink


class Tracer:
    """Fans events out to a list of sinks."""

    def __init__(
        self,
        sinks: Optional[Sequence[TraceSink]] = None,
        progress_every: int = 0,
    ) -> None:
        self.sinks: List[TraceSink] = list(sinks) if sinks else []
        #: emit a PROGRESS snapshot every N issued paths (0 disables)
        self.progress_every = progress_every
        #: last issue-slot cycle, for components without a clock
        self.now = 0
        self.events_emitted = 0

    def add_sink(self, sink: TraceSink) -> None:
        self.sinks.append(sink)

    def emit(self, kind: str, cycle: int, **data: Any) -> None:
        """Build one event and hand it to every sink."""
        event = TraceEvent(kind=kind, cycle=cycle, data=data)
        self.events_emitted += 1
        for sink in self.sinks:
            sink.emit(event)

    def memory_events(self) -> List[TraceEvent]:
        """Events retained by the first memory sink (empty if none)."""
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.events()
        return []

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
