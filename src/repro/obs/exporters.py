"""Metrics export: Stats registries to Prometheus text and JSON.

The exporters are duck-typed over anything with ``counters``,
``histograms``, and ``series`` mappings (i.e. :class:`repro.stats.Stats`),
so they impose no import dependency on the stats module itself.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional

_METRIC_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_SANITIZE = re.compile(r"(\\|\n|\")")


def metric_name(key: str, prefix: str = "repro") -> str:
    """A stats key as a legal Prometheus metric name.

    ``plb.lookup_hits`` becomes ``repro_plb_lookup_hits``.
    """
    return f"{prefix}_{_METRIC_SANITIZE.sub('_', key)}"


def _label_value(bucket: Any) -> str:
    return _LABEL_SANITIZE.sub("", str(bucket))


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(stats: Any, prefix: str = "repro") -> str:
    """Render counters and histograms in Prometheus exposition format.

    Counters become ``<prefix>_<key> <value>`` gauges; histogram buckets
    become one sample per bucket with a ``bucket`` label.  Series are
    omitted (they are trace-shaped, not gauge-shaped).
    """
    lines = []
    for key in sorted(stats.counters):
        name = metric_name(key, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(stats.counters[key])}")
    for key in sorted(stats.histograms):
        name = metric_name(key, prefix)
        lines.append(f"# TYPE {name} counter")
        hist = stats.histograms[key]
        for bucket in sorted(hist, key=str):
            lines.append(
                f'{name}{{bucket="{_label_value(bucket)}"}} '
                f"{_format_value(hist[bucket])}"
            )
    return "\n".join(lines) + "\n"


def to_json_dict(stats: Any) -> Dict[str, Any]:
    """A JSON-ready dictionary of every recorded statistic."""
    return {
        "counters": dict(sorted(stats.counters.items())),
        "histograms": {
            key: {str(bucket): value for bucket, value in hist.items()}
            for key, hist in sorted(stats.histograms.items())
        },
        "series": {
            key: [[time, value] for time, value in points]
            for key, points in sorted(stats.series.items())
        },
    }


def to_json(stats: Any, indent: Optional[int] = None) -> str:
    """Serialize :func:`to_json_dict` (series values must be JSON-able)."""
    return json.dumps(to_json_dict(stats), indent=indent, sort_keys=True)
