"""Pluggable destinations for trace events.

A sink receives every :class:`~repro.obs.events.TraceEvent` the tracer
emits.  Three are provided:

* :class:`MemorySink`   — a bounded ring buffer of the most recent events;
* :class:`JsonlSink`    — newline-delimited JSON to a file (the format
  ``repro inspect`` summarizes);
* :class:`CallbackSink` — hand each event to a user callable.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, List, Optional

from ..errors import ConfigError
from .events import TraceEvent


class TraceSink:
    """Interface: receives events until :meth:`close`."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class MemorySink(TraceSink):
    """Ring buffer keeping the most recent ``capacity`` events.

    On overflow the oldest events are dropped silently; ``dropped`` counts
    how many, so consumers can tell a complete trace from a truncated one.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ConfigError("MemorySink capacity must be positive")
        self.capacity = capacity
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self.total_emitted += 1
        self._buffer.append(event)

    @property
    def dropped(self) -> int:
        return self.total_emitted - len(self._buffer)

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._buffer)


class JsonlSink(TraceSink):
    """Writes one JSON object per event to ``path`` (JSONL)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self.count += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class CallbackSink(TraceSink):
    """Forwards each event to ``callback(event)``."""

    def __init__(self, callback: Callable[[TraceEvent], None]) -> None:
        self.callback = callback

    def emit(self, event: TraceEvent) -> None:
        self.callback(event)


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load every event from a :class:`JsonlSink` file."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
