"""Summarize a JSONL trace file (the ``repro inspect`` subcommand).

Streams the file once and aggregates the figures an operator wants first:
event volume by kind, the cycle span covered, path counts and DRAM-phase
cycles by path type, access-latency percentiles, DRAM row-buffer behaviour,
and the stash high-water mark.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from typing import Any, Dict, List

from ..errors import ReproError
from . import events as ev


def summarize_trace(path: str) -> Dict[str, Any]:
    """Aggregate one JSONL trace file into a summary dictionary."""
    by_kind: Counter = Counter()
    paths_by_type: Counter = Counter()
    read_cycles_by_type: Dict[str, int] = defaultdict(int)
    write_cycles_by_type: Dict[str, int] = defaultdict(int)
    latencies: List[int] = []
    dram_accesses = 0
    dram_row_hits = 0
    dram_row_conflicts = 0
    plb_hits = 0
    plb_misses = 0
    stash_hwm = 0
    first_cycle = None
    last_cycle = 0
    total = 0

    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                kind = payload["kind"]
                cycle = int(payload["cycle"])
            except (ValueError, KeyError, TypeError) as exc:
                raise ReproError(
                    f"{path}:{line_number}: not a trace event line ({exc})"
                ) from None
            total += 1
            by_kind[kind] += 1
            if first_cycle is None or cycle < first_cycle:
                first_cycle = cycle
            last_cycle = max(last_cycle, cycle, int(payload.get("finish", 0)))
            if kind == ev.PATH_READ:
                path_type = payload.get("path_type", "?")
                paths_by_type[path_type] += 1
                read_cycles_by_type[path_type] += (
                    int(payload.get("finish", cycle)) - cycle
                )
            elif kind == ev.PATH_WRITE:
                path_type = payload.get("path_type", "?")
                write_cycles_by_type[path_type] += (
                    int(payload.get("finish", cycle)) - cycle
                )
            elif kind == ev.ACCESS_END:
                latencies.append(int(payload.get("latency", 0)))
            elif kind == ev.DRAM_BATCH:
                dram_accesses += int(payload.get("accesses", 0))
                dram_row_hits += int(payload.get("row_hits", 0))
                dram_row_conflicts += int(payload.get("row_conflicts", 0))
            elif kind == ev.PLB_HIT:
                plb_hits += 1
            elif kind == ev.PLB_MISS:
                plb_misses += 1
            elif kind == ev.STASH_HWM:
                stash_hwm = max(stash_hwm, int(payload.get("occupancy", 0)))

    latencies.sort()
    return {
        "path": path,
        "events": total,
        "by_kind": dict(sorted(by_kind.items())),
        "first_cycle": first_cycle or 0,
        "last_cycle": last_cycle,
        "paths_by_type": dict(sorted(paths_by_type.items())),
        "read_cycles_by_type": dict(sorted(read_cycles_by_type.items())),
        "write_cycles_by_type": dict(sorted(write_cycles_by_type.items())),
        "accesses_completed": len(latencies),
        "latency": {
            "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "max": latencies[-1] if latencies else 0,
        },
        "dram": {
            "accesses": dram_accesses,
            "row_hits": dram_row_hits,
            "row_conflicts": dram_row_conflicts,
            "row_hit_rate": (
                dram_row_hits / dram_accesses if dram_accesses else 0.0
            ),
        },
        "plb": {"hits": plb_hits, "misses": plb_misses},
        "stash_high_water_mark": stash_hwm,
    }


def _percentile(sorted_values: List[int], fraction: float) -> int:
    if not sorted_values:
        return 0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def format_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_trace`."""
    lines = [
        f"trace    : {summary['path']}",
        f"events   : {summary['events']:,} "
        f"(cycles {summary['first_cycle']:,}..{summary['last_cycle']:,})",
        "by kind  : "
        + ", ".join(f"{k}={v:,}" for k, v in summary["by_kind"].items()),
    ]
    if summary["paths_by_type"]:
        lines.append("paths    : " + ", ".join(
            f"{k}={v:,}" for k, v in summary["paths_by_type"].items()
        ))
        busy = {
            key: summary["read_cycles_by_type"].get(key, 0)
            + summary["write_cycles_by_type"].get(key, 0)
            for key in summary["paths_by_type"]
        }
        lines.append("busy cyc : " + ", ".join(
            f"{k}={v:,}" for k, v in busy.items()
        ))
    if summary["accesses_completed"]:
        latency = summary["latency"]
        lines.append(
            f"latency  : n={summary['accesses_completed']:,} "
            f"mean={latency['mean']:.0f} p50={latency['p50']} "
            f"p95={latency['p95']} max={latency['max']}"
        )
    dram = summary["dram"]
    if dram["accesses"]:
        lines.append(
            f"dram     : {dram['accesses']:,} accesses, "
            f"row-hit rate {dram['row_hit_rate']:.1%}, "
            f"{dram['row_conflicts']:,} conflicts"
        )
    plb = summary["plb"]
    if plb["hits"] or plb["misses"]:
        lines.append(f"plb      : {plb['hits']:,} hits, {plb['misses']:,} misses")
    if summary["stash_high_water_mark"]:
        lines.append(f"stash hwm: {summary['stash_high_water_mark']}")
    return "\n".join(lines)
