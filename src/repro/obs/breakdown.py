"""Per-component cycle attribution for one simulation run.

The simulator's timeline is a sequence of non-overlapping path-access
intervals (the controller issues at most one path per slot and the clock
always advances past the previous write phase).  That makes an exact
wall-clock decomposition possible:

* every issued path contributes its DRAM read phase and write phase,
  bucketed by path type (demand data, PosMap recursion, dummy slots,
  background eviction, IR-DWB conversions);
* the window after a path's write phase during which the timing-channel
  defense forbids the next issue slot counts as a *timing stall*;
* everything else — the processor computing, the request queue empty —
  is *idle* time from the memory system's point of view.

All components are clipped to the run's reported cycle count (trailing
eviction or dummy paths can outlive the last demand completion that
defines ``SimulationResult.cycles``), so the invariant

    sum(breakdown.components().values()) == breakdown.total == result.cycles

holds for every scheme; the test suite asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..oram.types import PathType

#: path types folded into the "dummy" bucket (timing-defense filler slots)
_DUMMY_TYPES = (PathType.DUMMY.value, PathType.DWB.value)
_POSMAP_TYPES = (PathType.POS1.value, PathType.POS2.value)


@dataclass
class CycleBreakdown:
    """Where one run's cycles went.  All values are CPU cycles."""

    total: int = 0
    #: DRAM read-phase cycles of demand-data paths
    data_read: int = 0
    #: DRAM write-phase cycles of demand-data paths
    data_write: int = 0
    #: read + write cycles of PosMap recursion paths (PT_p)
    posmap_read: int = 0
    posmap_write: int = 0
    #: read + write cycles of dummy slots (PT_m, incl. IR-DWB conversions)
    dummy_read: int = 0
    dummy_write: int = 0
    #: read + write cycles of background-eviction paths
    eviction_read: int = 0
    eviction_write: int = 0
    #: cycles the issue-rate defense kept the controller from issuing
    timing_stall: int = 0
    #: cycles with no path in flight and no forced stall (compute, empty queue)
    idle: int = 0

    def components(self) -> Dict[str, int]:
        """Every component; values sum to :attr:`total` exactly."""
        return {
            "data_read": self.data_read,
            "data_write": self.data_write,
            "posmap_read": self.posmap_read,
            "posmap_write": self.posmap_write,
            "dummy_read": self.dummy_read,
            "dummy_write": self.dummy_write,
            "eviction_read": self.eviction_read,
            "eviction_write": self.eviction_write,
            "timing_stall": self.timing_stall,
            "idle": self.idle,
        }

    def fractions(self) -> Dict[str, float]:
        if self.total == 0:
            return {key: 0.0 for key in self.components()}
        return {
            key: value / self.total for key, value in self.components().items()
        }

    def to_dict(self) -> Dict[str, int]:
        payload = dict(self.components())
        payload["total"] = self.total
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, int]) -> "CycleBreakdown":
        return CycleBreakdown(**{k: int(v) for k, v in payload.items()})


class CycleAttribution:
    """Accumulates path intervals during a run; finalized once cycles are known.

    The simulator records every issued path as
    ``(path_type, start, finish_read, finish_write, stall_until)`` where
    ``stall_until`` is the earliest cycle the *next* slot may issue (the
    timing-protection boundary; equal to ``finish_write`` when the defense
    is off).  Intervals arrive in timeline order and never overlap.
    """

    def __init__(self) -> None:
        self._types: List[str] = []
        self._bounds: List[int] = []  # flat [start, fr, fw, stall_until, ...]

    def on_path(
        self,
        path_type: str,
        start: int,
        finish_read: int,
        finish_write: int,
        stall_until: int,
    ) -> None:
        self._types.append(path_type)
        self._bounds.extend((start, finish_read, finish_write, stall_until))

    def finalize(self, cycles: int) -> CycleBreakdown:
        """Clip the recorded timeline to ``[0, cycles]`` and bucket it."""
        breakdown = CycleBreakdown(total=cycles)
        bounds = self._bounds
        cursor = 0
        stall_until = 0
        for index, path_type in enumerate(self._types):
            base = 4 * index
            start = min(bounds[base], cycles)
            finish_read = min(bounds[base + 1], cycles)
            finish_write = min(bounds[base + 2], cycles)
            cursor = self._account_gap(breakdown, cursor, stall_until, start)
            read = finish_read - start
            write = finish_write - finish_read
            if path_type == PathType.DATA.value:
                breakdown.data_read += read
                breakdown.data_write += write
            elif path_type in _POSMAP_TYPES:
                breakdown.posmap_read += read
                breakdown.posmap_write += write
            elif path_type in _DUMMY_TYPES:
                breakdown.dummy_read += read
                breakdown.dummy_write += write
            else:  # eviction
                breakdown.eviction_read += read
                breakdown.eviction_write += write
            cursor = finish_write
            stall_until = bounds[base + 3]
        self._account_gap(breakdown, cursor, stall_until, cycles)
        return breakdown

    @staticmethod
    def _account_gap(
        breakdown: CycleBreakdown, cursor: int, stall_until: int, end: int
    ) -> int:
        """Split ``[cursor, end]`` into timing stall then idle."""
        if end <= cursor:
            return cursor
        stall_end = min(stall_until, end)
        if stall_end > cursor:
            breakdown.timing_stall += stall_end - cursor
            cursor = stall_end
        if end > cursor:
            breakdown.idle += end - cursor
        return end
