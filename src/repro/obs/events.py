"""Typed trace events emitted by the instrumented simulator.

Every event is a :class:`TraceEvent`: a ``kind`` drawn from the constants
below, the simulation ``cycle`` it describes, and a flat ``data`` payload
of JSON-serializable values.  The schema of each kind's payload is
documented in ``docs/observability.md`` and exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

# -- event kinds --------------------------------------------------------------
#: an LLC-to-ORAM request entered the controller queue
ACCESS_START = "access.start"
#: a request completed (payload carries end-to-end latency)
ACCESS_END = "access.end"
#: the read phase of one path access (payload: leaf, path_type, finish)
PATH_READ = "path.read"
#: the write phase of one path access (payload: leaf, path_type, finish)
PATH_WRITE = "path.write"
#: the stash reached a new high-water mark (payload: occupancy)
STASH_HWM = "stash.hwm"
#: one DRAM batch serviced (payload: accesses, row_hits, row_conflicts, write)
DRAM_BATCH = "dram.batch"
#: a PosMap lookup was satisfied by the PLB
PLB_HIT = "plb.hit"
#: a PosMap lookup missed the PLB (a full path access will follow)
PLB_MISS = "plb.miss"
#: a PosMap block fetched through a full ORAM path access
POSMAP_FETCH = "posmap.fetch"
#: a demand miss left the LLC for the ORAM controller
LLC_MISS = "llc.miss"
#: periodic progress snapshot (payload: paths, stash, in flight)
PROGRESS = "progress"
#: one online conformance audit completed (payload: audits, paths, blocks)
AUDIT = "audit"
#: a mid-run simulator checkpoint was written (payload: path, paths, saves)
CHECKPOINT_SAVED = "checkpoint.saved"
#: a supervised engine task was re-dispatched (payload: index, attempt, cause)
ENGINE_RETRY = "engine.retry"
#: the warm pool was torn down and rebuilt (payload: cause, inflight)
ENGINE_RESPAWN = "engine.respawn"
#: a task exceeded its EWMA-scaled deadline (payload: index, deadline_s)
ENGINE_TIMEOUT = "engine.timeout"
#: the engine gave up on the pool and fell back to serial execution
ENGINE_DEGRADED = "engine.degraded"

#: every kind above, in a stable documentation order
ALL_KINDS = (
    ACCESS_START,
    ACCESS_END,
    PATH_READ,
    PATH_WRITE,
    STASH_HWM,
    DRAM_BATCH,
    PLB_HIT,
    PLB_MISS,
    POSMAP_FETCH,
    LLC_MISS,
    PROGRESS,
    AUDIT,
    CHECKPOINT_SAVED,
    ENGINE_RETRY,
    ENGINE_RESPAWN,
    ENGINE_TIMEOUT,
    ENGINE_DEGRADED,
)


@dataclass
class TraceEvent:
    """One observation: what happened, when, and its details."""

    kind: str
    cycle: int
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form: ``{"kind": ..., "cycle": ..., **data}``."""
        payload = {"kind": self.kind, "cycle": self.cycle}
        payload.update(self.data)
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "TraceEvent":
        data = {
            key: value
            for key, value in payload.items()
            if key not in ("kind", "cycle")
        }
        return TraceEvent(
            kind=payload["kind"], cycle=int(payload["cycle"]), data=data
        )
