"""Structured observability: tracing, cycle attribution, metrics export.

See ``docs/observability.md`` for the event schema and usage; the
high-level entry point is :mod:`repro.api`, whose
:class:`~repro.api.ObsOptions` wires this package into a run.
"""

from . import events
from .breakdown import CycleAttribution, CycleBreakdown
from .events import ALL_KINDS, TraceEvent
from .exporters import metric_name, to_json, to_json_dict, to_prometheus_text
from .inspect import format_summary, summarize_trace
from .sinks import CallbackSink, JsonlSink, MemorySink, TraceSink, read_jsonl
from .tracer import Tracer

__all__ = [
    "events",
    "TraceEvent",
    "ALL_KINDS",
    "Tracer",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "CallbackSink",
    "read_jsonl",
    "CycleBreakdown",
    "CycleAttribution",
    "to_prometheus_text",
    "to_json",
    "to_json_dict",
    "metric_name",
    "summarize_trace",
    "format_summary",
]
