"""IR-DWB: converting dummy paths into early LLC write-backs (Section IV-D).

When the timing-channel defense would issue a dummy path, IR-DWB instead
spends the slot flushing a *dirty LRU* LLC line toward memory:

* a register ``Ptr`` (kept by the LLC's round-robin scanner) points at the
  candidate line;
* a register ``Stage`` counts the path accesses still needed: 3 when both
  PosMap1 and PosMap2 miss the PLB, 2 when only PosMap1 misses, 1 when the
  translation is free and only the data write remains;
* each converted slot performs one full path access and decrements
  ``Stage``; at 0 the LLC line is marked clean, so its later demand
  eviction costs nothing;
* the flush aborts when the line stops being its set's LRU, stops being
  dirty, or leaves the cache — partial progress still helps (the PLB is
  warm for the eventual write-back).

Externally every converted slot is still one fixed-shape path access at
the fixed rate: obliviousness is unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cache.llc import LastLevelCache
from .. import stats_keys as sk
from ..oram.controller import PathORAMController, SlotResult
from ..oram.types import PathType
from ..stats import Stats


class DWBEngine:
    """The Ptr/Stage state machine driving dummy-slot conversion."""

    def __init__(
        self,
        controller: PathORAMController,
        llc: LastLevelCache,
        stats: Optional[Stats] = None,
    ) -> None:
        self.controller = controller
        self.llc = llc
        self.stats = stats if stats is not None else controller.stats
        self.ptr: Optional[Tuple[int, int]] = None  # (set index, block)
        self.stage = 0

    # ------------------------------------------------------------------
    def dummy_slot(self, now: int) -> Optional[SlotResult]:
        """Use a dummy slot productively; ``None`` means "issue a plain dummy"."""
        if self.stage != 0 and self.ptr is not None:
            if self._still_valid():
                return self._advance(now)
            self._abort()
        candidate = self.llc.find_dirty_lru(now)
        if candidate is None:
            return None
        if not self.controller.posmap.is_mapped(candidate[1]):
            # A two-tree composition (Ring+IR-DWB) may hold the dirty
            # line's home block in its hot tree, where no main-tree
            # mapping exists to write through; spend the slot as a plain
            # dummy instead.  Single-tree schemes map every block, so
            # this never fires for them.
            return None
        self.ptr = candidate
        block = candidate[1]
        chain = self.controller._translation_chain(block)
        self.stage = 1 + len(chain)
        self.stats.inc(sk.DWB_FLUSHES_STARTED)
        self.stats.bump(sk.DWB_START_STAGE, self.stage)
        return self._advance(now)

    # ------------------------------------------------------------------
    def _still_valid(self) -> bool:
        _, block = self.ptr
        return self.llc.is_lru(block) and self.llc.is_dirty(block)

    def _abort(self) -> None:
        self.stats.inc(sk.DWB_ABORTS)
        self.ptr = None
        self.stage = 0

    def _advance(self, now: int) -> SlotResult:
        """Perform the next path access of the in-flight flush."""
        _, block = self.ptr
        controller = self.controller
        chain = controller._translation_chain(block)
        if chain:
            result = controller.fetch_posmap_block(chain[0], now)
            self.stage = 1 + len(controller._translation_chain(block))
            self.stats.inc(sk.DWB_POSMAP_PATHS)
            return result
        # Stage 1: write the dirty block itself through a full data access.
        result = controller.full_access(block, PathType.DATA, now)
        self.llc.mark_clean(block)
        self.ptr = None
        self.stage = 0
        self.stats.inc(sk.DWB_WRITEBACKS_COMPLETED)
        return result
