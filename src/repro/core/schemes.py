"""Composition of the schemes compared in Section VI.

Each scheme builds a complete memory system (LLC + ORAM controller with
the right tree-top structure, allocation, remap policy, and dummy-slot
engine) from a :class:`~repro.config.SystemConfig`:

* ``Baseline``       — Path ORAM + Freecursive + dedicated tree-top cache
  (top 10 of 25 levels at paper scale) + subtree layout + background
  eviction;
* ``Rho``            — the relaxed-hierarchical-ORAM state of the art;
* ``IR-Alloc``       — Baseline + the IR-Alloc4 allocation (PL=36);
* ``IR-Stash``       — Baseline with the tree top in the double-indexed
  S-Stash (4-way, as the paper selects);
* ``IR-DWB``         — Baseline + dummy-to-writeback conversion;
* ``IR-ORAM``        — all three (with the combined Z=2/Z=3 allocation);
* ``LLC-D``          — Baseline + delayed block remapping;
* ``IR-Stash+IR-Alloc (LLC-D)`` — the Fig. 11 configuration;
* ``Decoupled``      — Baseline with Palermo-style read/write phase
  decoupling (deferred write bursts overlap later read phases);
* ``Pyramid``        — Baseline paired with a small hierarchical bucket
  store under periodic oblivious reshuffles (the contrasting
  trusted-processor family the distinguisher harness evaluates);
* ``Ring``           — Baseline paired with a Ring ORAM hot tree
  (Z real + S dummy permuted slots, one-slot ReadPaths,
  reverse-lexicographic EvictPaths, early reshuffles);
* ``Ring+IR-DWB``    — Ring with idle main-tree dummy slots converted
  to early write-backs (the IR technique that composes unchanged —
  see DESIGN.md on why IR-Alloc's Z-search does not).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..cache.llc import LastLevelCache
from ..config import SystemConfig
from ..errors import ConfigError
from ..oram.controller import PathORAMController
from ..oram.decoupled import DecoupledPathORAMController
from ..oram.pyramid import PyramidController
from ..oram.rho import RhoController
from ..oram.ring import RingController
from ..stats import Stats
from .ir_alloc import PAPER_ALLOC_CONFIGS, apply_alloc_plan
from .ir_dwb import DWBEngine
from .ir_stash import SStash


@dataclass
class SimComponents:
    """Everything a simulation run needs, wired together."""

    config: SystemConfig
    controller: PathORAMController
    llc: LastLevelCache
    stats: Stats
    rng: random.Random


BuilderFn = Callable[[SystemConfig, Stats, random.Random], SimComponents]


@dataclass(frozen=True)
class Scheme:
    """A named system composition."""

    name: str
    description: str
    builder: BuilderFn

    def build(
        self,
        config: SystemConfig,
        stats: Optional[Stats] = None,
        rng: Optional[random.Random] = None,
    ) -> SimComponents:
        stats = stats if stats is not None else Stats()
        rng = rng if rng is not None else random.Random(config.seed)
        return self.builder(config, stats, rng)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _baseline(config: SystemConfig, stats: Stats, rng: random.Random,
              *, alloc: Optional[str] = None, sstash: bool = False,
              dwb: bool = False, delayed_remap: bool = False) -> SimComponents:
    if alloc is not None:
        config = config.with_oram(
            apply_alloc_plan(config.oram, PAPER_ALLOC_CONFIGS[alloc])
        )
    llc = LastLevelCache(config.llc, stats)
    treetop = SStash(config.oram, stats) if sstash else None
    controller = PathORAMController(
        config, stats, rng, treetop=treetop, delayed_remap=delayed_remap
    )
    if dwb:
        if delayed_remap:
            raise ConfigError(
                "IR-DWB requires the traditional remap policy (Section IV-D)"
            )
        controller.dwb = DWBEngine(controller, llc, stats)
    return SimComponents(config, controller, llc, stats, rng)


def _rho(config: SystemConfig, stats: Stats, rng: random.Random) -> SimComponents:
    llc = LastLevelCache(config.llc, stats)
    controller = RhoController(config, stats, rng)
    return SimComponents(config, controller, llc, stats, rng)


def _decoupled(
    config: SystemConfig, stats: Stats, rng: random.Random
) -> SimComponents:
    llc = LastLevelCache(config.llc, stats)
    controller = DecoupledPathORAMController(config, stats, rng)
    return SimComponents(config, controller, llc, stats, rng)


def _pyramid(
    config: SystemConfig, stats: Stats, rng: random.Random
) -> SimComponents:
    llc = LastLevelCache(config.llc, stats)
    controller = PyramidController(config, stats, rng)
    return SimComponents(config, controller, llc, stats, rng)


def _ring(config: SystemConfig, stats: Stats, rng: random.Random,
          *, dwb: bool = False) -> SimComponents:
    llc = LastLevelCache(config.llc, stats)
    controller = RingController(config, stats, rng)
    if dwb:
        controller.dwb = DWBEngine(controller, llc, stats)
    return SimComponents(config, controller, llc, stats, rng)


SCHEMES: Dict[str, Scheme] = {
    scheme.name: scheme
    for scheme in [
        Scheme(
            "Baseline",
            "Path ORAM + Freecursive + dedicated tree-top cache",
            lambda c, s, r: _baseline(c, s, r),
        ),
        Scheme(
            "Rho",
            "relaxed hierarchical ORAM (small hot tree, 1:2 pattern)",
            _rho,
        ),
        Scheme(
            "IR-Alloc",
            "Baseline + utilization-aware allocation (IR-Alloc4, PL=36)",
            lambda c, s, r: _baseline(c, s, r, alloc="IR-Alloc4"),
        ),
        Scheme(
            "IR-Stash",
            "Baseline with the double-indexed S-Stash tree top",
            lambda c, s, r: _baseline(c, s, r, sstash=True),
        ),
        Scheme(
            "IR-DWB",
            "Baseline + dummy-path conversion to early write-backs",
            lambda c, s, r: _baseline(c, s, r, dwb=True),
        ),
        Scheme(
            "IR-ORAM",
            "IR-Alloc + IR-Stash + IR-DWB (combined Z=2/3 allocation)",
            lambda c, s, r: _baseline(
                c, s, r, alloc="IR-ORAM", sstash=True, dwb=True
            ),
        ),
        Scheme(
            "LLC-D",
            "Baseline + delayed block remapping (Nagarajan et al.)",
            lambda c, s, r: _baseline(c, s, r, delayed_remap=True),
        ),
        Scheme(
            "IR-Stash+IR-Alloc(LLC-D)",
            "IR-Stash and IR-Alloc on top of an LLC-D baseline (Fig. 11)",
            lambda c, s, r: _baseline(
                c, s, r, alloc="IR-ORAM", sstash=True, delayed_remap=True
            ),
        ),
        Scheme(
            "Decoupled",
            "Baseline + Palermo-style read/write phase decoupling",
            _decoupled,
        ),
        Scheme(
            "Pyramid",
            "hierarchical bucket levels with periodic oblivious reshuffle",
            _pyramid,
        ),
        Scheme(
            "Ring",
            "Ring ORAM hot tree (Z+S permuted slots, one-slot reads)",
            _ring,
        ),
        Scheme(
            "Ring+IR-DWB",
            "Ring with idle main dummy slots converted to write-backs",
            lambda c, s, r: _ring(c, s, r, dwb=True),
        ),
        Scheme(
            "IR-Alloc1",
            "Section VI-B configuration 1 (PL=43)",
            lambda c, s, r: _baseline(c, s, r, alloc="IR-Alloc1"),
        ),
        Scheme(
            "IR-Alloc2",
            "Section VI-B configuration 2 (PL=42)",
            lambda c, s, r: _baseline(c, s, r, alloc="IR-Alloc2"),
        ),
        Scheme(
            "IR-Alloc3",
            "Section VI-B configuration 3 (PL=37)",
            lambda c, s, r: _baseline(c, s, r, alloc="IR-Alloc3"),
        ),
        Scheme(
            "IR-Alloc4",
            "Section VI-B configuration 4 (PL=36)",
            lambda c, s, r: _baseline(c, s, r, alloc="IR-Alloc4"),
        ),
    ]
}


def build_scheme(
    name: str,
    config: SystemConfig,
    stats: Optional[Stats] = None,
    rng: Optional[random.Random] = None,
) -> SimComponents:
    """Build a scheme by name (KeyError lists the valid names)."""
    try:
        scheme = SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {sorted(SCHEMES)}"
        ) from None
    return scheme.build(config, stats, rng)
