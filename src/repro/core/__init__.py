"""IR-ORAM: the paper's contribution — IR-Alloc, IR-Stash, and IR-DWB."""

from .ir_alloc import (
    PAPER_ALLOC_CONFIGS,
    AllocPlan,
    apply_alloc_plan,
    find_z_allocation,
    scale_plan,
)
from .ir_dwb import DWBEngine
from .ir_stash import SStash
from .schemes import SCHEMES, Scheme, SimComponents, build_scheme

__all__ = [
    "SStash",
    "DWBEngine",
    "AllocPlan",
    "PAPER_ALLOC_CONFIGS",
    "apply_alloc_plan",
    "scale_plan",
    "find_z_allocation",
    "Scheme",
    "SCHEMES",
    "SimComponents",
    "build_scheme",
]
