"""IR-Alloc: utilization-aware per-level bucket sizing (Section IV-B).

Middle tree levels run at low space utilization (Fig. 3), so their buckets
can shrink below the uniform Z=4 without hurting the protocol: each path
then moves fewer blocks, cutting the memory intensity of *every* path type.

This module provides:

* :class:`AllocPlan` — a set of ``(first_level, last_level, z)`` ranges
  over the paper-scale tree (L=25, top 10 levels cached);
* the four configurations of Section VI-B (``IR-Alloc1``..``IR-Alloc4``)
  plus the combined IR-ORAM allocation of Fig. 10;
* :func:`scale_plan` — proportional re-mapping of a plan onto a smaller
  tree (used by the scaled default experiments);
* :func:`find_z_allocation` — the paper's greedy, application-independent
  Z-search under the two constraints (space reduction within a budget,
  background-eviction increase within a budget) driven by random traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..config import ORAMConfig
from ..errors import ConfigError

#: (first_level, last_level, z) — inclusive level range, paper notation.
Range = Tuple[int, int, int]


@dataclass(frozen=True)
class AllocPlan:
    """A non-uniform allocation over a reference tree geometry."""

    name: str
    ranges: Tuple[Range, ...]
    levels: int = 25
    top_cached: int = 10
    default_z: int = 4

    def z_vector(self) -> Tuple[int, ...]:
        """Per-level bucket sizes over the reference geometry."""
        z = [self.default_z] * self.levels
        for first, last, value in self.ranges:
            if not self.top_cached <= first <= last < self.levels:
                raise ConfigError(f"range {first}..{last} outside tree")
            for level in range(first, last + 1):
                z[level] = value
        return tuple(z)

    def blocks_per_path(self) -> int:
        """PL: blocks fetched from memory per path (Section VI-B)."""
        z = self.z_vector()
        return sum(z[level] for level in range(self.top_cached, self.levels))


#: Section VI-B's explicit configurations.  ``IR-Alloc4`` is the standalone
#: "IR-Alloc" scheme of Fig. 10 (PL=36); the combined IR-ORAM configuration
#: uses the milder Z=2/Z=3 ranges (PL=43) because adding IR-Stash shifts
#: the background-eviction trade-off (the paper re-runs the search).
PAPER_ALLOC_CONFIGS: Dict[str, AllocPlan] = {
    "IR-Alloc1": AllocPlan("IR-Alloc1", ((10, 16, 2), (17, 19, 3))),
    "IR-Alloc2": AllocPlan("IR-Alloc2", ((10, 16, 2), (17, 18, 2))),
    "IR-Alloc3": AllocPlan("IR-Alloc3", ((10, 14, 1), (15, 18, 2))),
    "IR-Alloc4": AllocPlan("IR-Alloc4", ((10, 15, 1), (16, 18, 2))),
    "IR-ORAM": AllocPlan("IR-ORAM", ((10, 16, 2), (17, 19, 3))),
}


def scale_plan(plan: AllocPlan, levels: int, top_cached: int) -> Tuple[int, ...]:
    """Project a paper-scale plan onto a different tree geometry.

    Each memory level of the target tree is mapped to its proportional
    position within the reference tree's memory-level span and takes the Z
    value the plan assigns there.  Cached top levels keep the default Z
    (they live on chip; their memory allocation is irrelevant and the
    bucket structure is preserved for the tree-top store).
    """
    if levels < 2 or not 0 <= top_cached < levels:
        raise ConfigError("invalid target geometry")
    reference = plan.z_vector()
    ref_span = plan.levels - plan.top_cached
    span = levels - top_cached
    z: List[int] = [plan.default_z] * levels
    for level in range(top_cached, levels):
        frac = (level - top_cached) / span
        ref_level = plan.top_cached + min(ref_span - 1, int(frac * ref_span))
        z[level] = reference[ref_level]
    return tuple(z)


def apply_alloc_plan(config: ORAMConfig, plan: AllocPlan) -> ORAMConfig:
    """Return a copy of ``config`` with the plan's allocation applied.

    When the config's geometry matches the plan's reference geometry the
    plan applies directly; otherwise it is proportionally scaled.
    """
    if config.levels == plan.levels and config.top_cached_levels == plan.top_cached:
        vector = plan.z_vector()
    else:
        vector = scale_plan(plan, config.levels, config.top_cached_levels)
    return config.with_z_vector(vector)


# ----------------------------------------------------------------------
# the greedy Z-search
# ----------------------------------------------------------------------

#: evaluation callback: runs a random-trace simulation and reports
#: {"cycles": ..., "evictions": ...}
EvalFn = Callable[[ORAMConfig], Dict[str, float]]


def find_z_allocation(
    config: ORAMConfig,
    evaluate: EvalFn,
    max_space_reduction: float = 0.01,
    max_eviction_increase: float = 0.15,
    min_z: int = 1,
) -> ORAMConfig:
    """Greedy Z-search (Section IV-B).

    Starting from the uniform allocation, repeatedly try decrementing the
    bucket size of each memory level (keeping the vector non-decreasing
    from the cached top toward the leaves, as all the paper's plans are)
    and keep the best candidate that improves simulated random-trace
    performance while satisfying both constraints:

    * total slot loss vs the uniform tree stays within
      ``max_space_reduction``;
    * background evictions grow by at most ``max_eviction_increase`` over
      the uniform baseline.

    The search is application-independent: it only ever runs random traces
    (the worst case for middle-level utilization), exactly as the paper
    prescribes, and is run once per ORAM geometry.
    """
    baseline = evaluate(config)
    base_evictions = max(baseline["evictions"], 1.0)
    best_config = config
    best_cycles = baseline["cycles"]
    eviction_cap = base_evictions * (1.0 + max_eviction_increase)

    improved = True
    while improved:
        improved = False
        for candidate in _candidate_moves(best_config, min_z):
            if candidate.space_reduction_vs_uniform() > max_space_reduction:
                continue
            result = evaluate(candidate)
            if result["evictions"] > eviction_cap:
                continue
            if result["cycles"] < best_cycles:
                best_cycles = result["cycles"]
                best_config = candidate
                improved = True
                break
    return best_config


def _candidate_moves(config: ORAMConfig, min_z: int) -> Sequence[ORAMConfig]:
    """All single-level decrements preserving monotone non-decreasing Z."""
    z = list(config.z_per_level)
    top = config.top_cached_levels
    moves: List[ORAMConfig] = []
    for level in range(top, config.levels):
        if z[level] <= min_z:
            continue
        if level > top and z[level] - 1 < z[level - 1]:
            continue
        candidate = list(z)
        candidate[level] -= 1
        try:
            moves.append(config.with_z_vector(candidate))
        except ConfigError:
            continue
    return moves
