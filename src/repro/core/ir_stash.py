"""IR-Stash: the double-indexed set-associative sub-stash (Section IV-C).

The tree top is held in *S-Stash*, a set-associative structure indexed two
ways:

* by **block address** (hashed with MD5, as the paper specifies), so the
  LLC can ask "is block b on chip?" directly — eliminating the PosMap
  access that the dedicated-tree-top-cache baseline wastes whenever the
  requested block was sitting in the cached top;
* by **tree position** through the TT pointer table, so the ORAM
  controller can still walk the cached segment of a path bucket-by-bucket
  during read/write phases.

In the simulator the tree object itself stores top-level bucket contents
(that is the TT view); this class maintains the block-address index and
enforces the set-associativity constraint on placement: a block whose
target set is full is skipped for this write phase and retried later
("we skip picking this block for this round").
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Dict, Optional

from .. import stats_keys as sk
from ..config import ORAMConfig
from ..errors import ProtocolError
from ..oram.treetop import TreeTopCache
from ..stats import Stats


@lru_cache(maxsize=1 << 16)
def _md5_index(block: int, sets: int) -> int:
    """MD5-based set index, cached per (block, sets)."""
    digest = hashlib.md5(block.to_bytes(8, "little")).digest()
    return int.from_bytes(digest[:4], "little") % sets


class SStash(TreeTopCache):
    """Set-associative, double-indexed tree-top store."""

    addressable_by_block = True

    #: bits per TT pointer (the paper uses 12-bit pointers)
    POINTER_BITS = 12

    def __init__(
        self,
        config: ORAMConfig,
        stats: Optional[Stats] = None,
        ways: int = 4,
    ) -> None:
        super().__init__(config, stats)
        if ways < 1:
            raise ProtocolError("S-Stash needs at least one way")
        self.ways = ways
        capacity = self.capacity_entries()
        sets = max(1, capacity // ways)
        # round up to a power of two for clean indexing
        self.sets = 1 << (sets - 1).bit_length()
        self._set_count: Dict[int, int] = {}
        self._resident: Dict[int, int] = {}

    # -- block-address index -----------------------------------------------------
    def set_of(self, block: int) -> int:
        return _md5_index(block, self.sets)

    def lookup_by_address(self, block: int) -> bool:
        hit = block in self._resident
        self.stats.inc(sk.SSTASH_PROBE_HITS if hit else sk.SSTASH_PROBE_MISSES)
        return hit

    def resident_count(self) -> int:
        return len(self._resident)

    # -- placement constraint ---------------------------------------------------
    def may_place(self, block: int) -> bool:
        return self._set_count.get(self.set_of(block), 0) < self.ways

    def on_place(self, block: int) -> None:
        if block in self._resident:
            raise ProtocolError(f"block {block} already in S-Stash")
        index = self.set_of(block)
        count = self._set_count.get(index, 0)
        if count >= self.ways:
            raise ProtocolError(f"S-Stash set {index} overfull")
        self._set_count[index] = count + 1
        self._resident[block] = index
        self.stats.inc(sk.SSTASH_PLACED)

    def on_remove(self, block: int) -> None:
        index = self._resident.pop(block, None)
        if index is None:
            raise ProtocolError(f"block {block} not in S-Stash")
        self._set_count[index] -= 1
        if self._set_count[index] == 0:
            del self._set_count[index]
        self.stats.inc(sk.SSTASH_REMOVED)

    # -- overheads (Section VI-F) ------------------------------------------------
    def tt_table_bits(self) -> int:
        """Size of the TT pointer table keeping the tree structure."""
        buckets = (1 << self.levels) - 1
        max_z = max(
            (self.config.z_per_level[level] for level in range(self.levels)),
            default=0,
        )
        return buckets * max_z * self.POINTER_BITS

    def describe(self) -> str:
        return (
            f"S-Stash: top {self.levels} levels, {self.sets} sets x "
            f"{self.ways} ways, TT table {self.tt_table_bits() // 8} bytes"
        )
