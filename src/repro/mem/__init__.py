"""Off-chip memory subsystem: subtree-aware layout and DRAM timing model."""

from .dram import DRAMModel
from .layout import TreeLayout
from .request import MemAccess

__all__ = ["DRAMModel", "TreeLayout", "MemAccess"]
