"""Subtree-aware physical layout of the ORAM tree in DRAM.

Ren et al. observed that laying out the ORAM tree level-by-level destroys
DRAM row-buffer locality: consecutive levels of one path land in different
rows.  The *subtree layout* instead packs every k-level subtree contiguously
so that a path access touches one row per k levels.  The paper's Baseline
adopts this layout ("It also adopts the subtree layout to improve row buffer
hits"), so our DRAM model implements it faithfully, generalized to the
non-uniform per-level bucket sizes that IR-Alloc introduces.

Terminology used here:

* *bucket*: a tree node, identified by ``(level, position)`` with
  ``position`` in ``[0, 2**level)``, or by its heap index
  ``(1 << level) - 1 + position``.
* *slot*: one 64-byte block inside a bucket; bucket at level ``l`` has
  ``z_per_level[l]`` slots.
* *supernode*: a k-level subtree packed contiguously and row-aligned.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..config import DRAMConfig, ORAMConfig
from ..errors import ConfigError


class TreeLayout:
    """Maps ``(level, position, slot)`` tree coordinates to physical blocks.

    Only levels at or below ``oram.top_cached_levels`` are backed by memory;
    the cached top lives on chip (dedicated tree-top cache or S-Stash).
    Asking for the address of a cached-level slot is a programming error.
    """

    def __init__(
        self, oram: ORAMConfig, dram: DRAMConfig, base_row: int = 0
    ) -> None:
        self.oram = oram
        self.dram = dram
        self.base_row = base_row
        self.first_level = oram.top_cached_levels
        self.subtree_levels = self._pick_subtree_levels()
        self._build_tables()
        self._path_cache: dict = {}

    # -- construction -------------------------------------------------------
    def _pick_subtree_levels(self) -> int:
        """Largest k whose worst-case subtree fits in one DRAM row."""
        row_blocks = self.dram.row_blocks
        z_max = max(self.oram.z_per_level) if self.oram.z_per_level else 4
        z_max = max(z_max, 1)
        k = 1
        while ((1 << (k + 1)) - 1) * z_max <= row_blocks:
            k += 1
        return k

    def _build_tables(self) -> None:
        """Precompute per-superlevel slot offsets and row bases.

        Super level ``s`` groups tree levels
        ``[first_level + s*k, first_level + (s+1)*k)`` (clipped to the tree).
        Buckets at the same local depth share a bucket size, so one offset
        table per super level suffices.
        """
        oram, k = self.oram, self.subtree_levels
        depth = oram.levels - self.first_level
        if depth <= 0:
            raise ConfigError("layout requires at least one memory level")
        self.super_levels = (depth + k - 1) // k

        # slot offset of each local bucket (heap order) inside a supernode,
        # one table per super level.
        self.local_offsets: List[List[int]] = []
        self.supernode_slots: List[int] = []
        #: number of rows reserved per supernode of each super level
        self.supernode_rows: List[int] = []
        #: first row id of each super level's supernode array
        self.superlevel_row_base: List[int] = []

        row_blocks = self.dram.row_blocks
        row_cursor = self.base_row
        for s in range(self.super_levels):
            top = self.first_level + s * k
            local_depth = min(k, oram.levels - top)
            offsets: List[int] = []
            cursor = 0
            for r in range(local_depth):
                z = oram.z_per_level[top + r]
                for _ in range(1 << r):
                    offsets.append(cursor)
                    cursor += z
            self.local_offsets.append(offsets)
            self.supernode_slots.append(cursor)
            rows = max(1, -(-cursor // row_blocks))
            self.supernode_rows.append(rows)
            self.superlevel_row_base.append(row_cursor)
            # one supernode per bucket position at this super level's root
            row_cursor += rows * (1 << top)
        self.total_rows = row_cursor

        # Flat per-level lookup used by the path_addresses() hot path:
        # (leaf shift, Z, subtree depth r, local mask — doubling as the
        #  heap-index base (1 << r) - 1 — offsets table, supernode row
        #  base, rows per supernode).
        self._level_meta: List[tuple] = []
        for level in range(self.first_level, oram.levels):
            z = oram.z_per_level[level]
            if z == 0:
                continue
            rel = level - self.first_level
            s, r = divmod(rel, k)
            self._level_meta.append(
                (
                    oram.levels - 1 - level,
                    z,
                    r,
                    (1 << r) - 1,
                    self.local_offsets[s],
                    self.superlevel_row_base[s],
                    self.supernode_rows[s],
                )
            )

    # -- queries -------------------------------------------------------------
    def slot_address(self, level: int, position: int, slot: int) -> int:
        """Physical block address of one tree slot.

        Returns ``row_id * row_blocks + offset`` so that callers (and the
        DRAM model) can recover the row with one integer division.
        """
        k = self.subtree_levels
        if level < self.first_level or level >= self.oram.levels:
            raise ConfigError(f"level {level} is not backed by memory")
        z = self.oram.z_per_level[level]
        if not 0 <= slot < z:
            raise ConfigError(f"slot {slot} out of range for Z={z}")
        rel = level - self.first_level
        s, r = divmod(rel, k)
        # The supernode at super level s covering this bucket:
        supernode_pos = position >> r
        local_pos = position & ((1 << r) - 1)
        local_index = (1 << r) - 1 + local_pos
        row = (
            self.superlevel_row_base[s]
            + supernode_pos * self.supernode_rows[s]
        )
        offset = self.local_offsets[s][local_index] + slot
        row_blocks = self.dram.row_blocks
        return (row + offset // row_blocks) * row_blocks + offset % row_blocks

    def bucket_addresses(self, level: int, position: int) -> List[int]:
        """Physical block addresses of every slot in a bucket."""
        z = self.oram.z_per_level[level]
        return [self.slot_address(level, position, s) for s in range(z)]

    def path_addresses(self, leaf: int) -> List[int]:
        """Physical addresses of all memory-backed slots on a path.

        Returned in root-to-leaf order; within the subtree layout this order
        is already monotone per supernode, giving the row-hit behaviour the
        subtree layout exists for.
        """
        cached = self._path_cache.get(leaf)
        if cached is not None:
            return cached
        row_blocks = self.dram.row_blocks
        addrs: List[int] = []
        append = addrs.append
        for shift, z, r, mask, offsets, row_base, rows in self._level_meta:
            position = leaf >> shift
            offset = offsets[mask + (position & mask)]
            row = row_base + (position >> r) * rows
            for slot in range(z):
                combined = offset + slot
                append(
                    (row + combined // row_blocks) * row_blocks
                    + combined % row_blocks
                )
        if len(self._path_cache) >= 1 << 16:
            self._path_cache.clear()
        self._path_cache[leaf] = addrs
        return addrs

    def capacity_blocks(self) -> int:
        """Total physical blocks reserved (including row-alignment padding)."""
        return (self.total_rows - self.base_row) * self.dram.row_blocks

    def end_row(self) -> int:
        """First row beyond this layout's region."""
        return self.total_rows


def path_positions(levels: int, leaf: int) -> Sequence[Tuple[int, int]]:
    """The ``(level, position)`` pairs of the path to ``leaf`` (root first)."""
    return [(level, leaf >> (levels - 1 - level)) for level in range(levels)]
