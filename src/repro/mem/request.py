"""Block-granularity memory access descriptors exchanged with the DRAM model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemAccess:
    """One 64-byte block transfer to or from off-chip memory.

    ``phys_block`` is a physical block address produced by
    :class:`repro.mem.layout.TreeLayout` (tree slots) or by the plain linear
    region used for non-ORAM experiments.
    """

    phys_block: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.phys_block < 0:
            raise ValueError("physical block address must be non-negative")
