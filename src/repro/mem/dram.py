"""Cycle-approximate DRAM timing model (USIMM-like).

The paper evaluates with USIMM, a cycle-accurate DRAM simulator.  We model
the first-order behaviour USIMM provides to an ORAM study:

* per-channel data buses with burst occupancy;
* per-bank row buffers with activate/precharge penalties on row misses;
* bank-level parallelism within and across channels;
* a close-to-FR-FCFS effect obtained by servicing each path's accesses in
  address order (the subtree layout then yields row hits within supernodes).

The model is driven in *batches*: the ORAM controller hands over all block
accesses of one path phase at once and receives the cycle at which the
phase completes.  All public times are in CPU cycles (3.2 GHz); internal
state is kept in DRAM cycles (800 MHz).

Bank state is held in flat integer lists (``bank_ready``,
``bank_open_row`` with ``-1`` meaning closed, ``bus_free``) indexed by
``channel * banks_per_channel + bank``.  The batch-service inner loop runs
in the optional :mod:`repro.perf.native` C kernel when available, with a
bit-identical pure-Python fallback.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .. import stats_keys as sk
from ..config import DRAMConfig
from ..obs import events as ev
from ..perf.native import fastpath as _native
from ..stats import Stats
from .request import MemAccess

#: sentinel row id meaning "no row open in this bank"
_CLOSED = -1


class DRAMModel:
    """State-holding DRAM timing engine.

    Addressing: physical block address -> row via ``row_blocks``; rows are
    striped across channels first, then banks, so consecutive rows (and thus
    consecutive supernodes along a path) exploit channel parallelism.
    """

    def __init__(self, config: DRAMConfig, stats: Optional[Stats] = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        n_banks = config.channels * config.banks_per_channel
        self.bank_ready: List[int] = [0] * n_banks
        self.bank_open_row: List[int] = [_CLOSED] * n_banks
        self.bus_free: List[int] = [0] * config.channels

    # -- address decomposition ----------------------------------------------
    def decompose(self, phys_block: int) -> Tuple[int, int, int]:
        """Return ``(channel, bank, row)`` for a physical block address.

        Delegates to :meth:`decompose_batch` so the address-mapping
        arithmetic lives in exactly one place.
        """
        flat_bank, channel, row = self.decompose_batch((phys_block,))
        return channel, flat_bank - channel * self.config.banks_per_channel, row

    def decompose_batch(self, addresses: Iterable[int]) -> List[int]:
        """Pre-resolve addresses to a flat ``[bank, channel, row, ...]`` list.

        The triples use this model's flat bank indexing, so they stay valid
        across :meth:`reset_state` and can be cached by callers that service
        the same address batch repeatedly (path reads/writes).
        """
        cfg = self.config
        row_blocks = cfg.row_blocks
        channels = cfg.channels
        banks_per_channel = cfg.banks_per_channel
        flat: List[int] = []
        append = flat.append
        for phys_block in addresses:
            row = phys_block // row_blocks
            channel = row % channels
            append(channel * banks_per_channel + (row // channels) % banks_per_channel)
            append(channel)
            append(row)
        return flat

    # -- timing --------------------------------------------------------------
    def service_batch(self, accesses: Iterable[MemAccess], start_cycle: int) -> int:
        """Service a batch of block accesses; return the completion cycle.

        ``start_cycle`` and the return value are CPU cycles.  Accesses are
        serviced in the order given; callers wanting row-buffer locality
        should present them sorted by physical address (path reads from the
        subtree layout already are).
        """
        accesses = list(accesses)
        writes = sum(1 for access in accesses if access.is_write)
        if 0 < writes < len(accesses):
            # Mixed batch: split into maximal same-direction runs so the
            # per-direction counters stay exact while runs keep the
            # batch path's bank/bus pipelining.
            finish = start_cycle
            run: List[int] = []
            run_write = accesses[0].is_write
            for access in accesses:
                if access.is_write != run_write:
                    finish = self.service_addresses(run, run_write, finish)
                    run = []
                    run_write = access.is_write
                run.append(access.phys_block)
            return self.service_addresses(run, run_write, finish)
        addresses = [access.phys_block for access in accesses]
        return self.service_addresses(addresses, writes == len(addresses), start_cycle)

    def service_addresses(
        self, addresses: List[int], is_write: bool, start_cycle: int
    ) -> int:
        """Service raw physical block addresses in order."""
        return self.service_decomposed(
            self.decompose_batch(addresses), is_write, start_cycle
        )

    def service_decomposed(
        self, triples: List[int], is_write: bool, start_cycle: int
    ) -> int:
        """Hot path: service a pre-decomposed flat triple list.

        Timing-identical to :meth:`service_addresses` on the corresponding
        address list; callers cache the triples per path leaf.
        """
        cfg = self.config
        now_dram = -(-start_cycle // cfg.cpu_cycles_per_dram_cycle)
        if _native is not None:
            finish, row_hits, conflicts = _native.dram_service(
                triples,
                self.bank_ready,
                self.bank_open_row,
                self.bus_free,
                now_dram,
                cfg.t_rp,
                cfg.t_rcd,
                cfg.t_burst,
                cfg.t_cas + cfg.t_burst,
            )
        else:
            finish, row_hits, conflicts = self._service_py(triples, now_dram)
        count = len(triples) // 3
        counters = self.stats.counters
        counters[sk.DRAM_ACCESSES] += count
        counters[sk.DRAM_ROW_HITS] += row_hits
        counters[sk.DRAM_ROW_CONFLICTS] += conflicts
        counters[sk.DRAM_WRITES if is_write else sk.DRAM_READS] += count
        finish_cpu = finish * cfg.cpu_cycles_per_dram_cycle
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.DRAM_BATCH,
                start_cycle,
                accesses=count,
                row_hits=row_hits,
                row_conflicts=conflicts,
                write=is_write,
                finish=finish_cpu,
            )
        return finish_cpu

    def _service_py(
        self, triples: List[int], now_dram: int
    ) -> Tuple[int, int, int]:
        """Pure-Python batch service; the native kernel's oracle."""
        cfg = self.config
        finish = now_dram
        row_hits = 0
        conflicts = 0
        t_rp = cfg.t_rp
        t_rcd = cfg.t_rcd
        t_burst = cfg.t_burst
        cas_burst = cfg.t_cas + t_burst
        bus_free = self.bus_free
        ready = self.bank_ready
        open_row = self.bank_open_row
        for i in range(0, len(triples), 3):
            bank = triples[i]
            channel = triples[i + 1]
            row = triples[i + 2]
            t = ready[bank]
            free = bus_free[channel]
            if free > t:
                t = free
            if now_dram > t:
                t = now_dram
            current = open_row[bank]
            if current != row:
                if current != _CLOSED:
                    t += t_rp
                    conflicts += 1
                t += t_rcd
                open_row[bank] = row
            else:
                row_hits += 1
            # Column accesses pipeline: the next command can issue after
            # one burst slot; the data itself lands tCAS later.
            done = t + cas_burst
            next_slot = t + t_burst
            bus_free[channel] = next_slot
            ready[bank] = next_slot
            if done > finish:
                finish = done
        return finish, row_hits, conflicts

    def access_latency(self, access: MemAccess, start_cycle: int) -> int:
        """Service a single access; convenience wrapper over a batch of one."""
        return self.service_batch([access], start_cycle)

    # -- inspection -----------------------------------------------------------
    def row_hit_rate(self) -> float:
        hits = self.stats.get(sk.DRAM_ROW_HITS)
        total = self.stats.get(sk.DRAM_ACCESSES)
        return hits / total if total else 0.0

    def reset_state(self) -> None:
        """Close all rows and idle all buses; counters are preserved."""
        n_banks = len(self.bank_ready)
        self.bank_ready[:] = [0] * n_banks
        self.bank_open_row[:] = [_CLOSED] * n_banks
        self.bus_free[:] = [0] * self.config.channels


def batch_from_addresses(
    addresses: Iterable[int], is_write: bool
) -> List[MemAccess]:
    """Build a batch of :class:`MemAccess` from raw physical addresses."""
    return [MemAccess(addr, is_write) for addr in addresses]
