"""Cycle-approximate DRAM timing model (USIMM-like).

The paper evaluates with USIMM, a cycle-accurate DRAM simulator.  We model
the first-order behaviour USIMM provides to an ORAM study:

* per-channel data buses with burst occupancy;
* per-bank row buffers with activate/precharge penalties on row misses;
* bank-level parallelism within and across channels;
* a close-to-FR-FCFS effect obtained by servicing each path's accesses in
  address order (the subtree layout then yields row hits within supernodes).

The model is driven in *batches*: the ORAM controller hands over all block
accesses of one path phase at once and receives the cycle at which the
phase completes.  All public times are in CPU cycles (3.2 GHz); internal
state is kept in DRAM cycles (800 MHz).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..config import DRAMConfig
from ..stats import Stats
from .request import MemAccess


class _Bank:
    __slots__ = ("open_row", "ready")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready: int = 0


class DRAMModel:
    """State-holding DRAM timing engine.

    Addressing: physical block address -> row via ``row_blocks``; rows are
    striped across channels first, then banks, so consecutive rows (and thus
    consecutive supernodes along a path) exploit channel parallelism.
    """

    def __init__(self, config: DRAMConfig, stats: Optional[Stats] = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self._banks = [
            [_Bank() for _ in range(config.banks_per_channel)]
            for _ in range(config.channels)
        ]
        self._bus_free = [0] * config.channels

    # -- address decomposition ----------------------------------------------
    def decompose(self, phys_block: int) -> Tuple[int, int, int]:
        """Return ``(channel, bank, row)`` for a physical block address."""
        cfg = self.config
        row = phys_block // cfg.row_blocks
        channel = row % cfg.channels
        bank = (row // cfg.channels) % cfg.banks_per_channel
        return channel, bank, row

    # -- timing --------------------------------------------------------------
    def service_batch(self, accesses: Iterable[MemAccess], start_cycle: int) -> int:
        """Service a batch of block accesses; return the completion cycle.

        ``start_cycle`` and the return value are CPU cycles.  Accesses are
        serviced in the order given; callers wanting row-buffer locality
        should present them sorted by physical address (path reads from the
        subtree layout already are).
        """
        accesses = list(accesses)
        writes = sum(1 for access in accesses if access.is_write)
        addresses = [access.phys_block for access in accesses]
        is_write = writes == len(addresses)
        if 0 < writes < len(addresses):
            # Mixed batch: split to keep per-direction counters exact.
            finish = start_cycle
            for access in accesses:
                finish = self.service_addresses(
                    [access.phys_block], access.is_write, finish
                )
            return finish
        return self.service_addresses(addresses, is_write, start_cycle)

    def service_addresses(
        self, addresses: List[int], is_write: bool, start_cycle: int
    ) -> int:
        """Fast path: service raw physical block addresses in order."""
        cfg = self.config
        row_blocks = cfg.row_blocks
        channels = cfg.channels
        banks_per_channel = cfg.banks_per_channel
        now_dram = -(-start_cycle // cfg.cpu_cycles_per_dram_cycle)
        finish = now_dram
        row_hits = 0
        conflicts = 0
        cas_burst = cfg.t_cas + cfg.t_burst
        bus_free = self._bus_free
        for phys_block in addresses:
            row = phys_block // row_blocks
            channel = row % channels
            bank = self._banks[channel][(row // channels) % banks_per_channel]
            t = bank.ready
            free = bus_free[channel]
            if free > t:
                t = free
            if now_dram > t:
                t = now_dram
            if bank.open_row != row:
                if bank.open_row is not None:
                    t += cfg.t_rp
                    conflicts += 1
                t += cfg.t_rcd
                bank.open_row = row
            else:
                row_hits += 1
            # Column accesses pipeline: the next command can issue after
            # one burst slot; the data itself lands tCAS later.
            done = t + cas_burst
            next_slot = t + cfg.t_burst
            bus_free[channel] = next_slot
            bank.ready = next_slot
            if done > finish:
                finish = done
        count = len(addresses)
        self.stats.inc("dram.accesses", count)
        self.stats.inc("dram.row_hits", row_hits)
        self.stats.inc("dram.row_conflicts", conflicts)
        self.stats.inc("dram.writes" if is_write else "dram.reads", count)
        return finish * cfg.cpu_cycles_per_dram_cycle

    def access_latency(self, access: MemAccess, start_cycle: int) -> int:
        """Service a single access; convenience wrapper over a batch of one."""
        return self.service_batch([access], start_cycle)

    # -- inspection -----------------------------------------------------------
    def row_hit_rate(self) -> float:
        hits = self.stats.get("dram.row_hits")
        total = self.stats.get("dram.accesses")
        return hits / total if total else 0.0

    def reset_state(self) -> None:
        """Close all rows and idle all buses; counters are preserved."""
        for channel in self._banks:
            for bank in channel:
                bank.open_row = None
                bank.ready = 0
        self._bus_free = [0] * self.config.channels


def batch_from_addresses(
    addresses: Iterable[int], is_write: bool
) -> List[MemAccess]:
    """Build a batch of :class:`MemAccess` from raw physical addresses."""
    return [MemAccess(addr, is_write) for addr in addresses]
