"""A generic set-associative write-back cache with true-LRU replacement.

This is the substrate for the simulated LLC (Table I: 8-way, 2 MB) and for
the PLB.  Lines are identified by block address (cache-line granularity);
no data payload is simulated — only presence and dirtiness, which is all
the ORAM study needs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .. import stats_keys as sk
from ..config import CacheConfig
from ..stats import Stats


@dataclass(frozen=True)
class EvictedLine:
    """A line pushed out of the cache by a fill."""

    block: int
    dirty: bool


class SetAssocCache:
    """Set-associative cache; each set is an LRU-ordered mapping.

    The OrderedDict for a set maps ``block -> dirty`` with least recently
    used first, most recently used last.
    """

    def __init__(
        self,
        config: CacheConfig,
        stats: Optional[Stats] = None,
        name: str = "cache",
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self._sets: Tuple[OrderedDict, ...] = tuple(
            OrderedDict() for _ in range(config.sets)
        )

    # -- indexing -------------------------------------------------------------
    def set_index(self, block: int) -> int:
        return block & (self.config.sets - 1)

    def _set(self, block: int) -> "OrderedDict[int, bool]":
        return self._sets[self.set_index(block)]

    # -- core operations --------------------------------------------------------
    def access(self, block: int, is_write: bool) -> Tuple[bool, Optional[EvictedLine]]:
        """Reference ``block``; allocate on miss.

        Returns ``(hit, evicted)`` where ``evicted`` describes the victim
        line if the fill displaced one.
        """
        lines = self._set(block)
        if block in lines:
            lines.move_to_end(block)
            if is_write:
                lines[block] = True
            self.stats.inc(sk.cache_key(self.name, "hits"))
            return True, None
        self.stats.inc(sk.cache_key(self.name, "misses"))
        evicted = self._fill(lines, block, is_write)
        return False, evicted

    def _fill(
        self, lines: "OrderedDict[int, bool]", block: int, dirty: bool
    ) -> Optional[EvictedLine]:
        evicted = None
        if len(lines) >= self.config.ways:
            victim, victim_dirty = lines.popitem(last=False)
            evicted = EvictedLine(victim, victim_dirty)
            self.stats.inc(sk.cache_key(self.name, "evictions"))
            if victim_dirty:
                self.stats.inc(sk.cache_key(self.name, "dirty_evictions"))
        lines[block] = dirty
        return evicted

    def insert(self, block: int, dirty: bool) -> Optional[EvictedLine]:
        """Install a line without counting a hit/miss (e.g. a prefetch fill)."""
        lines = self._set(block)
        if block in lines:
            lines.move_to_end(block)
            lines[block] = lines[block] or dirty
            return None
        return self._fill(lines, block, dirty)

    def probe(self, block: int) -> bool:
        """Check presence without touching LRU state."""
        return block in self._set(block)

    def is_dirty(self, block: int) -> bool:
        lines = self._set(block)
        return lines.get(block, False)

    def mark_clean(self, block: int) -> None:
        """Clear the dirty bit (used by early write-back)."""
        lines = self._set(block)
        if block in lines:
            # Preserve LRU position: direct assignment does not reorder.
            lines[block] = False

    def invalidate(self, block: int) -> Optional[EvictedLine]:
        """Drop a line; returns its state if it was present."""
        lines = self._set(block)
        if block in lines:
            dirty = lines.pop(block)
            return EvictedLine(block, dirty)
        return None

    # -- LRU inspection -----------------------------------------------------------
    def lru_line(self, set_index: int) -> Optional[Tuple[int, bool]]:
        """The ``(block, dirty)`` of the LRU line of a set, if any."""
        lines = self._sets[set_index]
        if not lines:
            return None
        block = next(iter(lines))
        return block, lines[block]

    def is_lru(self, block: int) -> bool:
        """True when ``block`` is present and is its set's LRU line."""
        lines = self._set(block)
        return bool(lines) and next(iter(lines)) == block

    # -- statistics ------------------------------------------------------------------
    def occupancy(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def dirty_count(self) -> int:
        return sum(sum(1 for d in lines.values() if d) for lines in self._sets)

    def contents(self) -> Dict[int, bool]:
        """Snapshot of all resident lines (block -> dirty)."""
        snapshot: Dict[int, bool] = {}
        for lines in self._sets:
            snapshot.update(lines)
        return snapshot
