"""On-chip caches: a generic set-associative write-back cache and the LLC."""

from .cache import EvictedLine, SetAssocCache
from .llc import LastLevelCache

__all__ = ["SetAssocCache", "EvictedLine", "LastLevelCache"]
