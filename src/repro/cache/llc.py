"""The last-level cache, with the dirty-LRU scan machinery IR-DWB relies on.

Beyond a plain set-associative cache, the LLC exposes the small state
machine of Section IV-D: a register ``Ptr`` that round-robins across cache
sets looking for a *dirty LRU* line (autonomous eager-writeback style, Lee
et al.).  IR-DWB locks the pointed line while its staged write-back is in
flight and aborts if the line stops being the LRU or is evicted.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .. import stats_keys as sk
from ..config import CacheConfig
from ..stats import Stats
from .cache import EvictedLine, SetAssocCache


class LastLevelCache(SetAssocCache):
    """LLC with round-robin dirty-LRU candidate search."""

    #: cycles to pause after a full fruitless sweep (Section IV-D)
    SEARCH_PAUSE = 1000

    def __init__(self, config: CacheConfig, stats: Optional[Stats] = None) -> None:
        super().__init__(config, stats, name="llc")
        self._scan_set = 0
        self._paused_until = 0

    def find_dirty_lru(
        self, now: int, max_sets: Optional[int] = None
    ) -> Optional[Tuple[int, int]]:
        """Round-robin search for a dirty LRU line.

        Returns ``(set_index, block)`` of the first dirty LRU found starting
        from the scan cursor, advancing the cursor past it.  Scans at most
        ``max_sets`` sets (default: one full sweep).  If the sweep finds
        nothing, the search pauses for :data:`SEARCH_PAUSE` cycles and
        restarts from a pseudo-random set, as the paper describes.
        """
        if now < self._paused_until:
            return None
        sets = self.config.sets
        budget = sets if max_sets is None else min(max_sets, sets)
        for _ in range(budget):
            index = self._scan_set
            self._scan_set = (self._scan_set + 1) % sets
            lru = self.lru_line(index)
            if lru is not None and lru[1]:
                self.stats.inc(sk.LLC_DWB_CANDIDATES_FOUND)
                return index, lru[0]
        if budget >= sets:
            # A full fruitless sweep pauses the search and restarts it from
            # a deterministic pseudo-random set (reproducible simulation).
            self._paused_until = now + self.SEARCH_PAUSE
            self._scan_set = (now * 2654435761) % sets
            self.stats.inc(sk.LLC_DWB_SEARCH_PAUSES)
        return None

    def evict_for_writeback(self, block: int) -> Optional[EvictedLine]:
        """Remove a line as part of a demand replacement (normal eviction)."""
        return self.invalidate(block)
