"""Conformance subsystem: online invariant auditing, differential
oracles, the golden-run corpus, and a seed-replayable fuzzer.

Three pillars (see ``docs/validation.md``):

- :class:`InvariantAuditor` / :func:`attach_auditor` — online protocol
  invariant sweeps riding the controller's slot observer hook, bit-
  identical to unaudited runs (enable per run via
  ``ObsOptions(audit=True)`` or globally via ``REPRO_AUDIT``).
- :mod:`repro.validate.oracle` — the functional reference model run
  lockstep against every scheme, plus serial-vs-parallel engine
  equivalence.
- :mod:`repro.validate.golden` + :mod:`repro.validate.fuzz` — the
  committed golden corpus and the shrinking fuzzer behind
  ``repro validate --check/--regen/--fuzz``.
- :mod:`repro.validate.chaos` — seed-replayable fault injection
  (worker crashes, hangs, torn caches) proving the supervised engine
  recovers bit-identical to the serial loop
  (``repro validate --chaos``; see ``docs/resilience.md``).
- :mod:`repro.validate.distinguish` — the adversarial trace
  indistinguishability game with its mutation-testing mutant registry
  (``repro validate --distinguish``; see ``docs/security.md``).
"""

from ..errors import AuditError
from .chaos import ChaosPlan, ChaosWorker, run_chaos, tear_cache_files
from .distinguish import (
    DistinguisherReport,
    DistinguishSpec,
    SuiteReport,
    run_game,
    run_suite,
)
from .invariants import DEFAULT_CADENCE, AuditReport, InvariantAuditor, attach_auditor
from .oracle import (
    ReferenceORAM,
    drive_lockstep,
    engine_equivalence,
    generate_ops,
    zoo_lockstep,
)

__all__ = [
    "AuditError",
    "AuditReport",
    "ChaosPlan",
    "ChaosWorker",
    "DistinguishSpec",
    "DistinguisherReport",
    "SuiteReport",
    "run_game",
    "run_suite",
    "run_chaos",
    "tear_cache_files",
    "DEFAULT_CADENCE",
    "InvariantAuditor",
    "attach_auditor",
    "ReferenceORAM",
    "drive_lockstep",
    "engine_equivalence",
    "generate_ops",
    "zoo_lockstep",
]
