"""Differential oracle: a functional ORAM reference model run lockstep.

The reference model is deliberately tiny: a dictionary over the user
namespace where a read returns the last value written.  Driving it
lockstep against a real scheme proves the *functional* contract — every
request is served, no block is lost or duplicated while serving it — with
the :class:`~repro.validate.invariants.InvariantAuditor` sweeping the
physical machine after every operation.  Blocks that legitimately leave
the ORAM (LLC-D's delayed remapping) are served by an LLC surrogate with
the same last-value semantics, so the *same* operation stream applies to
every scheme in the zoo and their read sequences must agree bit for bit.

A second oracle axis goes through the warm-pool engine
(:func:`engine_equivalence`): the same specs run serially and with
``--jobs > 1`` must produce identical cycles and counters.  Combined with
CI running the golden check both natively and with ``REPRO_FASTPATH=0``,
this covers the cross-jobs and fastpath-vs-pure-Python legs of the
differential oracle.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..errors import AuditError
from ..oram.types import Request, RequestKind
from ..stats import Stats
from .invariants import attach_auditor

#: controller steps allowed per request before the oracle declares livelock
STEP_GUARD = 400

#: one operation: ("access" | "idle", block seed, is_write)
Op = Tuple[str, int, bool]


class ReferenceORAM:
    """Functional reference: read returns the last value written.

    Values are operation sequence numbers, not payloads — the simulator
    carries block IDs only, so the oracle tracks *which write* each read
    must observe rather than bytes.
    """

    def __init__(self) -> None:
        self._values: Dict[int, int] = {}

    def write(self, block: int, value: int) -> None:
        self._values[block] = value

    def read(self, block: int) -> int:
        return self._values.get(block, 0)

    def state(self) -> Dict[int, int]:
        return dict(self._values)


@dataclass
class LockstepResult:
    """One scheme's transcript of a lockstep drive."""

    scheme: str
    ops_applied: int
    served: int
    onchip: int
    paths: int
    audits: int
    reads: List[Tuple[int, int]] = field(default_factory=list)

    def read_digest(self) -> str:
        payload = repr(self.reads).encode()
        return hashlib.sha256(payload).hexdigest()[:16]


def generate_ops(
    count: int, user_blocks: int, seed: int, idle_fraction: float = 0.2
) -> List[Op]:
    """A deterministic random operation stream over a user namespace."""
    rng = random.Random(seed)
    ops: List[Op] = []
    for _ in range(count):
        if rng.random() < idle_fraction:
            ops.append(("idle", 0, False))
        else:
            ops.append(
                ("access", rng.randrange(user_blocks), rng.random() < 0.4)
            )
    return ops


def drive_lockstep(
    scheme: str,
    ops: Sequence[Op],
    config: Optional[SystemConfig] = None,
    seed: int = 7,
    audit_every: int = 4,
    fault=None,
) -> LockstepResult:
    """Drive one scheme through ``ops`` lockstep with the reference model.

    Raises :class:`AuditError` when the physical machine diverges: an
    invariant sweep fails, a request never completes, or a completed read
    would observe a value other than the reference's.  ``fault`` is an
    optional ``(after_op_index, callable)`` used by the fuzzer's
    fault-injection mode to corrupt the controller mid-run.
    """
    from ..core.schemes import build_scheme

    config = config if config is not None else SystemConfig.tiny()
    components = build_scheme(scheme, config, Stats(), random.Random(seed))
    controller = components.controller
    # Attached to the bare controller (not the components): the lockstep
    # driver bypasses the LLC, so extracted LLC-D blocks live in the
    # surrogate `outside` set rather than the real LLC, and the strict
    # end-of-run LLC-residency check must stay disabled.
    auditor = attach_auditor(
        controller, every=max(1, audit_every), check_rate=False
    )
    reference = ReferenceORAM()
    shadow: Dict[int, int] = {}
    outside: set = set()  # blocks extracted to the LLC surrogate (LLC-D)
    user = controller.namespace.user_blocks
    transcript = LockstepResult(scheme=scheme, ops_applied=0, served=0,
                                onchip=0, paths=0, audits=0)
    now = 0
    for index, (kind, block_seed, is_write) in enumerate(ops):
        if fault is not None and index == fault[0]:
            fault[1](controller)
            # Sweep at the injection point: the auditor must flag the
            # corruption before the machine trips over it.
            auditor.audit_now()
        transcript.ops_applied += 1
        value = index + 1
        if kind == "idle":
            result = controller.step(now, allow_dummy=True)
            if result is not None:
                now = max(now + 1, result.finish_write)
            continue
        block = block_seed % user
        if block in outside:
            # LLC surrogate: the block lives outside the ORAM by design.
            transcript.onchip += 1
            if is_write:
                reference.write(block, value)
                shadow[block] = value
            else:
                got = shadow.get(block, 0)
                if got != reference.read(block):
                    raise AuditError(
                        f"{scheme}: LLC surrogate read of block {block} "
                        f"saw {got}, reference says {reference.read(block)}"
                    )
                transcript.reads.append((block, got))
            continue
        request = Request(
            block=block, kind=RequestKind.READ, arrival=now,
            is_write=is_write,
        )
        controller.enqueue(request)
        guard = 0
        while request.completion is None:
            if guard >= STEP_GUARD:
                raise AuditError(
                    f"{scheme}: request for block {block} (op {index}) "
                    f"not served within {STEP_GUARD} controller steps"
                )
            result = controller.step(now, allow_dummy=False)
            if result is None:
                now += 1
            else:
                now = max(now + 1, result.finish_write)
            guard += 1
        transcript.served += 1
        if is_write:
            reference.write(block, value)
            shadow[block] = value
        else:
            got = shadow.get(block, 0)
            if got != reference.read(block):
                raise AuditError(
                    f"{scheme}: read of block {block} observed write "
                    f"{got}, reference expected {reference.read(block)}"
                )
            transcript.reads.append((block, got))
        if controller.delayed_remap:
            outside.add(block)
        auditor.audit_now()
    auditor.final_check()
    transcript.paths = controller.path_count
    transcript.audits = auditor.audits
    return transcript


def zoo_lockstep(
    schemes: Optional[Sequence[str]] = None,
    ops_count: int = 80,
    seed: int = 3,
    config: Optional[SystemConfig] = None,
    audit_every: int = 4,
) -> Dict[str, LockstepResult]:
    """Run the lockstep oracle against every scheme in the zoo.

    Every scheme consumes the identical operation stream, so their read
    transcripts must agree exactly; a divergence raises
    :class:`AuditError` naming the schemes and the first differing read.
    """
    from ..core.schemes import SCHEMES

    names = list(schemes) if schemes is not None else sorted(SCHEMES)
    config = config if config is not None else SystemConfig.tiny()
    user = config.oram.user_blocks
    ops = generate_ops(ops_count, user, seed)
    results = {
        name: drive_lockstep(
            name, ops, config=config, seed=seed, audit_every=audit_every
        )
        for name in names
    }
    first_name = names[0]
    first = results[first_name]
    for name in names[1:]:
        other = results[name]
        if other.reads != first.reads:
            diff = next(
                (
                    (i, a, b)
                    for i, (a, b) in enumerate(zip(first.reads, other.reads))
                    if a != b
                ),
                (min(len(first.reads), len(other.reads)), None, None),
            )
            raise AuditError(
                f"lockstep transcripts diverge: {first_name} vs {name} "
                f"at read #{diff[0]} ({diff[1]} vs {diff[2]}; "
                f"{len(first.reads)} vs {len(other.reads)} reads)"
            )
    return results


def engine_equivalence(
    schemes: Optional[Sequence[str]] = None,
    workload: str = "mix",
    records: int = 250,
    seed: int = 11,
    jobs: int = 2,
    audit: bool = True,
) -> List[str]:
    """Cross-``--jobs`` oracle: serial vs warm-pool results, bit for bit.

    Returns a list of mismatch descriptions (empty means equivalent).
    Both legs route through :func:`repro.api.run_many`, so the parallel
    leg exercises the warm-pool engine end to end.
    """
    from .. import api

    if schemes is None:
        from ..core.schemes import SCHEMES

        schemes = sorted(SCHEMES)
    specs = [
        api.RunSpec(
            scheme=scheme, workload=workload, records=records, seed=seed,
            config_name="tiny", obs=api.ObsOptions(audit=audit),
        )
        for scheme in schemes
    ]
    serial = api.run_many(specs, jobs=1)
    fanned = api.run_many(specs, jobs=max(2, jobs))
    mismatches: List[str] = []
    for spec, a, b in zip(specs, serial, fanned):
        tag = f"{spec.scheme}/{spec.workload}"
        if a.result.cycles != b.result.cycles:
            mismatches.append(
                f"{tag}: cycles {a.result.cycles} != {b.result.cycles}"
            )
        if a.result.counters != b.result.counters:
            keys = sorted(
                k
                for k in set(a.result.counters) | set(b.result.counters)
                if a.result.counters.get(k) != b.result.counters.get(k)
            )
            mismatches.append(f"{tag}: counters differ on {keys[:8]}")
    return mismatches
