"""Deterministic fault injection for the supervised execution engine.

The chaos harness proves the engine's fault-tolerance claims the same way
the oracle proves protocol conformance: by *construction*.  A
:class:`ChaosPlan` derives, from a seed, which task indices crash their
worker (``os._exit``), which hang past their deadline, and which cache
files get torn — then :func:`run_chaos` executes a full scheme-zoo sweep
under that plan and asserts the results are bit-identical to a plain
serial loop, that the supervision counters actually registered the
injected faults, and that a checkpointed-then-resumed run reproduces the
uninterrupted one exactly.

Faults fire **once**: each injection claims a marker file with
``O_CREAT | O_EXCL`` before firing, so the supervisor's re-dispatch of
the same task runs clean.  That mirrors the real failure model
(operational faults — an OOM-killed worker, a wedged NFS mount — don't
deterministically recur) and is what makes bit-identical recovery
possible at all.

Everything is seed-replayable: the same ``--seed`` injects the same
faults at the same indices, so a chaos failure in CI reproduces locally
with one command (``repro validate --chaos --seed N``).
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..errors import AuditError
from ..perf import engine

#: wall seconds a hung worker sleeps; the supervisor's deadline kill is
#: what ends it, the sleep itself is just a backstop
HANG_SECONDS = 60.0

#: supervision knobs forced during a chaos run: tiny-config points finish
#: well under a second, so a 10 s deadline only fires on injected hangs
CHAOS_ENV = {
    "REPRO_TASK_TIMEOUT": "10",
    "REPRO_TASK_RETRIES": "3",
    "REPRO_MAX_RESPAWNS": "10",
}


@dataclass(frozen=True)
class ChaosPlan:
    """Which task indices fault, derived deterministically from a seed."""

    seed: int
    crash_indices: Tuple[int, ...]
    hang_indices: Tuple[int, ...]
    marker_dir: str

    @staticmethod
    def make(
        n_items: int,
        seed: int,
        marker_dir: str,
        crashes: int = 2,
        hangs: int = 1,
    ) -> "ChaosPlan":
        rng = random.Random(seed)
        indices = list(range(n_items))
        rng.shuffle(indices)
        picked = indices[: min(crashes + hangs, n_items)]
        return ChaosPlan(
            seed=seed,
            crash_indices=tuple(sorted(picked[:crashes])),
            hang_indices=tuple(sorted(picked[crashes:crashes + hangs])),
            marker_dir=marker_dir,
        )

    def claim(self, kind: str, index: int) -> bool:
        """Atomically claim one injection; False if it already fired."""
        path = os.path.join(self.marker_dir, f"{kind}-{index}")
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            return False


class ChaosWorker:
    """Picklable worker over ``(index, spec)`` tasks with fault injection.

    On the first dispatch of a crash index the worker process dies with
    ``os._exit`` (no cleanup, no exception — exactly what the OOM killer
    does); on the first dispatch of a hang index it sleeps past every
    deadline.  Re-dispatches find the marker claimed and run the spec
    normally through the warm-cache path.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan

    def __call__(self, task: Tuple[int, object]):
        index, spec = task
        if index in self.plan.crash_indices and self.plan.claim("crash", index):
            os._exit(17)
        if index in self.plan.hang_indices and self.plan.claim("hang", index):
            time.sleep(HANG_SECONDS)
        return engine.run_spec_warm(spec)


def tear_cache_files(
    cache_dir: str, seed: int, fraction: float = 0.5
) -> List[str]:
    """Corrupt a deterministic sample of on-disk cache files in place.

    Pickled artifacts are truncated to half their length (a torn write),
    ``priors.json`` gets non-JSON bytes.  Returns the damaged paths.
    """
    rng = random.Random(seed)
    victims: List[str] = []
    candidates: List[str] = []
    for root, _dirs, files in os.walk(cache_dir):
        for name in sorted(files):
            if name.endswith(".pkl"):
                candidates.append(os.path.join(root, name))
    for path in candidates:
        if rng.random() < fraction:
            data = open(path, "rb").read()
            with open(path, "wb") as handle:
                handle.write(data[: max(1, len(data) // 2)])
            victims.append(path)
    priors = os.path.join(cache_dir, "priors.json")
    if os.path.exists(priors):
        with open(priors, "w", encoding="utf-8") as handle:
            handle.write("{torn mid-")
        victims.append(priors)
    return victims


@contextmanager
def _env(overrides: Dict[str, str]) -> Iterator[None]:
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _chaos_specs(budget: str):
    from ..api import RunSpec
    from ..core.schemes import SCHEMES

    records = 150 if budget == "small" else 400
    return [
        RunSpec(
            scheme=scheme,
            workload="mix",
            records=records,
            seed=11,
            config_name="tiny",
        )
        for scheme in sorted(SCHEMES)
    ]


def run_chaos(
    budget: str = "small", jobs: int = 3, seed: int = 7
) -> Dict[str, object]:
    """Full chaos pass; raises :class:`~repro.errors.AuditError` on drift.

    Three legs, all seed-replayable:

    1. **sweep under fire** — the scheme zoo runs through the supervised
       engine with injected worker crashes and a hang; every result must
       be bit-identical to the serial loop and the retry/respawn/timeout
       counters must have registered the faults;
    2. **checkpoint round trip** — one scheme runs checkpointed, then the
       checkpoint resumes and must reproduce the uninterrupted cycles and
       counters exactly;
    3. **torn caches** — on-disk artifacts are corrupted in place; the
       next run must quarantine them (``engine.cache.corrupt``) and still
       return bit-identical results.
    """
    from .. import api

    specs = _chaos_specs(budget)
    report: Dict[str, object] = {
        "budget": budget,
        "seed": seed,
        "jobs": jobs,
        "points": len(specs),
    }
    events: List[Tuple[str, dict]] = []

    # Serial ground truth, engine-free.
    expected = [api.run(spec) for spec in specs]

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        markers = os.path.join(scratch, "markers")
        hang_markers = os.path.join(scratch, "hang-markers")
        cache_dir = os.path.join(scratch, "cache")
        os.makedirs(markers)
        os.makedirs(hang_markers)
        # Crashes and hangs inject in separate legs: a crash breaks the
        # whole pool, which re-dispatches a concurrently-hung sibling
        # before its deadline expires — masking the timeout path the hang
        # leg exists to exercise.
        plan = ChaosPlan.make(len(specs), seed, markers, crashes=2, hangs=0)
        hang_specs = specs[: min(4, len(specs))]
        hang_plan = ChaosPlan.make(
            len(hang_specs), seed + 1, hang_markers, crashes=0, hangs=1
        )
        report["crash_indices"] = list(plan.crash_indices)
        report["hang_indices"] = list(hang_plan.hang_indices)
        with _env({**CHAOS_ENV, "REPRO_CACHE_DIR": cache_dir}):
            engine.reset()
            engine.set_event_hook(
                lambda kind, **data: events.append((kind, data))
            )
            try:
                before = engine.engine_counters()
                outs = engine.engine_map(
                    ChaosWorker(plan),
                    list(enumerate(specs)),
                    jobs=max(2, jobs),
                )
                counters = {
                    key: value - before.get(key, 0)
                    for key, value in engine.engine_counters().items()
                }
                _check_sweep(specs, expected, outs, plan, counters)

                before = engine.engine_counters()
                hung = engine.engine_map(
                    ChaosWorker(hang_plan),
                    list(enumerate(hang_specs)),
                    jobs=2,
                )
                hang_counters = {
                    key: value - before.get(key, 0)
                    for key, value in engine.engine_counters().items()
                }
                _check_sweep(
                    hang_specs,
                    expected[: len(hang_specs)],
                    hung,
                    hang_plan,
                    hang_counters,
                )
                for key, value in hang_counters.items():
                    counters[key] = counters.get(key, 0) + value
                report["counters"] = {
                    key: value
                    for key, value in sorted(counters.items())
                    if key.startswith("engine.")
                }

                # Leg 3: persist artifacts, tear them, rerun one point.
                # Drain the pool FIRST: surviving workers flush their own
                # caches at exit and would silently heal a torn file
                # written before they shut down.  (They also never flush
                # when killed mid-life, so the parent seeds the disk
                # itself.)
                engine.reset()
                probe_index = plan.crash_indices[0] if plan.crash_indices else 0
                probe_spec = specs[probe_index]
                cache = engine.get_cache()
                cache.trace_for(
                    probe_spec.workload,
                    probe_spec.resolve_config(),
                    probe_spec.records,
                    probe_spec.seed,
                )
                cache.flush()
                priors = engine.get_priors()
                priors.observe_point(
                    probe_spec.scheme,
                    probe_spec.workload,
                    probe_spec.records,
                    1.0,
                )
                priors.save()
                report["torn_files"] = len(
                    tear_cache_files(cache_dir, seed, fraction=1.0)
                )
                _require(
                    report["torn_files"] > 0,
                    "nothing persisted to tear; leg 3 proved nothing",
                )
                engine.reset()  # drop in-memory copies; force disk loads
                probe = engine.run_spec_warm(probe_spec)
                engine.get_priors()  # loads (and quarantines) torn priors
                _require(
                    probe.result.counters
                    == expected[probe_index].result.counters
                    and probe.cycles == expected[probe_index].cycles,
                    "post-tear rerun drifted from the serial loop",
                )
                corrupt = engine.engine_counters().get(
                    "engine.cache.corrupt", 0
                ) + engine.get_cache().counters.get("engine.cache.corrupt", 0)
                _require(
                    corrupt > 0,
                    "torn cache files were loaded without quarantine",
                )
                report["quarantined"] = corrupt
            finally:
                engine.set_event_hook(None)
                engine.reset()

        # Leg 2: checkpoint/resume round trip, outside the scratch env.
        ckpt = os.path.join(scratch, "chaos.ckpt")
        spec = specs[0]
        api.run(spec, checkpoint_every=40, checkpoint_path=ckpt)
        resumed = api.resume_run(ckpt)
        _require(
            resumed.cycles == expected[0].cycles
            and resumed.result.counters == expected[0].result.counters,
            "checkpoint resume drifted from the uninterrupted run",
        )
        report["resume_cycles"] = resumed.cycles

    report["events"] = [kind for kind, _data in events]
    return report


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AuditError(f"chaos: {message}")


def _check_sweep(specs, expected, outs, plan: ChaosPlan, counters) -> None:
    _require(len(outs) == len(specs), "sweep dropped results")
    for index, (want, got) in enumerate(zip(expected, outs)):
        _require(
            got.cycles == want.cycles
            and got.result.counters == want.result.counters,
            f"point {index} ({specs[index].scheme}) drifted under faults",
        )
    injected = len(plan.crash_indices) + len(plan.hang_indices)
    _require(
        counters.get("engine.retries", 0) >= injected,
        "injected faults did not register as retries",
    )
    if plan.crash_indices or plan.hang_indices:
        _require(
            counters.get("engine.respawns", 0) >= 1,
            "worker crash/hang did not force a pool respawn",
        )
    if plan.hang_indices:
        _require(
            counters.get("engine.timeouts", 0) >= len(plan.hang_indices),
            "injected hang did not register as a timeout",
        )
