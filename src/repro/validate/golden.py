"""The golden-run corpus: committed ground truth for the scheme zoo.

A golden file is a compact JSON snapshot of every scheme × workload cell
on the tiny platform: final cycles, instructions, the exact counter
registry, the cycle breakdown, and a content digest per entry.  The
numbers are bit-reproducible by construction — fixed seeds, and kernels
(C fastpath vs pure Python) that are bit-identical by design — so CI
regenerating the matrix natively *and* with ``REPRO_FASTPATH=0`` against
the same committed file is the fastpath-vs-pure-Python leg of the
differential oracle.

``repro validate --regen`` writes the file; ``--check`` re-runs the
matrix (with the online auditor attached) and diffs.  Per-entry digests
catch a corrupted or hand-edited golden file even before any simulation
runs.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

SCHEMA_VERSION = 1
GOLDEN_WORKLOADS = ("mix", "random")
GOLDEN_RECORDS = 300
GOLDEN_SEED = 11
DEFAULT_PATH = os.path.join("benchmarks", "golden", "tiny.json")


def golden_specs(audit: bool = True) -> List["object"]:
    """One audited tiny-config spec per scheme × golden workload."""
    from .. import api
    from ..core.schemes import SCHEMES

    obs = api.ObsOptions(audit=audit)
    return [
        api.RunSpec(
            scheme=scheme,
            workload=workload,
            records=GOLDEN_RECORDS,
            seed=GOLDEN_SEED,
            config_name="tiny",
            obs=obs,
        )
        for scheme in sorted(SCHEMES)
        for workload in GOLDEN_WORKLOADS
    ]


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def entry_digest(entry: Dict) -> str:
    """Content digest of one entry (everything except the digest itself)."""
    payload = {k: v for k, v in entry.items() if k != "digest"}
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:16]


def entry_from(out) -> Dict:
    """Snapshot one :class:`~repro.api.RunResult` as a golden entry."""
    result = out.result
    counters = {
        key: int(value) if float(value).is_integer() else value
        for key, value in sorted(result.counters.items())
    }
    breakdown = {}
    if result.breakdown is not None:
        breakdown = dict(result.breakdown.components())
        breakdown["total"] = result.breakdown.total
    entry = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "paths": counters.get("paths.total", 0),
        "counters": counters,
        "breakdown": breakdown,
    }
    entry["digest"] = entry_digest(entry)
    return entry


def entry_key(spec) -> str:
    return f"{spec.scheme}|{spec.workload}"


def snapshot(jobs: int = 1) -> Dict:
    """Run the audited golden matrix and return the snapshot document."""
    from .. import api

    specs = golden_specs(audit=True)
    outs = api.run_many(specs, jobs=max(1, jobs))
    return {
        "schema": SCHEMA_VERSION,
        "config": "tiny",
        "records": GOLDEN_RECORDS,
        "seed": GOLDEN_SEED,
        "entries": {
            entry_key(spec): entry_from(out)
            for spec, out in zip(specs, outs)
        },
    }


def save(document: Dict, path: str = DEFAULT_PATH) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load(path: str = DEFAULT_PATH) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def verify_integrity(document: Dict) -> List[str]:
    """Check the per-entry digests of a loaded golden file (no runs)."""
    problems: List[str] = []
    if document.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema {document.get('schema')!r} != {SCHEMA_VERSION}"
        )
    for key, entry in sorted(document.get("entries", {}).items()):
        recorded = entry.get("digest")
        actual = entry_digest(entry)
        if recorded != actual:
            problems.append(
                f"{key}: golden entry corrupted "
                f"(digest {recorded} != content {actual})"
            )
    return problems


def compare(current: Dict, golden: Dict) -> List[str]:
    """Diff a freshly run snapshot against a golden document."""
    mismatches = list(verify_integrity(golden))
    current_entries = current.get("entries", {})
    golden_entries = golden.get("entries", {})
    for key in sorted(set(current_entries) | set(golden_entries)):
        mine = current_entries.get(key)
        theirs = golden_entries.get(key)
        if mine is None:
            mismatches.append(f"{key}: in golden file but not in the zoo")
            continue
        if theirs is None:
            mismatches.append(f"{key}: in the zoo but not in the golden file")
            continue
        if mine["digest"] == theirs.get("digest"):
            continue
        for field in ("cycles", "instructions", "paths"):
            if mine.get(field) != theirs.get(field):
                mismatches.append(
                    f"{key}: {field} {mine.get(field)} != golden "
                    f"{theirs.get(field)}"
                )
        mine_counters = mine.get("counters", {})
        golden_counters = theirs.get("counters", {})
        diff_keys = sorted(
            k
            for k in set(mine_counters) | set(golden_counters)
            if mine_counters.get(k) != golden_counters.get(k)
        )
        if diff_keys:
            shown = ", ".join(
                f"{k}: {mine_counters.get(k)} != {golden_counters.get(k)}"
                for k in diff_keys[:5]
            )
            more = "" if len(diff_keys) <= 5 else f" (+{len(diff_keys) - 5})"
            mismatches.append(f"{key}: counters differ — {shown}{more}")
        if mine.get("breakdown") != theirs.get("breakdown"):
            mismatches.append(f"{key}: cycle breakdown differs")
    return mismatches


def check(path: str = DEFAULT_PATH, jobs: int = 1) -> List[str]:
    """Run the matrix and diff against the golden file at ``path``."""
    golden = load(path)
    return compare(snapshot(jobs=jobs), golden)
