"""The online invariant auditor: proves a live run still *is* Path ORAM.

The auditor attaches to a controller's ``slot_observer`` hook and, at a
configurable cadence (every N issued paths), sweeps the whole machine for
the protocol invariants of the paper:

* **block conservation** (§II-B): every block of the merged Freecursive
  namespace is held by exactly one of — the tree, the stash, the PLB, the
  PLB victim buffer, Rho's small-tree custody, Pyramid's level custody,
  Ring's bucket/stash custody, or a legitimate external holder (LLC-D's
  delayed-remap blocks living in the LLC);
* **path residency** (§II-B): every tree-resident block sits on the path
  of its PosMap leaf (and stash leaf tags match the PosMap);
* **stash bounds** (§II-B, Ren et al.): occupancy and its high-water mark
  never exceed the configured stash capacity;
* **PosMap/PLB consistency** (Fletcher et al.): PLB and victim-buffer
  residents are PosMap-kind blocks and — the PLB being exclusive —
  unmapped; the victim buffer set mirrors its queue;
* **Merkle root stability** (§II-A): when an integrity layer is attached,
  the stored hash tree still authenticates against the trusted on-chip
  root (one rotating path is re-verified end to end, silently);
* **timing-channel rate** (Fletcher et al., §II-B): consecutive issued
  paths start at least ``issue_interval`` cycles apart (only meaningful
  under the :class:`~repro.sim.simulator.Simulator` clock — direct-drive
  harnesses disable it);
* **S-Stash mirror** (IR-Stash, §IV-C): the address index of the tree-top
  structure matches actual top-level residency;
* **Ring slot permutation** (Ren et al., Ring ORAM): a ring bucket holds
  at most Z real blocks, its touched-slot set never covers a valid real
  block, its access counter equals the touched-set size and stays below
  the reshuffle threshold S between accesses — and, when the per-bucket
  MAC layer is attached, every materialized bucket still authenticates
  against its trusted on-chip epoch counter (silently).

Bit-identity contract: the auditor never touches the controller's RNG,
never mutates model state, and records its own bookkeeping in a *private*
:class:`~repro.stats.Stats` registry, so an audited run's cycles and
counters are bit-identical to an unaudited run's (asserted by
``tests/test_validate.py``).  Violations raise
:class:`~repro.errors.AuditError` immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from .. import stats_keys as sk
from ..errors import AuditError
from ..obs import events as ev
from ..oram.controller import PathORAMController, SlotResult
from ..oram.integrity import IntegrityError
from ..oram.ring import RING_S, RING_Z
from ..oram.tree import EMPTY
from ..oram.types import BlockKind
from ..stats import Stats

#: issued paths between full sweeps when no cadence is given
DEFAULT_CADENCE = 64


@dataclass
class AuditReport:
    """Summary of what one auditor has checked so far."""

    audits: int
    paths_observed: int
    blocks_verified: int


class InvariantAuditor:
    """Online conformance auditor for one controller (see module docs).

    ``every``: issued paths between full sweeps.  ``check_rate`` enables
    the timing-channel spacing check — only valid when the Simulator owns
    the clock, so it defaults to off and :func:`repro.api.run` turns it on.
    ``check_integrity`` spot-verifies the Merkle layer when one is
    attached.  ``llc`` (optional) lets the *final* audit require LLC-D's
    extracted blocks to actually be LLC-resident.
    """

    def __init__(
        self,
        controller: PathORAMController,
        every: Optional[int] = None,
        check_rate: bool = False,
        check_integrity: bool = True,
        llc=None,
    ) -> None:
        self.controller = controller
        self.every = max(1, every if every else DEFAULT_CADENCE)
        self.check_rate = check_rate
        self.check_integrity = check_integrity
        self.llc = llc
        #: private registry — never the run's own (bit-identity contract)
        self.stats = Stats()
        self.interval = controller.oram.issue_interval
        self.audits = 0
        self._paths = 0
        self._last_start: Optional[int] = None

    # ------------------------------------------------------------------
    # the slot hook
    # ------------------------------------------------------------------
    def observe(self, result: SlotResult) -> None:
        """Receive one :class:`SlotResult` (the ``slot_observer`` hook)."""
        if not result.issued_path:
            return
        self._paths += 1
        self.stats.counters[sk.AUDIT_PATHS_OBSERVED] += 1
        if self.check_rate and self._last_start is not None:
            gap = result.start - self._last_start
            if gap < self.interval:
                self._fail(
                    f"timing-channel rate violated: consecutive paths "
                    f"issued {gap} cycles apart (T={self.interval})"
                )
        self._last_start = result.start
        if self._paths % self.every == 0:
            self.audit_now()

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def audit_now(self, strict_external: bool = False) -> AuditReport:
        """Run one full sweep now; raise :class:`AuditError` on violation.

        ``strict_external`` additionally requires every custody-less
        unmapped user block (LLC-D) to be resident in the attached LLC —
        valid only when no completion is in flight, i.e. at end of run.
        """
        self.audits += 1
        self.stats.counters[sk.AUDIT_CHECKS] += 1
        verified = self._check_locations(strict_external)
        self.stats.counters[sk.AUDIT_BLOCKS_VERIFIED] += verified
        self._check_stash_bounds()
        self._check_queues()
        self._check_treetop_mirror()
        if self.check_integrity:
            self._check_merkle()
            self._check_ring_macs()
        tracer = self.controller.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.AUDIT,
                tracer.now,
                audits=self.audits,
                paths=self._paths,
                blocks=verified,
            )
        return self.report()

    def final_check(self, result=None) -> AuditReport:
        """End-of-run audit: strict sweep plus result-level invariants.

        With a :class:`~repro.sim.results.SimulationResult` (or anything
        carrying ``cycles`` and ``breakdown``), also asserts the
        CycleBreakdown sum-to-cycles invariant.
        """
        report = self.audit_now(strict_external=True)
        breakdown = getattr(result, "breakdown", None)
        if breakdown is not None:
            total = sum(breakdown.components().values())
            if total != breakdown.total or breakdown.total != result.cycles:
                self._fail(
                    f"cycle breakdown does not sum to the run's cycles: "
                    f"components={total} total={breakdown.total} "
                    f"cycles={result.cycles}"
                )
        return report

    def report(self) -> AuditReport:
        return AuditReport(
            audits=self.audits,
            paths_observed=self._paths,
            blocks_verified=int(
                self.stats.get(sk.AUDIT_BLOCKS_VERIFIED)
            ),
        )

    # ------------------------------------------------------------------
    # individual invariant checks
    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        controller = self.controller
        raise AuditError(
            f"{message} [audit #{self.audits}, "
            f"{controller.path_count} paths issued, "
            f"{type(controller).__name__}]"
        )

    def _check_locations(self, strict_external: bool) -> int:
        """Conservation + residency + PosMap/PLB consistency, one sweep."""
        controller = self.controller
        posmap = controller.posmap
        namespace = controller.namespace
        total = namespace.total_blocks
        holder_of: Dict[int, str] = {}

        def claim(block: int, holder: str) -> None:
            if not 0 <= block < total:
                self._fail(f"{holder} holds block {block} outside the "
                           f"namespace [0, {total})")
            other = holder_of.get(block)
            if other is not None:
                self._fail(f"block {block} held by both {other} and {holder}")
            holder_of[block] = holder

        tree = controller.tree
        level_seen = [0] * tree.levels
        for level, position, slots in tree.iter_buckets():
            for block in slots:
                if block == EMPTY:
                    continue
                claim(block, f"tree@L{level}")
                level_seen[level] += 1
                if not posmap.is_mapped(block):
                    self._fail(f"tree-resident block {block} is unmapped")
                leaf = posmap.leaf_of(block)
                if tree.path_position(leaf, level) != position:
                    self._fail(
                        f"block {block} off its path: at (L{level}, "
                        f"{position}) but mapped to leaf {leaf}"
                    )
        if level_seen != list(tree.level_used):
            self._fail(
                f"tree level_used counters drifted from contents: "
                f"counted {level_seen}, recorded {list(tree.level_used)}"
            )

        for block, leaf in controller.stash.items():
            claim(block, "stash")
            if not posmap.is_mapped(block):
                self._fail(f"stash-resident block {block} is unmapped")
            if posmap.leaf_of(block) != leaf:
                self._fail(
                    f"stash leaf tag stale for block {block}: tagged "
                    f"{leaf}, PosMap says {posmap.leaf_of(block)}"
                )

        for block in controller.plb.contents():
            claim(block, "plb")
            self._check_posmap_holder(block, "PLB")
        for block in controller._limbo:
            claim(block, "victim-buffer")
            self._check_posmap_holder(block, "victim buffer")

        self._claim_rho_holders(claim)
        self._claim_pyramid_holders(claim)
        self._claim_ring_holders(claim)

        missing_ok = controller.delayed_remap
        for block in range(total):
            holder = holder_of.get(block)
            if holder is not None:
                continue
            if posmap.is_mapped(block):
                self._fail(f"mapped block {block} has no holder")
            if namespace.kind_of(block) is not BlockKind.USER:
                self._fail(f"PosMap block {block} vanished "
                           f"(unmapped with no holder)")
            if not missing_ok:
                self._fail(f"user block {block} vanished "
                           f"(unmapped with no holder)")
            if (
                strict_external
                and controller.delayed_remap
                and self.llc is not None
                and not self.llc.probe(block)
            ):
                self._fail(
                    f"delayed-remap block {block} neither ORAM-held "
                    f"nor LLC-resident at end of run"
                )
        return total

    def _check_posmap_holder(self, block: int, holder: str) -> None:
        controller = self.controller
        if controller.namespace.kind_of(block) is BlockKind.USER:
            self._fail(f"user block {block} resident in the {holder}")
        if controller.posmap.is_mapped(block):
            self._fail(
                f"{holder}-resident block {block} still mapped "
                f"(the PLB is exclusive)"
            )

    def _rho_custody(self):
        """Rho's small-tree position map, when the controller is a Rho."""
        return getattr(self.controller, "small_map", None)

    def _claim_rho_holders(self, claim) -> None:
        small_map = self._rho_custody()
        if small_map is None:
            return
        controller = self.controller
        posmap = controller.posmap
        small_tree = controller.small_tree
        tree_resident: Set[int] = set()
        for level, position, slots in small_tree.iter_buckets():
            for block in slots:
                if block == EMPTY:
                    continue
                claim(block, f"small-tree@L{level}")
                tree_resident.add(block)
                leaf = small_map.get(block)
                if leaf is None:
                    self._fail(
                        f"small-tree-resident block {block} missing from "
                        f"the small map"
                    )
                if small_tree.path_position(leaf, level) != position:
                    self._fail(
                        f"block {block} off its small-tree path: at "
                        f"(L{level}, {position}) but mapped to leaf {leaf}"
                    )
        for block, leaf in controller.small_stash.items():
            claim(block, "small-stash")
            if small_map.get(block) != leaf:
                self._fail(
                    f"small-stash leaf tag for block {block} disagrees "
                    f"with the small map"
                )
        for block in controller._pending_main_insert:
            claim(block, "pending-main-insert")
            if posmap.is_mapped(block):
                self._fail(
                    f"pending-main-insert block {block} already mapped"
                )
        for block in small_map:
            if posmap.is_mapped(block):
                self._fail(
                    f"small-custody block {block} still mapped in the "
                    f"main PosMap (promotion must be exclusive)"
                )
            if block not in tree_resident and block not in controller.small_stash:
                self._fail(
                    f"small-custody block {block} in neither the small "
                    f"tree nor the small stash"
                )

    def _pyramid_custody(self):
        """Pyramid's level map, when the controller is a Pyramid."""
        return getattr(self.controller, "pyramid_map", None)

    def _claim_pyramid_holders(self, claim) -> None:
        pyramid_map = self._pyramid_custody()
        if pyramid_map is None:
            return
        controller = self.controller
        posmap = controller.posmap
        level_buckets = controller.level_buckets
        for block, (level, bucket) in pyramid_map.items():
            claim(block, f"pyramid@L{level}")
            if not 0 <= level < len(level_buckets):
                self._fail(
                    f"pyramid block {block} assigned to level {level} "
                    f"outside the hierarchy"
                )
            if not 0 <= bucket < level_buckets[level]:
                self._fail(
                    f"pyramid block {block} assigned bucket {bucket} "
                    f"outside level {level} ({level_buckets[level]} buckets)"
                )
            if posmap.is_mapped(block):
                self._fail(
                    f"pyramid-custody block {block} still mapped in the "
                    f"main PosMap (promotion must be exclusive)"
                )
        for block in controller._pending_main_insert:
            claim(block, "pending-main-insert")
            if posmap.is_mapped(block):
                self._fail(
                    f"pending-main-insert block {block} already mapped"
                )

    def _ring_custody(self):
        """Ring's position map, when the controller is a Ring."""
        return getattr(self.controller, "ring_map", None)

    def _claim_ring_holders(self, claim) -> None:
        ring_map = self._ring_custody()
        if ring_map is None:
            return
        controller = self.controller
        posmap = controller.posmap
        ring_oram = controller.ring_oram
        levels = ring_oram.levels
        tree_resident: Set[int] = set()
        for level, position, bucket in controller.iter_ring_buckets():
            slots = bucket.slots
            real = 0
            for index, block in enumerate(slots):
                if block == EMPTY:
                    continue
                real += 1
                claim(block, f"ring@L{level}")
                tree_resident.add(block)
                if index in bucket.touched:
                    self._fail(
                        f"ring bucket (L{level}, {position}) slot {index} "
                        f"holds valid block {block} but is marked touched"
                    )
                leaf = ring_map.get(block)
                if leaf is None:
                    self._fail(
                        f"ring-resident block {block} missing from the "
                        f"ring map"
                    )
                if leaf >> (levels - 1 - level) != position:
                    self._fail(
                        f"block {block} off its ring path: at (L{level}, "
                        f"{position}) but mapped to leaf {leaf}"
                    )
            if real > RING_Z:
                self._fail(
                    f"ring bucket (L{level}, {position}) holds {real} "
                    f"real blocks > Z={RING_Z}"
                )
            if bucket.count != len(bucket.touched):
                self._fail(
                    f"ring bucket (L{level}, {position}) access counter "
                    f"{bucket.count} != touched-slot count "
                    f"{len(bucket.touched)}"
                )
            if bucket.count >= RING_S:
                self._fail(
                    f"ring bucket (L{level}, {position}) counter "
                    f"{bucket.count} reached S={RING_S} without an early "
                    f"reshuffle"
                )
            if any(index >= len(slots) for index in bucket.touched):
                self._fail(
                    f"ring bucket (L{level}, {position}) touched-slot set "
                    f"references slots outside the bucket"
                )
        for block, leaf in controller.ring_stash.items():
            claim(block, "ring-stash")
            if ring_map.get(block) != leaf:
                self._fail(
                    f"ring-stash leaf tag for block {block} disagrees "
                    f"with the ring map"
                )
        for block in controller._pending_main_insert:
            claim(block, "pending-main-insert")
            if posmap.is_mapped(block):
                self._fail(
                    f"pending-main-insert block {block} already mapped"
                )
        for block in ring_map:
            if posmap.is_mapped(block):
                self._fail(
                    f"ring-custody block {block} still mapped in the "
                    f"main PosMap (promotion must be exclusive)"
                )
            if block not in tree_resident and block not in controller.ring_stash:
                self._fail(
                    f"ring-custody block {block} in neither the ring "
                    f"tree nor the ring stash"
                )

    def _check_stash_bounds(self) -> None:
        controller = self.controller
        capacity = controller.oram.stash_capacity
        stash = controller.stash
        if len(stash) > capacity or stash.peak_occupancy > capacity:
            self._fail(
                f"stash bound exceeded: occupancy {len(stash)}, "
                f"high-water {stash.peak_occupancy}, capacity {capacity}"
            )
        small = getattr(controller, "small_stash", None)
        if small is not None:
            small_cap = controller.small_oram.stash_capacity
            if len(small) > small_cap or small.peak_occupancy > small_cap:
                self._fail(
                    f"small-stash bound exceeded: occupancy {len(small)}, "
                    f"high-water {small.peak_occupancy}, "
                    f"capacity {small_cap}"
                )
        ring = getattr(controller, "ring_stash", None)
        if ring is not None:
            ring_cap = controller.ring_oram.stash_capacity
            if len(ring) > ring_cap or ring.peak_occupancy > ring_cap:
                self._fail(
                    f"ring-stash bound exceeded: occupancy {len(ring)}, "
                    f"high-water {ring.peak_occupancy}, "
                    f"capacity {ring_cap}"
                )

    def _check_queues(self) -> None:
        controller = self.controller
        if set(controller.internal_queue) != controller._limbo:
            self._fail(
                "victim-buffer set and queue diverged: "
                f"queue={sorted(set(controller.internal_queue))} "
                f"set={sorted(controller._limbo)}"
            )
        small_map = self._rho_custody()
        if small_map is not None:
            if (
                set(controller.main_insert_queue)
                != controller._pending_main_insert
            ):
                self._fail("Rho main-insert queue and pending set diverged")
            if not controller._evicting <= set(small_map):
                self._fail(
                    "Rho eviction set references blocks outside the small map"
                )
        pyramid_map = self._pyramid_custody()
        if pyramid_map is not None:
            if (
                set(controller.main_insert_queue)
                != controller._pending_main_insert
            ):
                self._fail(
                    "Pyramid main-insert queue and pending set diverged"
                )
        ring_map = self._ring_custody()
        if ring_map is not None:
            if (
                set(controller.main_insert_queue)
                != controller._pending_main_insert
            ):
                self._fail("Ring main-insert queue and pending set diverged")
            if not controller._evicting <= set(ring_map):
                self._fail(
                    "Ring eviction set references blocks outside the "
                    "ring map"
                )

    def _check_treetop_mirror(self) -> None:
        """IR-Stash: the S-Stash address index mirrors top-level residency."""
        controller = self.controller
        mirror = getattr(controller.treetop, "_resident", None)
        if mirror is None:
            return
        top = controller.oram.top_cached_levels
        actual: Set[int] = set()
        for level, _, slots in controller.tree.iter_buckets():
            if level >= top:
                continue
            for block in slots:
                if block != EMPTY:
                    actual.add(block)
        if actual != set(mirror):
            extra = sorted(set(mirror) - actual)[:5]
            missing = sorted(actual - set(mirror))[:5]
            self._fail(
                f"S-Stash mirror diverged from top-level residency "
                f"(extra={extra}, missing={missing})"
            )

    def _check_merkle(self) -> None:
        integrity = getattr(self.controller, "integrity", None)
        if integrity is None:
            return
        if integrity.compute_hash(0, 0) != integrity.root:
            self._fail(
                "Merkle root unstable: stored hash tree no longer "
                "authenticates against the trusted on-chip root"
            )
        leaf = self.audits % self.controller.oram.leaves
        try:
            integrity.verify_path(leaf, count=False)
        except IntegrityError as exc:
            self._fail(f"Merkle spot verification failed: {exc}")

    def _check_ring_macs(self) -> None:
        """Ring integrity: every materialized bucket still authenticates.

        Runs silently (``count=False``) so audited runs stay
        counter-bit-identical to unaudited ones.
        """
        integrity = getattr(self.controller, "ring_integrity", None)
        if integrity is None:
            return
        for level, position, bucket in self.controller.iter_ring_buckets():
            try:
                integrity.verify_bucket(
                    level, position, bucket.slots, count=False
                )
            except IntegrityError as exc:
                self._fail(f"ring MAC verification failed: {exc}")


def attach_auditor(
    target,
    every: Optional[int] = None,
    check_rate: bool = False,
    check_integrity: bool = True,
) -> InvariantAuditor:
    """Attach an :class:`InvariantAuditor` to a run.

    ``target`` is a controller or a
    :class:`~repro.core.schemes.SimComponents` (whose LLC then backs the
    strict end-of-run external check).  An existing ``slot_observer`` is
    chained, not replaced.
    """
    controller = getattr(target, "controller", target)
    llc = getattr(target, "llc", None)
    auditor = InvariantAuditor(
        controller,
        every=every,
        check_rate=check_rate,
        check_integrity=check_integrity,
        llc=llc,
    )
    previous = controller.slot_observer
    if previous is None:
        controller.slot_observer = auditor.observe
    else:
        def chained(result, _prev=previous, _next=auditor.observe):
            _prev(result)
            _next(result)

        controller.slot_observer = chained
    return auditor
