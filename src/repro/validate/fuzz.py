"""Seed-replayable conformance fuzzer with trace shrinking.

Each fuzz case derives a random operation stream from ``(base_seed, i)``
and drives one scheme through the lockstep oracle with the invariant
auditor sweeping after every operation.  On failure the trace is shrunk
(greedy ddmin over operation chunks, preserving the failure signature)
and the minimal case is persisted as a JSON artifact that
:func:`replay` reproduces byte for byte — seeds, operations, and any
injected fault are all recorded.

Fault injection (``inject_faults=True``) is the fuzzer's self-test /
mutation-testing mode: a known corruption (dropping a stash block,
duplicating a tree block, corrupting a mapping, unmapping a held block)
is applied mid-run, and the auditor is expected to catch it.  The fault
is part of the artifact, so a persisted failure replays deterministically
with or without one.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..errors import AuditError
from ..oram.tree import EMPTY
from . import oracle

ARTIFACT_SCHEMA = 1
DEFAULT_ARTIFACT_DIR = os.path.join(".repro_cache", "validate", "failures")
SHRINK_BUDGET = 150


# ---------------------------------------------------------------------------
# fault catalog (the fuzzer's self-test corruptions)
# ---------------------------------------------------------------------------
def _first_tree_block(controller, min_level: int = 0) -> Optional[Tuple[int, int]]:
    for level, _, slots in controller.tree.iter_buckets():
        if level < min_level:
            continue
        for block in slots:
            if block != EMPTY:
                return block, level
    return None


def _fault_drop_block(controller) -> None:
    """Lose a block entirely (a mapped block with no holder)."""
    for block, _ in controller.stash.items():
        controller.stash.remove(block)
        return
    for level, _, slots in controller.tree.iter_buckets():
        for i, block in enumerate(slots):
            if block != EMPTY:
                slots[i] = EMPTY
                controller.tree.level_used[level] -= 1
                return


def _fault_duplicate_block(controller) -> None:
    """Hold one block twice (tree resident copied into the stash)."""
    found = _first_tree_block(controller)
    if found is None:  # pragma: no cover - tree is never empty in practice
        return
    block, _ = found
    if block not in controller.stash:
        controller.stash.add(block, controller.posmap.leaf_of(block))


def _fault_corrupt_mapping(controller) -> None:
    """Point a held block's mapping at a path it does not sit on."""
    for block, leaf in controller.stash.items():
        controller.posmap._leaf_of[block] = (
            leaf ^ 1
        ) % controller.oram.leaves
        return
    found = _first_tree_block(controller, min_level=1)
    if found is None:  # pragma: no cover - deep levels always populated
        return
    block, level = found
    leaf = controller.posmap.leaf_of(block)
    flip = 1 << (controller.oram.levels - 1 - level)
    controller.posmap._leaf_of[block] = leaf ^ flip


def _fault_unmap_held_block(controller) -> None:
    """Discard the mapping of a block still held by the tree."""
    found = _first_tree_block(controller)
    if found is None:  # pragma: no cover - tree is never empty in practice
        return
    controller.posmap.discard(found[0])


FAULTS: Dict[str, Callable] = {
    "drop-block": _fault_drop_block,
    "duplicate-block": _fault_duplicate_block,
    "corrupt-mapping": _fault_corrupt_mapping,
    "unmap-held-block": _fault_unmap_held_block,
}


# ---------------------------------------------------------------------------
# cases, signatures, artifacts
# ---------------------------------------------------------------------------
@dataclass
class FuzzCase:
    """One reproducible fuzz input."""

    scheme: str
    seed: int
    ops: List[oracle.Op]
    fault: Optional[Tuple[str, int]] = None  # (fault name, after op index)

    def to_dict(self) -> Dict:
        return {
            "schema": ARTIFACT_SCHEMA,
            "config": "tiny",
            "scheme": self.scheme,
            "seed": self.seed,
            "ops": [list(op) for op in self.ops],
            "fault": list(self.fault) if self.fault else None,
        }

    @staticmethod
    def from_dict(payload: Dict) -> "FuzzCase":
        fault = payload.get("fault")
        return FuzzCase(
            scheme=payload["scheme"],
            seed=int(payload["seed"]),
            ops=[(op[0], int(op[1]), bool(op[2])) for op in payload["ops"]],
            fault=(fault[0], int(fault[1])) if fault else None,
        )


@dataclass
class FuzzFailure:
    """A persisted, minimized failing case."""

    case: FuzzCase
    signature: str
    artifact_path: str


@dataclass
class FuzzReport:
    cases_run: int
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _signature(exc: BaseException) -> str:
    """Coarse failure identity, stable under trace shrinking."""
    head = str(exc).split("[", 1)[0]
    return f"{type(exc).__name__}: {re.sub(r'[0-9]+', 'N', head).strip()}"


def run_case(
    case: FuzzCase, config: Optional[SystemConfig] = None
) -> Optional[str]:
    """Execute one case; return its failure signature, or ``None`` if clean."""
    fault = None
    if case.fault is not None:
        name, after = case.fault
        fault = (after, FAULTS[name])
    try:
        oracle.drive_lockstep(
            case.scheme, case.ops, config=config, seed=case.seed,
            audit_every=1, fault=fault,
        )
    except Exception as exc:  # a raw crash is a failure too
        return _signature(exc)
    return None


def shrink(
    case: FuzzCase,
    signature: str,
    config: Optional[SystemConfig] = None,
    budget: int = SHRINK_BUDGET,
) -> FuzzCase:
    """Greedy ddmin: drop op chunks while the failure signature persists."""
    ops = list(case.ops)
    evaluations = 0
    improved = True
    while improved and evaluations < budget:
        improved = False
        chunk = max(1, len(ops) // 2)
        while chunk >= 1 and evaluations < budget:
            index = 0
            while index < len(ops) and evaluations < budget:
                trial_ops = ops[:index] + ops[index + chunk:]
                trial = replace(case, ops=trial_ops)
                if trial.fault is not None:
                    name, after = trial.fault
                    trial = replace(
                        trial, fault=(name, min(after, len(trial_ops)))
                    )
                evaluations += 1
                if run_case(trial, config) == signature:
                    ops = trial_ops
                    case = trial
                    improved = True
                else:
                    index += chunk
            chunk //= 2
    return replace(case, ops=ops)


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_-]+", "_", name).strip("_")


def persist(case: FuzzCase, signature: str, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"fuzz-{_slug(case.scheme)}-{case.seed}.json"
    )
    payload = case.to_dict()
    payload["signature"] = signature
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def replay(path: str, config: Optional[SystemConfig] = None):
    """Re-run a persisted artifact; return ``(case, signature-or-None)``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != ARTIFACT_SCHEMA:
        raise AuditError(
            f"unknown fuzz artifact schema {payload.get('schema')!r} "
            f"in {path}"
        )
    case = FuzzCase.from_dict(payload)
    return case, run_case(case, config)


def fuzz(
    budget: int,
    base_seed: int = 1,
    schemes: Optional[Sequence[str]] = None,
    ops_count: int = 60,
    inject_faults: bool = False,
    artifact_dir: str = DEFAULT_ARTIFACT_DIR,
    config: Optional[SystemConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``budget`` random cases; shrink and persist every failure.

    Cases rotate deterministically through the scheme zoo.  With
    ``inject_faults`` every case also applies one corruption from
    :data:`FAULTS` mid-run (so a clean fuzz run *proves the auditor still
    catches all of them* — any uncaught fault is reported as a failure of
    the auditor itself).
    """
    import random as _random

    if schemes is None:
        from ..core.schemes import SCHEMES

        schemes = sorted(SCHEMES)
    config = config if config is not None else SystemConfig.tiny()
    user = config.oram.user_blocks
    fault_names = sorted(FAULTS)
    report = FuzzReport(cases_run=0)
    for i in range(budget):
        seed = base_seed + i
        scheme = schemes[i % len(schemes)]
        ops = oracle.generate_ops(ops_count, user, seed)
        fault = None
        if inject_faults:
            rng = _random.Random(seed * 7919 + 13)
            fault = (
                fault_names[rng.randrange(len(fault_names))],
                rng.randrange(max(1, len(ops) // 2), len(ops)),
            )
        case = FuzzCase(scheme=scheme, seed=seed, ops=ops, fault=fault)
        report.cases_run += 1
        signature = run_case(case, config)
        if inject_faults and (
            signature is None or not signature.startswith("AuditError")
        ):
            # Either nothing noticed the corruption or the machine crashed
            # on it before the auditor flagged it — both are auditor misses.
            report.failures.append(
                FuzzFailure(
                    case=case,
                    signature="auditor missed injected fault "
                    f"{fault[0]!r} (got {signature!r})",
                    artifact_path=persist(
                        case, f"uncaught:{fault[0]}", artifact_dir
                    ),
                )
            )
            continue
        if not inject_faults and signature is not None:
            minimal = shrink(case, signature, config)
            path = persist(minimal, signature, artifact_dir)
            report.failures.append(
                FuzzFailure(
                    case=minimal, signature=signature, artifact_path=path
                )
            )
            if progress is not None:
                progress(
                    f"case {i}: FAILED ({signature}); minimized to "
                    f"{len(minimal.ops)} ops -> {path}"
                )
            continue
        if progress is not None and (i + 1) % 10 == 0:
            progress(f"{i + 1}/{budget} cases clean")
    return report
