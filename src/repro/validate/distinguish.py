"""Adversarial trace distinguisher: definitional security as a two-sample test.

The obliviousness checks in :mod:`repro.security` verify *marginal*
properties of one run (uniform leaves, fixed issue rate).  This module
plays the actual indistinguishability game: the adversary names two
access programs (:data:`repro.traces.ADVERSARY_PROGRAMS`), the harness
runs each arm across many derived seeds recording the full externally
observable trace — cleartext path addresses and issue times, via the
controller observer hook and
:class:`~repro.security.obliviousness.AccessRecorder` — and then asks a
two-sample statistical test whether the arms can be told apart.

Per-run histograms are extracted for each observable feature (leaf
buckets, leaf-rank concentration, inter-issue gaps, active-burst
lengths, per-path address counts, per-superlevel touch counts).  The
test statistic per feature is the total-variation distance between the
two arms' mean histograms; its p-value comes from a run-label
permutation test (exact enumeration when the label space is small,
seeded sampling otherwise), which is distribution-free and exact under
the null "both arms draw traces from the same distribution".  Holm
correction handles the multiple features, and a feature only *flags*
when both the corrected p-value clears ``alpha`` and the effect size
clears ``effect_floor`` — two independent gates, so neither sampling
noise nor a tiny-but-significant artifact produces a verdict alone.

Vacuity control: :data:`repro.security.mutants.MUTANTS` registers
deliberately leaky schemes the harness *must* flag (mutation testing the
test itself); :func:`run_suite` fails if any clean scheme flags or any
mutant slips through.  Everything derives from one base seed, so a
verdict is replayable bit-for-bit from its JSON artifact
(``repro validate --distinguish --replay FILE``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import random
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..core.schemes import SCHEMES, build_scheme
from ..oram.types import PathAccessRecord
from ..security.mutants import MUTANTS, build_mutant
from ..security.obliviousness import AccessRecorder
from ..sim.simulator import Simulator
from ..stats import Stats
from ..traces.adversarial import DEFAULT_PROGRAM_PAIR, build_program

DEFAULT_ARTIFACT_DIR = os.path.join(".repro_cache", "validate", "distinguish")

#: Issue interval for the game, overriding the tiny preset's 250.  The
#: timing defense only closes the intensity channel when the interval
#: dominates worst-case path service (the paper's standing assumption
#: for T); at 250 the memory is the bottleneck, issue times track
#: data-dependent DRAM texture, and *every* scheme is distinguishable.
DISTINGUISH_INTERVAL = 1500

#: Feature extraction bucket counts.
LEAF_BUCKETS = 16
RANK_BUCKETS = 16
RANK_SAMPLE = 64
GAP_BUCKETS = 16
BURST_BUCKETS = 12
SIZE_BUCKETS = 16

#: Exact permutation enumeration cap: above this many distinct labelings
#: the test falls back to seeded sampling.
EXACT_LABELINGS_CAP = 1000

FEATURE_NAMES = (
    "leaf_hist",
    "leaf_rank",
    "gap_hist",
    "burst_hist",
    "size_hist",
    "level_touch",
)


@dataclass(frozen=True)
class DistinguishSpec:
    """One fully determined instance of the distinguishability game."""

    scheme: str
    program_a: str
    program_b: str
    seeds: int
    records: int
    permutations: int
    base_seed: int = 1
    alpha: float = 0.05
    effect_floor: float = 0.08

    def to_json(self) -> Dict:
        return {
            "scheme": self.scheme,
            "program_a": self.program_a,
            "program_b": self.program_b,
            "seeds": self.seeds,
            "records": self.records,
            "permutations": self.permutations,
            "base_seed": self.base_seed,
            "alpha": self.alpha,
            "effect_floor": self.effect_floor,
        }

    @staticmethod
    def from_json(data: Dict) -> "DistinguishSpec":
        return DistinguishSpec(**{
            key: data[key] for key in (
                "scheme", "program_a", "program_b", "seeds", "records",
                "permutations", "base_seed", "alpha", "effect_floor",
            )
        })


@dataclass
class FeatureVerdict:
    """Two-sample outcome for one observable feature."""

    name: str
    statistic: float
    p_value: float
    corrected_p: float
    flagged: bool


@dataclass
class DistinguisherReport:
    """Verdict of one game: can the two arms be told apart?"""

    spec: DistinguishSpec
    features: List[FeatureVerdict]
    paths_per_run: List[int] = field(default_factory=list)

    @property
    def distinguishable(self) -> bool:
        return any(feature.flagged for feature in self.features)

    def to_json(self) -> Dict:
        return {
            "spec": self.spec.to_json(),
            "distinguishable": self.distinguishable,
            "paths_per_run": self.paths_per_run,
            "features": [
                {
                    "name": f.name,
                    "statistic": f.statistic,
                    "p_value": f.p_value,
                    "corrected_p": f.corrected_p,
                    "flagged": f.flagged,
                }
                for f in self.features
            ],
        }


@dataclass(frozen=True)
class DistinguishBudget:
    """Seed/record/permutation sizes for one suite tier."""

    seeds: int
    records: int
    permutations: int


BUDGETS: Dict[str, DistinguishBudget] = {
    # 6 seeds/arm keeps the label space (C(12,6)=924) inside the exact-
    # enumeration cap: p-values are deterministic, with enough
    # resolution (2/924) to clear Holm's alpha/m strictest threshold.
    "small": DistinguishBudget(seeds=6, records=260, permutations=400),
    "full": DistinguishBudget(seeds=8, records=600, permutations=1500),
}


# ----------------------------------------------------------------------
# deterministic seed derivation (same scheme as the fuzzer: every run
# seed is a pure function of the base seed, so artifacts replay exactly)
# ----------------------------------------------------------------------
def derive_seed(base_seed: int, *labels) -> int:
    material = ":".join([str(base_seed)] + [str(label) for label in labels])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# trace capture and feature extraction
# ----------------------------------------------------------------------
def _build_components(scheme: str, config: SystemConfig, run_seed: int):
    stats = Stats()
    rng = random.Random(run_seed)
    if scheme in SCHEMES:
        return build_scheme(scheme, config, stats, rng)
    return build_mutant(scheme, config, stats, rng)


def capture_trace(
    scheme: str, program: str, records: int, run_seed: int
) -> Tuple[List[PathAccessRecord], object]:
    """One instrumented run: returns the recorded trace and components.

    The observer hook is the only instrumentation; it is the same
    attachment the bit-identity tests use, so a captured run's cycles
    and counters match an uncaptured run exactly.
    """
    config = SystemConfig.tiny(issue_interval=DISTINGUISH_INTERVAL)
    components = _build_components(scheme, config, run_seed)
    recorder = AccessRecorder()
    components.controller.observer = recorder
    trace = build_program(
        program, components.config, records,
        random.Random(derive_seed(run_seed, "trace")),
    )
    Simulator(components, trace).run()
    return recorder.records, components


def extract_features(
    records: Sequence[PathAccessRecord], components
) -> Dict[str, List[float]]:
    """Per-run histograms of everything the adversary observes.

    All features are functions of cleartext addresses and issue cycles
    only — never of :class:`PathType`, which an attacker outside the
    TCB cannot see.
    """
    oram = components.config.oram
    layout = components.controller.layout
    row_blocks = components.config.dram.row_blocks
    interval = oram.issue_interval

    leaf_hist = [0.0] * LEAF_BUCKETS
    size_hist = [0.0] * SIZE_BUCKETS
    level_touch = [0.0] * (len(layout.superlevel_row_base) + 1)

    for record in records:
        leaf_hist[min(LEAF_BUCKETS - 1,
                      record.leaf * LEAF_BUCKETS // oram.leaves)] += 1
        size_hist[min(SIZE_BUCKETS - 1, len(record.read_addresses) // 8)] += 1
        for address in record.read_addresses:
            row = address // row_blocks
            if row >= layout.total_rows:
                # Region beyond the main tree: Rho's small tree or the
                # Pyramid levels.
                level_touch[-1] += 1
            else:
                index = bisect_right(layout.superlevel_row_base, row) - 1
                level_touch[max(0, index)] += 1

    # Leaf-rank concentration: the top per-leaf counts, location-blind.
    # Catches remap bugs that concentrate mass on *some* leaves even
    # when the raw histogram stays balanced.  Concentration statistics
    # are sample-size dependent (the max of a multinomial grows with
    # n), so they are computed over a fixed-size systematic subsample —
    # otherwise two programs of different duration would "differ" on
    # trace length alone, which is observable under any ORAM and
    # deliberately outside the game.
    # The subsample is drawn with a fixed-seed RNG rather than a
    # systematic stride: a stride can alias with periodic structure in
    # the path stream (e.g. the eviction cadence) at a rate that depends
    # on the trace length, which would reintroduce the very
    # length-sensitivity the subsample exists to remove.
    leaf_rank = [0.0] * RANK_BUCKETS
    count = len(records)
    if count > RANK_SAMPLE:
        picks = random.Random(0xC0FFEE).sample(range(count), RANK_SAMPLE)
        sampled = [records[index].leaf for index in picks]
    else:
        sampled = [record.leaf for record in records]
    if sampled:
        sample_leaves: Counter = Counter(sampled)
        for index, (_, tally) in enumerate(
            sample_leaves.most_common(RANK_BUCKETS)
        ):
            leaf_rank[index] = float(tally)

    # Inter-issue gaps, log-bucketed by excess over the fixed interval:
    # bucket 0 is "exactly on the protected cadence", higher buckets are
    # exponentially longer stalls.
    gap_hist = [0.0] * GAP_BUCKETS
    times = [record.issue_cycle for record in records]
    gaps = [b - a for a, b in zip(times, times[1:])]
    for gap in gaps:
        excess = gap - interval
        if excess <= 0:
            gap_hist[0] += 1
        else:
            gap_hist[min(GAP_BUCKETS - 1, 1 + int(math.log2(excess)))] += 1

    # Burst lengths: runs of consecutive on-cadence issues that were
    # *terminated* by a long stall, log-bucketed by absolute length.  A
    # protected scheme never breaks cadence, so both arms produce the
    # all-zero histogram; an unprotected one issues in demand-shaped
    # bursts.  The final (censored) run is dropped — its length is just
    # the trace duration, which is observable under any ORAM and
    # deliberately outside the game.
    burst_hist = [0.0] * BURST_BUCKETS
    run_length = 0
    for gap in gaps:
        if gap <= 3 * interval // 2:
            run_length += 1
        else:
            burst_hist[_burst_bucket(run_length)] += 1
            run_length = 0

    return {
        "leaf_hist": leaf_hist,
        "leaf_rank": leaf_rank,
        "gap_hist": gap_hist,
        "burst_hist": burst_hist,
        "size_hist": size_hist,
        "level_touch": level_touch,
    }


def _burst_bucket(run_length: int) -> int:
    """Log-bucket a terminated on-cadence run by its absolute length.

    Terminated runs are geometric-ish (each gap independently breaks or
    extends the run), so their length distribution is length-invariant —
    a longer trace sees *more* runs, not longer ones.  Bucket 0 holds
    back-to-back stalls (run length zero).
    """
    return min(BURST_BUCKETS - 1, run_length.bit_length())


def _normalize(histogram: Sequence[float]) -> List[float]:
    total = sum(histogram)
    if total <= 0:
        return [0.0] * len(histogram)
    return [value / total for value in histogram]


def _mean(vectors: Sequence[Sequence[float]]) -> List[float]:
    count = len(vectors)
    return [
        sum(vector[i] for vector in vectors) / count
        for i in range(len(vectors[0]))
    ]


def _total_variation(p: Sequence[float], q: Sequence[float]) -> float:
    return 0.5 * sum(abs(a - b) for a, b in zip(p, q))


# ----------------------------------------------------------------------
# the two-sample permutation test
# ----------------------------------------------------------------------
def _labeling_statistic(
    pooled: Sequence[Sequence[float]], arm_a: Sequence[int]
) -> float:
    group_a = [pooled[i] for i in arm_a]
    in_a = set(arm_a)
    group_b = [pooled[i] for i in range(len(pooled)) if i not in in_a]
    return _total_variation(_mean(group_a), _mean(group_b))


def permutation_p_value(
    pooled: Sequence[Sequence[float]],
    observed: float,
    permutations: int,
    seed: int,
) -> float:
    """P(two-sample TV >= observed) under run-label exchange.

    Exact over all labelings when feasible — a deterministic p-value
    with no sampling noise — else a seeded Monte Carlo estimate with
    the conventional +1 correction.
    """
    count = len(pooled)
    half = count // 2
    total = math.comb(count, half)
    tolerance = 1e-12
    if total <= EXACT_LABELINGS_CAP:
        hits = sum(
            1
            for labeling in itertools.combinations(range(count), half)
            if _labeling_statistic(pooled, labeling) >= observed - tolerance
        )
        return hits / total
    rng = random.Random(seed)
    indices = list(range(count))
    hits = 0
    for _ in range(permutations):
        rng.shuffle(indices)
        if _labeling_statistic(pooled, indices[:half]) >= observed - tolerance:
            hits += 1
    return (1 + hits) / (permutations + 1)


def _holm_correct(p_values: Sequence[float]) -> List[float]:
    """Holm step-down adjusted p-values (monotone, clamped to 1)."""
    count = len(p_values)
    order = sorted(range(count), key=lambda i: p_values[i])
    corrected = [0.0] * count
    running = 0.0
    for rank, index in enumerate(order):
        adjusted = min(1.0, (count - rank) * p_values[index])
        running = max(running, adjusted)
        corrected[index] = running
    return corrected


# ----------------------------------------------------------------------
# the game
# ----------------------------------------------------------------------
def run_game(
    spec: DistinguishSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> DistinguisherReport:
    """Play one distinguishability game and return the verdict."""
    # Trace *length* is outside the game: a program's duration is
    # observable even under a perfect ORAM (the machine either halts or
    # issues dummies forever), so every feature is a length-invariant
    # shape — normalized histograms, fixed-size subsamples for
    # concentration, terminated-run burst buckets — never a raw count.
    arm_features: Dict[str, List[Dict[str, List[float]]]] = {"a": [], "b": []}
    paths_per_run: List[int] = []
    for arm, program in (("a", spec.program_a), ("b", spec.program_b)):
        for index in range(spec.seeds):
            run_seed = derive_seed(spec.base_seed, spec.scheme, arm, index)
            records, components = capture_trace(
                spec.scheme, program, spec.records, run_seed
            )
            paths_per_run.append(len(records))
            arm_features[arm].append(extract_features(records, components))
            if progress is not None:
                progress(
                    f"  {spec.scheme}: arm {arm} ({program}) "
                    f"run {index + 1}/{spec.seeds}: {len(records)} paths"
                )

    verdicts: List[FeatureVerdict] = []
    raw_p: List[float] = []
    statistics: List[float] = []
    for feature_index, name in enumerate(FEATURE_NAMES):
        runs_a = [_normalize(run[name]) for run in arm_features["a"]]
        runs_b = [_normalize(run[name]) for run in arm_features["b"]]
        observed = _total_variation(_mean(runs_a), _mean(runs_b))
        p_value = permutation_p_value(
            runs_a + runs_b,
            observed,
            spec.permutations,
            derive_seed(spec.base_seed, spec.scheme, "perm", feature_index),
        )
        statistics.append(observed)
        raw_p.append(p_value)

    corrected = _holm_correct(raw_p)
    for name, statistic, p_value, corrected_p in zip(
        FEATURE_NAMES, statistics, raw_p, corrected
    ):
        verdicts.append(
            FeatureVerdict(
                name=name,
                statistic=statistic,
                p_value=p_value,
                corrected_p=corrected_p,
                flagged=(
                    corrected_p <= spec.alpha
                    and statistic >= spec.effect_floor
                ),
            )
        )
    return DistinguisherReport(
        spec=spec, features=verdicts, paths_per_run=paths_per_run
    )


# ----------------------------------------------------------------------
# the suite: clean schemes must pass, every mutant must flag
# ----------------------------------------------------------------------
@dataclass
class SuiteReport:
    """Aggregate verdict across clean schemes and leaky mutants."""

    reports: Dict[str, DistinguisherReport]
    clean_failures: List[str]
    mutant_escapes: List[str]
    artifact_paths: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.clean_failures and not self.mutant_escapes


def _spec_for(
    name: str, pair: Tuple[str, str], budget: DistinguishBudget, base_seed: int
) -> DistinguishSpec:
    return DistinguishSpec(
        scheme=name,
        program_a=pair[0],
        program_b=pair[1],
        seeds=budget.seeds,
        records=budget.records,
        permutations=budget.permutations,
        base_seed=base_seed,
    )


def save_report(report: DistinguisherReport, artifact_dir: str) -> str:
    os.makedirs(artifact_dir, exist_ok=True)
    spec = report.spec
    slug = spec.scheme.replace("/", "_").replace(" ", "_")
    path = os.path.join(
        artifact_dir, f"distinguish-{slug}-seed{spec.base_seed}.json"
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay(path: str) -> Tuple[DistinguisherReport, List[str]]:
    """Re-run a persisted game and diff the verdict against the artifact.

    Returns the fresh report and a list of mismatch descriptions (empty
    when the artifact reproduces bit-for-bit — the expected case, since
    every run seed derives from the recorded base seed).
    """
    with open(path, "r", encoding="utf-8") as handle:
        recorded = json.load(handle)
    spec = DistinguishSpec.from_json(recorded["spec"])
    report = run_game(spec)
    mismatches: List[str] = []
    if report.distinguishable != recorded["distinguishable"]:
        mismatches.append(
            f"verdict: got {report.distinguishable}, "
            f"recorded {recorded['distinguishable']}"
        )
    recorded_features = {f["name"]: f for f in recorded["features"]}
    for feature in report.features:
        old = recorded_features.get(feature.name)
        if old is None:
            mismatches.append(f"{feature.name}: missing from artifact")
            continue
        if abs(feature.statistic - old["statistic"]) > 1e-12 or \
                abs(feature.p_value - old["p_value"]) > 1e-12:
            mismatches.append(
                f"{feature.name}: stat/p {feature.statistic:.6g}/"
                f"{feature.p_value:.6g} vs recorded "
                f"{old['statistic']:.6g}/{old['p_value']:.6g}"
            )
    return report, mismatches


def run_suite(
    budget: str = "small",
    schemes: Optional[Sequence[str]] = None,
    mutants: Optional[Sequence[str]] = None,
    base_seed: int = 1,
    artifact_dir: str = DEFAULT_ARTIFACT_DIR,
    progress: Optional[Callable[[str], None]] = None,
) -> SuiteReport:
    """Clean schemes must be indistinguishable; every mutant must flag."""
    sizes = BUDGETS[budget]
    scheme_names = sorted(SCHEMES) if schemes is None else list(schemes)
    mutant_names = sorted(MUTANTS) if mutants is None else list(mutants)

    reports: Dict[str, DistinguisherReport] = {}
    artifact_paths: Dict[str, str] = {}
    clean_failures: List[str] = []
    mutant_escapes: List[str] = []

    for name in scheme_names:
        report = run_game(
            _spec_for(name, DEFAULT_PROGRAM_PAIR, sizes, base_seed), progress
        )
        reports[name] = report
        artifact_paths[name] = save_report(report, artifact_dir)
        if report.distinguishable:
            clean_failures.append(name)
        if progress is not None:
            verdict = "DISTINGUISHABLE" if report.distinguishable else "clean"
            progress(f"scheme {name}: {verdict}")

    for name in mutant_names:
        mutant = MUTANTS[name]
        report = run_game(
            _spec_for(name, mutant.programs, sizes, base_seed), progress
        )
        reports[name] = report
        artifact_paths[name] = save_report(report, artifact_dir)
        if not report.distinguishable:
            mutant_escapes.append(name)
        if progress is not None:
            verdict = "flagged" if report.distinguishable else "ESCAPED"
            progress(f"mutant {name} (leaks via {mutant.leaks_via}): {verdict}")

    return SuiteReport(
        reports=reports,
        clean_failures=clean_failures,
        mutant_escapes=mutant_escapes,
        artifact_paths=artifact_paths,
    )
