"""``repro validate`` — the conformance suite's command-line face.

``--check`` (the default) replays the golden matrix with the online
auditor attached and diffs it against the committed corpus, then runs
the lockstep differential oracle across the scheme zoo; with
``--jobs > 1`` it also proves serial/parallel engine equivalence.
``--regen`` rewrites the golden corpus; ``--fuzz N`` runs the
seed-replayable fuzzer (``--inject-faults`` turns on the auditor
self-test mode); ``--replay FILE`` reproduces a persisted failure
artifact; ``--distinguish`` plays the adversarial trace
indistinguishability game over every scheme and leaky mutant
(``--distinguish --replay FILE`` re-runs a persisted game verdict).
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from . import fuzz as fuzz_mod
from . import golden, oracle


def add_parser(sub) -> None:
    parser = sub.add_parser(
        "validate",
        help="conformance suite: golden corpus, lockstep oracle, fuzzer",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="golden diff + lockstep oracle (default action)",
    )
    parser.add_argument(
        "--regen", action="store_true",
        help="re-run the golden matrix and rewrite the corpus file",
    )
    parser.add_argument(
        "--fuzz", type=int, default=0, metavar="N",
        help="run N seed-replayable fuzz cases",
    )
    parser.add_argument(
        "--inject-faults", action="store_true",
        help="fuzz with mid-run corruptions (auditor self-test)",
    )
    parser.add_argument(
        "--replay", default=None, metavar="FILE",
        help="reproduce a persisted fuzz failure artifact",
    )
    parser.add_argument(
        "--golden", default=golden.DEFAULT_PATH, metavar="FILE",
        help=f"golden corpus path (default {golden.DEFAULT_PATH})",
    )
    parser.add_argument(
        "--artifact-dir", default=fuzz_mod.DEFAULT_ARTIFACT_DIR,
        metavar="DIR",
        help="where fuzz failures are persisted",
    )
    parser.add_argument(
        "--distinguish", action="store_true",
        help="adversarial trace distinguisher: clean schemes must be "
             "indistinguishable, every registered mutant must flag",
    )
    parser.add_argument(
        "--schemes", default=None, metavar="NAME[,NAME]",
        help="restrict --distinguish to these clean schemes",
    )
    parser.add_argument(
        "--mutants", default=None, metavar="NAME[,NAME]",
        help="restrict --distinguish to these leaky mutants",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="fault-injection pass: worker crashes, hangs, and torn "
             "caches must recover bit-identical to the serial loop",
    )
    parser.add_argument(
        "--budget", choices=("small", "full"), default="small",
        help="chaos/distinguish sweep size",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed for the fuzzer and chaos plans")
    parser.add_argument("--jobs", type=int, default=1,
                        help="matrix runs in parallel (also enables the "
                             "serial-vs-parallel engine oracle)")
    parser.set_defaults(func=run_validate)


def _do_regen(args) -> int:
    document = golden.snapshot(jobs=args.jobs)
    golden.save(document, args.golden)
    print(f"golden corpus written to {args.golden} "
          f"({len(document['entries'])} entries, audited)")
    return 0


def _do_replay(args) -> int:
    case, signature = fuzz_mod.replay(args.replay)
    recorded = None
    import json

    with open(args.replay, "r", encoding="utf-8") as handle:
        recorded = json.load(handle).get("signature")
    print(f"replayed {args.replay}: scheme={case.scheme} "
          f"seed={case.seed} ops={len(case.ops)} fault={case.fault}")
    if signature is None:
        print("replay did NOT reproduce a failure", file=sys.stderr)
        return 1
    print(f"reproduced: {signature}")
    if recorded and not recorded.startswith("uncaught:") \
            and signature != recorded:
        print(f"note: signature differs from recorded {recorded!r}",
              file=sys.stderr)
    return 0


def _do_fuzz(args) -> int:
    report = fuzz_mod.fuzz(
        args.fuzz,
        base_seed=args.seed,
        inject_faults=args.inject_faults,
        artifact_dir=args.artifact_dir,
        progress=print,
    )
    mode = "fault-injection" if args.inject_faults else "clean"
    print(f"fuzz: {report.cases_run} {mode} cases, "
          f"{len(report.failures)} failure(s)")
    for failure in report.failures:
        print(f"  {failure.signature}\n    -> {failure.artifact_path}",
              file=sys.stderr)
    return 0 if report.ok else 1


def _do_check(args) -> int:
    failed = False
    try:
        mismatches = golden.check(args.golden, jobs=args.jobs)
    except OSError as exc:
        print(f"cannot read golden corpus: {exc} "
              f"(run `repro validate --regen` first)", file=sys.stderr)
        return 1
    if mismatches:
        failed = True
        print(f"golden check FAILED ({len(mismatches)} mismatches):",
              file=sys.stderr)
        for line in mismatches:
            print(f"  {line}", file=sys.stderr)
    else:
        print(f"golden check OK ({args.golden})")
    try:
        results = oracle.zoo_lockstep()
    except ReproError as exc:
        failed = True
        print(f"lockstep oracle FAILED: {exc}", file=sys.stderr)
    else:
        sample = next(iter(results.values()))
        print(f"lockstep oracle OK ({len(results)} schemes, "
              f"{sample.ops_applied} ops each, read digest "
              f"{sample.read_digest()})")
    if args.jobs > 1:
        mismatches = oracle.engine_equivalence(jobs=args.jobs)
        if mismatches:
            failed = True
            print("engine equivalence FAILED:", file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
        else:
            print(f"engine equivalence OK (serial == --jobs {args.jobs})")
    print("validate: FAIL" if failed else "validate: PASS")
    return 1 if failed else 0


def _do_distinguish(args) -> int:
    from . import distinguish

    if args.replay:
        report, mismatches = distinguish.replay(args.replay)
        spec = report.spec
        print(f"replayed {args.replay}: scheme={spec.scheme} "
              f"{spec.program_a} vs {spec.program_b} seed={spec.base_seed}")
        _print_distinguish_report(report)
        if mismatches:
            print("replay did NOT reproduce the artifact:", file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("replay reproduced the recorded verdict bit-for-bit")
        return 0

    schemes = args.schemes.split(",") if args.schemes else None
    mutants = args.mutants.split(",") if args.mutants else None
    artifact_dir = args.artifact_dir
    if artifact_dir == fuzz_mod.DEFAULT_ARTIFACT_DIR:
        artifact_dir = distinguish.DEFAULT_ARTIFACT_DIR
    suite = distinguish.run_suite(
        budget=args.budget,
        schemes=schemes,
        mutants=mutants,
        base_seed=args.seed,
        artifact_dir=artifact_dir,
    )
    for name in sorted(suite.reports):
        report = suite.reports[name]
        _print_distinguish_report(report, suite.artifact_paths.get(name))
    if suite.clean_failures:
        print(f"clean schemes DISTINGUISHABLE: "
              f"{', '.join(suite.clean_failures)}", file=sys.stderr)
    if suite.mutant_escapes:
        print(f"leaky mutants ESCAPED: {', '.join(suite.mutant_escapes)}",
              file=sys.stderr)
    print("distinguish: PASS" if suite.ok else "distinguish: FAIL")
    return 0 if suite.ok else 1


def _print_distinguish_report(report, artifact_path=None) -> None:
    from ..security.mutants import MUTANTS

    spec = report.spec
    kind = "mutant" if spec.scheme in MUTANTS else "scheme"
    verdict = "DISTINGUISHABLE" if report.distinguishable else "clean"
    flagged = [
        f"{f.name} (TV {f.statistic:.3f}, p {f.corrected_p:.4f})"
        for f in report.features if f.flagged
    ]
    detail = f" via {', '.join(flagged)}" if flagged else ""
    print(f"{kind} {spec.scheme}: {verdict}{detail}")
    if artifact_path:
        print(f"  artifact: {artifact_path}")


def _do_chaos(args) -> int:
    from . import chaos

    try:
        report = chaos.run_chaos(
            budget=args.budget,
            jobs=max(args.jobs, 3),
            seed=args.seed,
        )
    except ReproError as exc:
        print(f"chaos FAILED: {exc}", file=sys.stderr)
        print(f"  replay with: repro validate --chaos --budget "
              f"{args.budget} --seed {args.seed}", file=sys.stderr)
        return 1
    counters = report.get("counters", {})
    print(f"chaos OK ({report['points']} points, budget={args.budget}, "
          f"seed={report['seed']}): "
          f"crashes at {report['crash_indices']}, "
          f"hangs at {report['hang_indices']} — "
          f"{counters.get('engine.retries', 0)} retries, "
          f"{counters.get('engine.respawns', 0)} respawns, "
          f"{counters.get('engine.timeouts', 0)} timeouts, "
          f"{report['quarantined']} quarantined of "
          f"{report['torn_files']} torn files; all results bit-identical "
          "to the serial loop")
    return 0


def run_validate(args: argparse.Namespace) -> int:
    # --distinguish dispatches first so `--distinguish --replay FILE`
    # routes to the distinguisher's replay, not the fuzzer's.
    if args.distinguish:
        return _do_distinguish(args)
    if args.regen:
        return _do_regen(args)
    if args.replay:
        return _do_replay(args)
    if args.fuzz:
        return _do_fuzz(args)
    if args.chaos:
        return _do_chaos(args)
    return _do_check(args)
