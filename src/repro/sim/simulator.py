"""The closed-loop full-system simulator.

Wires the trace-driven processor, the LLC, and the ORAM controller into
one timeline.  The ORAM controller owns the clock: with the timing-channel
defense on, path accesses issue one per T cycles (and at least one path
service apart when memory is the bottleneck), with dummy slots — possibly
converted by IR-DWB — filling gaps while the program computes.  Request
arrivals emerge from the processor model, so dummy-path opportunity and
queueing delay are both workload-dependent, as in the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import stats_keys as sk
from ..cache.cache import EvictedLine
from ..cache.llc import LastLevelCache
from ..core.schemes import SimComponents
from ..cpu.processor import MemoryOp, Processor
from ..errors import ProtocolError
from ..obs import events as ev
from ..obs.breakdown import CycleAttribution
from ..oram.controller import PathORAMController
from ..oram.types import PathType, Request, RequestKind
from ..stats import Stats
from ..traces.trace import Trace
from .results import SimulationResult


@dataclass
class _InFlight:
    """A demand fetch on its way through the ORAM."""

    request: Request
    want_dirty: bool
    tokens: List[int] = field(default_factory=list)


class MemoryHierarchy:
    """LLC plus the glue between processor, LLC, and ORAM controller."""

    def __init__(
        self,
        llc: LastLevelCache,
        controller: PathORAMController,
        stats: Stats,
    ) -> None:
        self.llc = llc
        self.controller = controller
        self.stats = stats
        self.delayed_remap = controller.delayed_remap
        self.in_flight: Dict[int, _InFlight] = {}
        self._next_token = 0
        self.last_demand_completion = 0

    # -- processor-facing ---------------------------------------------------
    def cpu_access(self, op: MemoryOp) -> Optional[int]:
        """LLC lookup for one L1 miss; returns a wait token on a read miss."""
        block = op.block
        flight = self.in_flight.get(block)
        if flight is not None:
            # MSHR-style merge: writes coalesce, reads wait for the fill.
            flight.request.merge()
            if op.is_write:
                flight.want_dirty = True
                return None
            return self._add_token(flight)
        if self.llc.probe(block):
            self.llc.access(block, op.is_write)  # counts the hit, moves LRU
            return None
        self.stats.inc(sk.LLC_MISSES)
        self.stats.inc(sk.HIERARCHY_DEMAND_MISSES)
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.LLC_MISS, op.time, block=block, write=bool(op.is_write)
            )
        request = Request(
            block=block,
            kind=RequestKind.READ,
            arrival=op.time,
            is_write=op.is_write,
        )
        self.controller.enqueue(request)
        flight = _InFlight(request, want_dirty=op.is_write)
        self.in_flight[block] = flight
        # Both read misses and write-allocate fetches hand the processor a
        # token: reads gate the ROB/MLP window, writes the write buffer.
        return self._add_token(flight)

    def _add_token(self, flight: _InFlight) -> int:
        token = self._next_token
        self._next_token += 1
        flight.tokens.append(token)
        return token

    # -- controller-facing -----------------------------------------------------
    def on_completion(self, request: Request, processor: Processor) -> None:
        """Handle a completed controller request."""
        if request.completion is None:
            raise ProtocolError("completed request lacks a completion time")
        if request.kind is not RequestKind.READ:
            return
        flight = self.in_flight.pop(request.block, None)
        if flight is None:
            return  # internally generated access (e.g. IR-DWB)
        self.last_demand_completion = max(
            self.last_demand_completion, request.completion
        )
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.ACCESS_END,
                request.completion,
                block=request.block,
                latency=request.completion - request.arrival,
                waiters=request.waiters,
            )
        evicted = self.llc.insert(request.block, dirty=flight.want_dirty)
        if evicted is not None:
            self.handle_eviction(evicted, request.completion)
        for token in flight.tokens:
            processor.complete(token, request.completion)

    def handle_eviction(self, evicted: EvictedLine, time: int) -> None:
        if self.delayed_remap:
            kind = RequestKind.REINSERT
        elif evicted.dirty:
            kind = RequestKind.WRITEBACK
        else:
            return
        self.controller.enqueue(
            Request(block=evicted.block, kind=kind, arrival=time,
                    is_write=evicted.dirty)
        )


class Simulator:
    """Drives one trace through one scheme's memory system."""

    #: safety valve: abort runs that stop making forward progress
    MAX_IDLE_ITERATIONS = 10_000

    def __init__(self, components: SimComponents, trace: Trace) -> None:
        self.components = components
        self.trace = trace
        self.stats = components.stats
        self.controller = components.controller
        self.llc = components.llc
        self.hierarchy = MemoryHierarchy(self.llc, self.controller, self.stats)
        self.processor = Processor(trace, components.config.cpu, self.stats)
        #: optional mid-run checkpoint hook (see repro.sim.checkpoint);
        #: consulted between issue slots, never inside one, so captured
        #: state is always at a well-defined protocol boundary.
        self.checkpointer = None
        # Loop state lives on the instance (not in run()-local variables)
        # so a checkpoint can freeze a run between two issue slots and a
        # resumed simulator continues exactly where the original stopped.
        self._started = False
        self._now = 0
        self._last_finish = 0
        self._idle_iterations = 0
        self._attribution: Optional[CycleAttribution] = None
        self._snapshot_every = 0

    def run(self, utilization_snapshots: int = 0) -> SimulationResult:
        """Run to completion and return the result summary.

        ``utilization_snapshots``: if nonzero, record per-level tree
        utilization that many times, evenly spaced in path count (Fig. 3).
        """
        if self._started:
            raise ProtocolError(
                "Simulator.run() called twice; use resume() to continue a "
                "checkpointed run"
            )
        self._started = True
        self._attribution = CycleAttribution()
        if utilization_snapshots:
            expected_paths = max(1, 2 * len(self.trace))
            self._snapshot_every = max(
                1, expected_paths // utilization_snapshots
            )
            self._record_utilization(0)
        return self._loop()

    def resume(self) -> SimulationResult:
        """Continue a run restored from a mid-stream checkpoint.

        The loop state (clock, attribution, idle bookkeeping) was frozen
        between two issue slots, so continuing produces cycles and
        counters bit-identical to the uninterrupted run.
        """
        if not self._started:
            raise ProtocolError("resume() on a simulator that never ran")
        return self._loop()

    def _loop(self) -> SimulationResult:
        controller = self.controller
        processor = self.processor
        hierarchy = self.hierarchy
        oram = self.components.config.oram
        interval = oram.issue_interval
        tracer = self.stats.tracer
        progress_every = tracer.progress_every if tracer is not None else 0
        attribution = self._attribution
        snapshot_every = self._snapshot_every

        now = self._now
        last_finish = self._last_finish
        idle_iterations = self._idle_iterations
        checkpointer = self.checkpointer

        # Batched dummy-slot draining: while the processor computes and the
        # controller has no real work, whole runs of dummy paths execute in
        # one native call instead of one step() round trip each.  Every
        # slot-boundary hook forces per-slot stepping (a flush at every
        # boundary): observers, tracers, checkpointers, and utilization or
        # progress sampling all see exactly the slots they would have seen,
        # and cycles/counters are bit-identical either way.
        batch_slots = 0
        if (
            oram.timing_protection
            and controller.SUPPORTS_NATIVE_BATCH
            and controller.dwb is None
            and controller.observer is None
            and controller.slot_observer is None
            and checkpointer is None
            and tracer is None
            and snapshot_every == 0
            and progress_every == 0
        ):
            try:
                batch_slots = int(
                    os.environ.get("REPRO_BATCH_SLOTS", "256") or "0"
                )
            except ValueError:
                batch_slots = 0
            batch_slots = max(0, batch_slots)
        dummy_value = PathType.DUMMY.value

        while True:
            if tracer is not None:
                tracer.now = now
            processor.advance_to(now, hierarchy.cpu_access)
            trace_active = not processor.trace_exhausted()
            if (
                batch_slots
                and trace_active
                and not controller.has_pending_work(now)
                and processor.next_request_time() is not None
            ):
                # The processor neither blocks nor finishes before
                # cpu_time, and no queued request matures before its
                # arrival, so until the earlier of the two every slot is a
                # dummy slot (or a background eviction, which ends the
                # batch via its threshold stop).
                horizon = processor.cpu_time
                arrival = controller.next_arrival()
                if arrival is not None and arrival < horizon:
                    horizon = arrival
                if now < horizon:
                    issued, batch_now, bounds = controller.run_dummy_batch(
                        now,
                        batch_slots,
                        interval=interval,
                        horizon=horizon,
                        stop_on_threshold=True,
                        want_bounds=True,
                    )
                    if issued:
                        for i in range(0, 3 * issued, 3):
                            start = bounds[i]
                            attribution.on_path(
                                dummy_value,
                                start,
                                bounds[i + 1],
                                bounds[i + 2],
                                start + interval,
                            )
                        last_finish = max(last_finish, bounds[-1])
                        now = batch_now
                        idle_iterations = 0
                        continue
            result = controller.step(now, allow_dummy=trace_active)

            if result is None:
                if processor.done and not controller.has_any_real_work() and (
                    not hierarchy.in_flight
                ):
                    break
                idle_iterations += 1
                if idle_iterations > self.MAX_IDLE_ITERATIONS:
                    raise ProtocolError("simulation stopped making progress")
                now = self._advance_idle(now)
                continue
            idle_iterations = 0

            for request in result.completions:
                hierarchy.on_completion(request, processor)
            if result.issued_path:
                last_finish = max(last_finish, result.finish_write)
                if oram.timing_protection:
                    stall_until = now + interval
                    now = max(stall_until, result.finish_write)
                else:
                    stall_until = result.finish_write
                    now = max(now + 1, result.finish_write)
                attribution.on_path(
                    result.path_type.value,
                    result.start,
                    result.finish_read,
                    result.finish_write,
                    stall_until,
                )
                if snapshot_every and controller.path_count % snapshot_every == 0:
                    self._record_utilization(now)
                if progress_every and (
                    controller.path_count % progress_every == 0
                ):
                    self._emit_progress(tracer, now)
            if checkpointer is not None and checkpointer.pending:
                # Flush loop state first so the frozen simulator resumes
                # from exactly this inter-slot boundary.
                self._now = now
                self._last_finish = last_finish
                self._idle_iterations = idle_iterations
                checkpointer.take(self)

        # Controllers that defer write phases (Palermo-style decoupling)
        # flush them before the run is summarized.
        drain = getattr(controller, "drain_background", None)
        if drain is not None:
            last_finish = max(last_finish, drain(now))

        self._now = now
        self._last_finish = last_finish
        self._idle_iterations = idle_iterations
        cycles = max(
            processor.finish_time or 0,
            hierarchy.last_demand_completion,
        )
        if cycles == 0:
            cycles = last_finish
        self.stats.set(sk.SIM_CYCLES, cycles)
        self.stats.set(sk.SIM_INSTRUCTIONS, processor.retired_instructions)
        return SimulationResult.from_run(
            trace_name=self.trace.name,
            cycles=cycles,
            instructions=processor.retired_instructions,
            stats=self.stats,
            controller=controller,
            breakdown=attribution.finalize(cycles),
        )

    def _advance_idle(self, now: int) -> int:
        """Nothing issued: jump to the next time anything can happen."""
        candidates = []
        arrival = self.controller.next_arrival()
        if arrival is not None:
            candidates.append(arrival)
        projected = self.processor.next_request_time()
        if projected is not None:
            candidates.append(projected)
        if not candidates:
            # The processor is blocked, so a queued request must exist —
            # reaching here means the controller refused to service it.
            raise ProtocolError("idle with a blocked processor")
        return max(now + 1, min(candidates))

    def _record_utilization(self, now: int) -> None:
        snapshot = self.controller.tree.level_utilization()
        self.stats.record(sk.TREE_UTILIZATION, now, snapshot)

    def _emit_progress(self, tracer, now: int) -> None:
        """Periodic progress snapshot (``Tracer.progress_every`` paths)."""
        controller = self.controller
        data = {
            "paths": controller.path_count,
            "instructions": self.processor.retired_instructions,
            "stash": len(controller.stash),
            "in_flight": len(self.hierarchy.in_flight),
        }
        tracer.emit(ev.PROGRESS, now, **data)
        self.stats.record(sk.OBS_PROGRESS, now, data)
