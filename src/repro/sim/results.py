"""Result objects returned by simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import stats_keys as sk
from ..obs.breakdown import CycleBreakdown
from ..oram.types import PathType
from ..stats import Stats


@dataclass
class SimulationResult:
    """Summary of one trace-through-one-scheme simulation."""

    trace_name: str
    cycles: int
    instructions: int
    path_counts: Dict[str, float]
    counters: Dict[str, float]
    hit_levels: Dict[Any, float]
    utilization_series: List[Tuple[float, List[float]]] = field(
        default_factory=list
    )
    #: exact per-component cycle attribution (components sum to ``cycles``)
    breakdown: Optional[CycleBreakdown] = None

    @staticmethod
    def from_run(trace_name, cycles, instructions, stats: Stats, controller,
                 breakdown: Optional[CycleBreakdown] = None):
        return SimulationResult(
            trace_name=trace_name,
            cycles=cycles,
            instructions=instructions,
            path_counts=controller.path_type_counts(),
            counters=stats.snapshot(),
            hit_levels=stats.histogram(sk.HIT_LEVEL),
            utilization_series=list(stats.series.get(sk.TREE_UTILIZATION, [])),
            breakdown=breakdown,
        )

    # -- derived metrics -------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def total_paths(self) -> float:
        return self.counters.get(sk.PATHS_TOTAL, 0.0)

    def dummy_fraction(self) -> float:
        total = self.total_paths()
        if total == 0:
            return 0.0
        return self.path_counts.get(PathType.DUMMY.value, 0.0) / total

    def posmap_paths(self) -> float:
        return self.path_counts.get(
            PathType.POS1.value, 0.0
        ) + self.path_counts.get(PathType.POS2.value, 0.0)

    def memory_accesses(self) -> float:
        return self.counters.get(sk.MEM_BLOCKS_READ, 0.0) + self.counters.get(
            sk.MEM_BLOCKS_WRITTEN, 0.0
        )

    def background_evictions(self) -> float:
        return self.counters.get(sk.EVICTION_PATHS, 0.0)

    def eviction_cycle_share(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.counters.get(sk.EVICTION_CYCLES, 0.0) / self.cycles

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Execution-time speedup of ``self`` relative to ``baseline``."""
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles

    def path_type_distribution(self) -> Dict[str, float]:
        """Fraction of path accesses per type (Fig. 2 / Fig. 15 style)."""
        total = sum(self.path_counts.values())
        if total == 0:
            return {key: 0.0 for key in self.path_counts}
        return {key: val / total for key, val in self.path_counts.items()}
