"""JSON persistence for simulation results.

Long experiment campaigns want to checkpoint raw results and re-aggregate
later without re-simulating; these helpers round-trip
:class:`SimulationResult` objects through JSON files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List, Union

from ..errors import ReproError
from ..obs.breakdown import CycleBreakdown
from .results import SimulationResult

FORMAT_VERSION = 1


def result_to_dict(result: SimulationResult) -> dict:
    payload = {
        "version": FORMAT_VERSION,
        "trace_name": result.trace_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "path_counts": result.path_counts,
        "counters": result.counters,
        # histogram keys may be ints or strings; JSON forces strings
        "hit_levels": {str(key): value for key, value in result.hit_levels.items()},
        "utilization_series": [
            [time, list(snapshot)]
            for time, snapshot in result.utilization_series
        ],
    }
    if result.breakdown is not None:
        payload["breakdown"] = result.breakdown.to_dict()
    return payload


def result_from_dict(payload: dict) -> SimulationResult:
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format version {payload.get('version')!r}"
        )

    def parse_key(key: str):
        try:
            return int(key)
        except ValueError:
            return key

    return SimulationResult(
        trace_name=payload["trace_name"],
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        path_counts=payload["path_counts"],
        counters=payload["counters"],
        hit_levels={
            parse_key(key): value
            for key, value in payload["hit_levels"].items()
        },
        utilization_series=[
            (time, snapshot)
            for time, snapshot in payload["utilization_series"]
        ],
        breakdown=(
            CycleBreakdown.from_dict(payload["breakdown"])
            if "breakdown" in payload
            else None
        ),
    )


def save_results(
    results: Iterable[SimulationResult], path: Union[str, Path]
) -> Path:
    destination = Path(path)
    payload = [result_to_dict(result) for result in results]
    destination.write_text(json.dumps(payload, indent=1))
    return destination


def load_results(path: Union[str, Path]) -> List[SimulationResult]:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ReproError("result file must contain a list")
    return [result_from_dict(entry) for entry in payload]


class CampaignJournal:
    """Append-only JSONL journal of completed campaign points.

    A long sweep records each finished point as one ``{"key": ...,
    "result": ...}`` line; after a crash, re-running the campaign skips
    every key already journaled and only simulates the remainder
    (:func:`repro.api.run_campaign`).  Each line is written with a
    trailing flush before the next point starts, and a torn final line —
    the expected artifact of a crash mid-write — is ignored on load
    rather than poisoning the whole journal.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._results: dict = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                result = result_from_dict(entry["result"])
            except (ValueError, KeyError, ReproError):
                # torn or half-written trailing line from a crash
                continue
            self._results[key] = result

    def done(self, key: str) -> bool:
        return key in self._results

    def get(self, key: str) -> SimulationResult:
        return self._results[key]

    def record(self, key: str, result: SimulationResult) -> None:
        entry = {"key": key, "result": result_to_dict(result)}
        line = json.dumps(entry, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._results[key] = result

    def __len__(self) -> int:
        return len(self._results)
