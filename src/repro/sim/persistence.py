"""JSON persistence for simulation results.

Long experiment campaigns want to checkpoint raw results and re-aggregate
later without re-simulating; these helpers round-trip
:class:`SimulationResult` objects through JSON files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from ..errors import ReproError
from ..obs.breakdown import CycleBreakdown
from .results import SimulationResult

FORMAT_VERSION = 1


def result_to_dict(result: SimulationResult) -> dict:
    payload = {
        "version": FORMAT_VERSION,
        "trace_name": result.trace_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "path_counts": result.path_counts,
        "counters": result.counters,
        # histogram keys may be ints or strings; JSON forces strings
        "hit_levels": {str(key): value for key, value in result.hit_levels.items()},
        "utilization_series": [
            [time, list(snapshot)]
            for time, snapshot in result.utilization_series
        ],
    }
    if result.breakdown is not None:
        payload["breakdown"] = result.breakdown.to_dict()
    return payload


def result_from_dict(payload: dict) -> SimulationResult:
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format version {payload.get('version')!r}"
        )

    def parse_key(key: str):
        try:
            return int(key)
        except ValueError:
            return key

    return SimulationResult(
        trace_name=payload["trace_name"],
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        path_counts=payload["path_counts"],
        counters=payload["counters"],
        hit_levels={
            parse_key(key): value
            for key, value in payload["hit_levels"].items()
        },
        utilization_series=[
            (time, snapshot)
            for time, snapshot in payload["utilization_series"]
        ],
        breakdown=(
            CycleBreakdown.from_dict(payload["breakdown"])
            if "breakdown" in payload
            else None
        ),
    )


def save_results(
    results: Iterable[SimulationResult], path: Union[str, Path]
) -> Path:
    destination = Path(path)
    payload = [result_to_dict(result) for result in results]
    destination.write_text(json.dumps(payload, indent=1))
    return destination


def load_results(path: Union[str, Path]) -> List[SimulationResult]:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ReproError("result file must contain a list")
    return [result_from_dict(entry) for entry in payload]
