"""Full-system simulation: processor + LLC + ORAM controller + DRAM."""

from .results import SimulationResult
from .runner import run_benchmark, run_trace
from .simulator import MemoryHierarchy, Simulator

__all__ = [
    "Simulator",
    "MemoryHierarchy",
    "SimulationResult",
    "run_trace",
    "run_benchmark",
]
