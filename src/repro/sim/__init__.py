"""Full-system simulation: processor + LLC + ORAM controller + DRAM."""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    SimulatorCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .persistence import CampaignJournal
from .results import SimulationResult
from .runner import run_benchmark, run_trace
from .simulator import MemoryHierarchy, Simulator

__all__ = [
    "Simulator",
    "MemoryHierarchy",
    "SimulationResult",
    "SimulatorCheckpoint",
    "CheckpointManager",
    "CampaignJournal",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "run_trace",
    "run_benchmark",
]
