"""Legacy entry points, kept as shims over :mod:`repro.api`.

:func:`make_workload` remains the canonical workload factory (the facade
itself calls it); :func:`run_trace` and :func:`run_benchmark` are
deprecated — construct a :class:`repro.api.RunSpec` and call
:func:`repro.api.run` instead.
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, Dict, Optional

from ..config import ORAMConfig, SystemConfig
from ..errors import ConfigError
from ..traces.benchmarks import BENCHMARKS, benchmark_trace
from ..traces.mix import standard_mix
from ..traces.synthetic import random_trace
from ..traces.trace import Trace
from .results import SimulationResult


def run_trace(
    scheme: str,
    trace: Trace,
    config: Optional[SystemConfig] = None,
    seed: int = 1,
    utilization_snapshots: int = 0,
) -> SimulationResult:
    """Deprecated: use ``repro.api.run(RunSpec(..., trace=trace))``."""
    warnings.warn(
        "repro.sim.runner.run_trace is deprecated; use "
        "repro.api.run(RunSpec(scheme=..., trace=...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from .. import api

    spec = api.RunSpec(
        scheme=scheme,
        workload=trace.name,
        seed=seed,
        config=config,
        utilization_snapshots=utilization_snapshots,
        trace=trace,
    )
    return api.run(spec).result


def make_workload(
    name: str,
    config: SystemConfig,
    records: int,
    seed: int = 7,
) -> Trace:
    """Build a named workload: a Table II benchmark, ``mix``, or ``random``."""
    rng = random.Random(seed)
    user_blocks = config.oram.user_blocks
    llc_lines = config.llc.lines
    if name == "mix":
        return standard_mix(user_blocks, records, rng, llc_lines=llc_lines)
    if name == "random":
        return random_trace(records, user_blocks, rng, gap=30)
    if name in BENCHMARKS:
        return benchmark_trace(
            BENCHMARKS[name], user_blocks, records, rng, llc_lines=llc_lines
        )
    raise ConfigError(
        f"unknown workload {name!r}; options: {sorted(BENCHMARKS)} + mix/random"
    )


def run_benchmark(
    scheme: str,
    workload: str,
    config: Optional[SystemConfig] = None,
    records: int = 4000,
    seed: int = 7,
    utilization_snapshots: int = 0,
) -> SimulationResult:
    """Deprecated: use ``repro.api.run(RunSpec(...))``."""
    warnings.warn(
        "repro.sim.runner.run_benchmark is deprecated; use "
        "repro.api.run(RunSpec(scheme=..., workload=...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from .. import api

    spec = api.RunSpec(
        scheme=scheme,
        workload=workload,
        records=records,
        seed=seed,
        config=config,
        utilization_snapshots=utilization_snapshots,
    )
    return api.run(spec).result


def random_trace_evaluator(
    base_config: SystemConfig,
    records: int = 1500,
    seed: int = 99,
) -> Callable[[ORAMConfig], Dict[str, float]]:
    """Evaluation callback for the IR-Alloc greedy Z-search.

    Returns a function mapping an :class:`ORAMConfig` candidate to
    ``{"cycles": ..., "evictions": ...}`` measured on a random trace — the
    paper's worst case for middle-level utilization.
    """

    def evaluate(oram: ORAMConfig) -> Dict[str, float]:
        from .. import api

        config = base_config.with_oram(oram)
        trace = make_workload("random", config, records, seed)
        # 'Baseline' here only selects the plain composition; the candidate
        # allocation rides in through the config itself.
        result = api.run(
            api.RunSpec(
                scheme="Baseline", workload="random", seed=seed,
                config=config, trace=trace,
            )
        ).result
        return {
            "cycles": float(result.cycles),
            "evictions": result.background_evictions(),
        }

    return evaluate
