"""High-level entry points: run a scheme on a benchmark or a raw trace."""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from ..config import ORAMConfig, SystemConfig
from ..core.schemes import build_scheme
from ..errors import ConfigError
from ..stats import Stats
from ..traces.benchmarks import BENCHMARKS, benchmark_trace
from ..traces.mix import standard_mix
from ..traces.synthetic import random_trace
from ..traces.trace import Trace
from .results import SimulationResult
from .simulator import Simulator


def run_trace(
    scheme: str,
    trace: Trace,
    config: Optional[SystemConfig] = None,
    seed: int = 1,
    utilization_snapshots: int = 0,
) -> SimulationResult:
    """Run one trace through one scheme and return the result."""
    config = config if config is not None else SystemConfig.scaled()
    components = build_scheme(scheme, config, Stats(), random.Random(seed))
    simulator = Simulator(components, trace)
    return simulator.run(utilization_snapshots=utilization_snapshots)


def make_workload(
    name: str,
    config: SystemConfig,
    records: int,
    seed: int = 7,
) -> Trace:
    """Build a named workload: a Table II benchmark, ``mix``, or ``random``."""
    rng = random.Random(seed)
    user_blocks = config.oram.user_blocks
    llc_lines = config.llc.lines
    if name == "mix":
        return standard_mix(user_blocks, records, rng, llc_lines=llc_lines)
    if name == "random":
        return random_trace(records, user_blocks, rng, gap=30)
    if name in BENCHMARKS:
        return benchmark_trace(
            BENCHMARKS[name], user_blocks, records, rng, llc_lines=llc_lines
        )
    raise ConfigError(
        f"unknown workload {name!r}; options: {sorted(BENCHMARKS)} + mix/random"
    )


def run_benchmark(
    scheme: str,
    workload: str,
    config: Optional[SystemConfig] = None,
    records: int = 4000,
    seed: int = 7,
    utilization_snapshots: int = 0,
) -> SimulationResult:
    """Run a named workload through a scheme."""
    config = config if config is not None else SystemConfig.scaled()
    trace = make_workload(workload, config, records, seed)
    return run_trace(
        scheme,
        trace,
        config,
        seed=seed,
        utilization_snapshots=utilization_snapshots,
    )


def random_trace_evaluator(
    base_config: SystemConfig,
    records: int = 1500,
    seed: int = 99,
) -> Callable[[ORAMConfig], Dict[str, float]]:
    """Evaluation callback for the IR-Alloc greedy Z-search.

    Returns a function mapping an :class:`ORAMConfig` candidate to
    ``{"cycles": ..., "evictions": ...}`` measured on a random trace — the
    paper's worst case for middle-level utilization.
    """

    def evaluate(oram: ORAMConfig) -> Dict[str, float]:
        config = base_config.with_oram(oram)
        trace = make_workload("random", config, records, seed)
        result = run_trace("Baseline", trace, config, seed=seed)
        # 'Baseline' here only selects the plain composition; the candidate
        # allocation rides in through the config itself.
        return {
            "cycles": float(result.cycles),
            "evictions": result.background_evictions(),
        }

    return evaluate
