"""Mid-run simulator checkpoints.

A :class:`SimulatorCheckpoint` freezes a run *between* two controller
issue slots: the whole component graph (controller, stash, PosMap, PLB,
tree-top, DRAM, LLC, processor, per-scheme RNGs, stats) plus the
simulator's loop clock, pickled as one shared-reference object graph.
Resuming the pickle and calling :meth:`Simulator.resume` replays the
remainder of the run and produces cycles and counters bit-identical to
the uninterrupted run — the property tests in ``tests/test_checkpoint.py``
assert this against the golden-corpus digests for every scheme.

Two guards keep a resume honest:

* a ``version`` field, so format changes fail loudly instead of
  deserializing garbage, and
* the engine's *code salt* (a hash over the simulator sources), so a
  checkpoint taken by a different build of the simulator refuses to
  resume rather than silently producing numbers the current code would
  never have produced.

Checkpoint writes are atomic (temp file + ``os.replace``), so a crash
mid-write leaves the previous checkpoint intact, and a torn file raises
:class:`~repro.errors.CheckpointError` on load rather than resuming from
corrupt state.

The cadence hook is :class:`CheckpointManager`: it chains onto the
controller's ``slot_observer`` to *count* issued paths, but defers the
actual capture to the simulator's safe end-of-iteration point (the
observer fires inside :meth:`PathORAMController.step`, before the
hierarchy applies completions and the loop advances the clock — capturing
there would tear the state).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from ..errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api import RunSpec
    from .simulator import Simulator

#: on-disk checkpoint format; bump on any layout change
CHECKPOINT_VERSION = 1

#: sources whose behaviour a frozen simulator encodes — editing any of
#: them may change what an uninterrupted run would have produced, so the
#: salt over them gates resume (``repro.perf.engine.code_salt`` covers
#: only the artifact generators, which is too narrow here)
_SALT_SOURCES = (
    "config.py",
    "stats.py",
    "cache/cache.py",
    "cache/llc.py",
    "core/ir_dwb.py",
    "core/ir_stash.py",
    "core/schemes.py",
    "cpu/processor.py",
    "mem/dram.py",
    "mem/layout.py",
    "oram/controller.py",
    "oram/plb.py",
    "oram/posmap.py",
    "oram/rho.py",
    "oram/ring.py",
    "oram/stash.py",
    "oram/tree.py",
    "oram/treetop.py",
    "sim/simulator.py",
)

_SALT: Optional[str] = None


def _code_salt() -> str:
    global _SALT
    if _SALT is None:
        base = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256(str(CHECKPOINT_VERSION).encode())
        for rel in _SALT_SOURCES:
            path = os.path.join(base, rel)
            digest.update(rel.encode())
            try:
                with open(path, "rb") as handle:
                    digest.update(handle.read())
            except OSError:
                digest.update(b"<missing>")
        _SALT = digest.hexdigest()
    return _SALT


@dataclass
class SimulatorCheckpoint:
    """One frozen mid-run simulator plus the metadata needed to resume it."""

    version: int
    salt: str
    access_index: int
    spec: Optional["RunSpec"]
    sim: "Simulator"


class CheckpointManager:
    """Periodically checkpoints a running simulator.

    Chained onto the controller's ``slot_observer``, it counts issued
    paths and raises :attr:`pending` every ``every`` paths; the simulator
    loop then calls :meth:`take` at its inter-slot boundary.  ``limit``
    bounds how many checkpoints one run writes (0 = unbounded); each
    write replaces the previous file, so the newest checkpoint survives.
    """

    def __init__(
        self,
        every: int,
        path: str,
        spec: Optional["RunSpec"] = None,
        limit: int = 0,
    ) -> None:
        if every <= 0:
            raise CheckpointError("checkpoint_every must be positive")
        self.every = every
        self.path = path
        self.spec = spec
        self.limit = limit
        self.saves = 0
        self.pending = False
        self._since = 0

    # -- slot_observer chain target -----------------------------------------
    def observe(self, result: Any) -> None:
        if not result.issued_path:
            return
        self._since += 1
        if self._since >= self.every and not (
            self.limit and self.saves >= self.limit
        ):
            self.pending = True

    # -- called by Simulator._loop at the safe boundary ----------------------
    def take(self, sim: "Simulator") -> None:
        self.pending = False
        self._since = 0
        save_checkpoint(sim, self.path, spec=self.spec)
        self.saves += 1
        tracer = sim.stats.tracer
        if tracer is not None:
            from ..obs import events as ev

            tracer.emit(
                ev.CHECKPOINT_SAVED,
                sim._now,
                path=self.path,
                paths=sim.controller.path_count,
                saves=self.saves,
            )


def save_checkpoint(
    sim: "Simulator", path: str, spec: Optional["RunSpec"] = None
) -> None:
    """Atomically write ``sim`` (and optionally its spec) to ``path``."""
    payload = SimulatorCheckpoint(
        version=CHECKPOINT_VERSION,
        salt=_code_salt(),
        access_index=sim.controller.path_count,
        spec=spec,
        sim=sim,
    )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> SimulatorCheckpoint:
    """Load a checkpoint, refusing torn, foreign, or stale-build files."""
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path!r}")
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is torn or unreadable: {exc}"
        ) from exc
    if not isinstance(payload, SimulatorCheckpoint):
        raise CheckpointError(
            f"checkpoint {path!r} does not contain a SimulatorCheckpoint"
        )
    if payload.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {payload.version}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    salt = _code_salt()
    if payload.salt != salt:
        raise CheckpointError(
            f"checkpoint {path!r} was taken by a different simulator build "
            f"(salt {payload.salt[:12]}… != {salt[:12]}…); rerun instead of "
            "resuming"
        )
    return payload
