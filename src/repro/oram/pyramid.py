"""Pyramid: a simplified hierarchical-ORAM baseline (Goldreich-Ostrovsky
lineage, as revisited for trusted processors by the Pyramid line of work).

Where Rho pairs the main Path ORAM tree with a second *tree*, Pyramid
pairs it with a small *hierarchy of levels*: level ``i`` holds
``base << i`` buckets of ``bucket_slots`` blocks each.  A lookup probes
one bucket per level (the real bucket on the level holding the block,
uniformly random buckets everywhere else), and a periodic *oblivious
reshuffle* rewrites the entire hierarchy — every bucket of every level is
read and written back in one fixed burst — redistributing blocks across
levels by recency and assigning every kept block a fresh random bucket.

The simplifications relative to a faithful hierarchical ORAM are timing-
model ones, not security ones:

* buckets are on-chip metadata (``pyramid_map``); the DRAM model charges
  for the probe and reshuffle bursts, but bucket contents are not stored
  off chip, so hashing/cuckoo details are abstracted away;
* a probed block is immediately reassigned a fresh uniform level-0
  bucket, so no stored bucket is ever probed twice — the probe address
  stream is uniform i.i.d., which is the property the distinguisher
  harness (:mod:`repro.validate.distinguish`) checks;
* reshuffles trigger on a fixed count of pyramid issue slots (never on
  occupancy or request contents), so their timing is data-independent.

Scheduling mirrors :class:`~repro.oram.rho.RhoController`: issue slots
alternate in a fixed main:pyramid pattern with dummies filling empty
slots, blocks promote exclusively into the pyramid on main-tree reads,
and evicted blocks re-enter the main tree through the stash after their
PosMap entry is restored.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from typing import Deque, List, Optional, Tuple

from .. import stats_keys as sk
from ..config import SystemConfig
from ..errors import ProtocolError
from ..obs import events as ev
from ..stats import Stats
from .controller import PathORAMController, SlotResult
from .types import PathAccessRecord, PathType, Request, RequestKind


def scaled_base_buckets(main_levels: int) -> int:
    """Level-0 bucket count, scaled with the main tree's depth.

    Sized so that the pyramid's block budget (half its slots) captures a
    useful hot set at every preset: 8 buckets at the tiny config's L=9,
    16 at the scaled default, 256 at paper scale.
    """
    return 1 << max(3, main_levels // 3)


class PyramidController(PathORAMController):
    """Main Path ORAM tree plus a small reshuffled bucket hierarchy."""

    #: Pyramid slots interleave probe bursts with main-tree paths; the
    #: native batch kernel only models the single main tree.
    SUPPORTS_NATIVE_BATCH = False

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[Stats] = None,
        rng: Optional[random.Random] = None,
        pyramid_levels: int = 3,
        bucket_slots: int = 4,
        base_buckets: Optional[int] = None,
        probe_per_main: int = 2,
        reshuffle_period: int = 64,
    ) -> None:
        super().__init__(config, stats, rng)
        base = base_buckets or scaled_base_buckets(config.oram.levels)
        self.level_buckets = [base << i for i in range(pyramid_levels)]
        self.bucket_slots = bucket_slots
        #: blocks each level may hold (half its slots, Path-ORAM style)
        self.level_budget = [
            buckets * bucket_slots // 2 for buckets in self.level_buckets
        ]
        self.total_budget = sum(self.level_budget)

        # Physical layout: each level is a contiguous, row-aligned block
        # region placed after the main tree (cf. Rho's small_layout).
        row_blocks = config.dram.row_blocks
        row_cursor = self.layout.end_row()
        self._level_base: List[int] = []
        for buckets in self.level_buckets:
            self._level_base.append(row_cursor * row_blocks)
            blocks = buckets * bucket_slots
            row_cursor += -(-blocks // row_blocks)
        self.pyramid_end_row = row_cursor
        #: every slot address of every level — the reshuffle burst
        self._region_addresses: List[int] = []
        for level, buckets in enumerate(self.level_buckets):
            start = self._level_base[level]
            self._region_addresses.extend(
                range(start, start + buckets * bucket_slots)
            )

        #: on-chip custody map: block -> (level, bucket); insertion order
        #: is recency order (oldest first), doubling as the spill policy
        self.pyramid_map: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self.probe_per_main = probe_per_main
        self._pattern_pos = 0
        self.reshuffle_period = reshuffle_period
        self._reshuffle_countdown = reshuffle_period
        #: blocks spilled from the pyramid awaiting main re-insertion
        self.main_insert_queue: Deque[int] = deque()
        self._pending_main_insert: set = set()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def has_any_real_work(self) -> bool:
        return super().has_any_real_work() or bool(self.main_insert_queue)

    def step(self, now: int, allow_dummy: bool = True) -> Optional[SlotResult]:
        self._drain_posmap_reinserts()
        completions = self._drain_instant(now)
        completions += self._drain_main_inserts(now)

        enforce_pattern = allow_dummy and self.oram.timing_protection
        slot_is_main = self._pattern_pos % (self.probe_per_main + 1) == 0

        result: Optional[SlotResult]
        if enforce_pattern:
            body = (
                self._main_slot(now) if slot_is_main else self._pyramid_slot(now)
            )
            if body is None:
                body = (
                    self.dummy_path(now)
                    if slot_is_main
                    else self._probe_dummy(now)
                )
            result = body
        else:
            result = self._main_slot(now) or self._pyramid_slot(now)

        if result is not None and result.issued_path:
            self._pattern_pos += 1
        if result is not None:
            result.completions = completions + result.completions
        elif completions:
            result = SlotResult(False, None, now, now, now, completions)
        else:
            return None
        observer = self.slot_observer
        if observer is not None:
            observer(result)
        return result

    # ------------------------------------------------------------------
    # instant servicing additions
    # ------------------------------------------------------------------
    def _try_instant(self, request: Request, now: int) -> bool:
        if request.block in self.pyramid_map:
            # Pyramid resident: must wait for a pyramid issue slot.
            return False
        if request.block in self._pending_main_insert:
            # Mid-migration back to the main tree: wait for the re-insert.
            return False
        return super()._try_instant(request, now)

    def _drain_main_inserts(self, now: int) -> List[Request]:
        """Re-insert spilled blocks whose translation is already free."""
        while self.main_insert_queue:
            block = self.main_insert_queue[0]
            if self._translation_chain(block):
                break
            self.main_insert_queue.popleft()
            self._pending_main_insert.discard(block)
            leaf = self.posmap.restore(block)
            parent = self.namespace.parent_block(block)
            if parent is not None:
                self.plb.mark_dirty(parent)
            self.stash.add(block, leaf)
            self.stats.inc(sk.PYRAMID_MAIN_REINSERTS)
        return []

    # ------------------------------------------------------------------
    # main-tree slot
    # ------------------------------------------------------------------
    def _main_slot(self, now: int) -> Optional[SlotResult]:
        if self.internal_queue:
            return self._step_posmap_writeback(now)
        if self.stash.over_threshold(self.oram.eviction_threshold):
            return self._eviction_path(now)
        if self.main_insert_queue:
            block = self.main_insert_queue[0]
            chain = self._translation_chain(block)
            if chain:
                return self.fetch_posmap_block(chain[0], now)
            self._drain_main_inserts(now)
            # fall through: restoring was free; look for other main work
        request = self._first_request_needing_main(now)
        if request is None:
            return None
        chain = self._translation_chain(request.block)
        if chain:
            return self.fetch_posmap_block(chain[0], now)
        self._count_translation(request)
        leaf = self.posmap.leaf_of(request.block)
        location = self._find_in_treetop(request.block, leaf)
        if location is not None:
            self.queue.remove(request)
            self._serve_treetop_hit(request, leaf, location, now)
            return SlotResult(False, None, now, now, now, [request])
        self.queue.remove(request)
        promote = request.kind is RequestKind.READ
        result = self.full_access(
            request.block,
            PathType.DATA,
            now,
            serve_request=request,
            extract_block=promote,
        )
        self.stats.inc(sk.PYRAMID_MAIN_ACCESSES)
        if promote:
            self._promote_to_pyramid(request.block)
        return result

    def _first_request_needing_main(self, now: int) -> Optional[Request]:
        for request in self.queue:
            if request.arrival > now:
                break
            if request.block in self.pyramid_map:
                continue
            if request.block in self._pending_main_insert:
                continue
            return request
        return None

    def _promote_to_pyramid(self, block: int) -> None:
        """Move a freshly extracted block into the pyramid's level 0."""
        if self.posmap.is_mapped(block):
            raise ProtocolError(f"block {block} was not extracted")
        self.pyramid_map[block] = (
            0,
            self.rng.randrange(self.level_buckets[0]),
        )
        self.stats.inc(sk.PYRAMID_PROMOTIONS)
        while len(self.pyramid_map) > self.total_budget:
            victim, _ = self.pyramid_map.popitem(last=False)
            self.main_insert_queue.append(victim)
            self._pending_main_insert.add(victim)
            self.stats.inc(sk.PYRAMID_SPILLS)

    # ------------------------------------------------------------------
    # pyramid slot
    # ------------------------------------------------------------------
    def _pyramid_slot(self, now: int) -> Optional[SlotResult]:
        if self._reshuffle_countdown <= 0:
            return self._reshuffle(now)
        result = self._probe_serve(now)
        if result is not None:
            self._reshuffle_countdown -= 1
        return result

    def _probe_serve(self, now: int) -> Optional[SlotResult]:
        request = self._first_request_needing_pyramid(now)
        if request is None:
            return None
        self.queue.remove(request)
        block = request.block
        residence = self.pyramid_map[block]
        result = self._probe_path(now, PathType.DATA, hit=residence)
        # Served blocks move to level 0 under a *fresh* uniform bucket, so
        # a stored bucket is probed at most once (no repeat-probe leak);
        # re-insertion at the OrderedDict end marks the block most recent.
        del self.pyramid_map[block]
        self.pyramid_map[block] = (
            0,
            self.rng.randrange(self.level_buckets[0]),
        )
        request.completion = result.finish_read
        result.completions.append(request)
        self.stats.inc(sk.PYRAMID_HITS)
        if request.kind is RequestKind.READ:
            self.stats.bump(sk.HIT_LEVEL, "pyramid")
        return result

    def _first_request_needing_pyramid(self, now: int) -> Optional[Request]:
        for request in self.queue:
            if request.arrival > now:
                break
            if request.block in self.pyramid_map:
                return request
        return None

    def _probe_dummy(self, now: int) -> SlotResult:
        # Only reached when _pyramid_slot found no real probe work, which
        # implies the reshuffle countdown was still positive.
        self._reshuffle_countdown -= 1
        self.stats.inc(sk.PYRAMID_PROBE_DUMMIES)
        return self._probe_path(now, PathType.DUMMY)

    # ------------------------------------------------------------------
    # burst machinery
    # ------------------------------------------------------------------
    def _probe_path(
        self,
        now: int,
        path_type: PathType,
        hit: Optional[Tuple[int, int]] = None,
    ) -> SlotResult:
        """One lookup burst: one bucket per pyramid level, read + write."""
        addresses: List[int] = []
        top_bucket = 0
        for level, buckets in enumerate(self.level_buckets):
            if hit is not None and hit[0] == level:
                bucket = hit[1]
            else:
                bucket = self.rng.randrange(buckets)
            if level == 0:
                top_bucket = bucket
            start = self._level_base[level] + bucket * self.bucket_slots
            addresses.extend(range(start, start + self.bucket_slots))
        return self._pyramid_burst(addresses, path_type, now, leaf=top_bucket)

    def _reshuffle(self, now: int) -> SlotResult:
        """Periodic oblivious reshuffle: rewrite the whole hierarchy.

        Externally one fixed burst over every bucket of every level,
        independent of occupancy.  Internally, kept blocks redistribute
        across levels newest-first (level 0 gets the most recent) under
        fresh uniform buckets; blocks beyond the total budget spill to the
        main-insert queue, oldest first.
        """
        self._reshuffle_countdown = self.reshuffle_period
        blocks = list(self.pyramid_map)  # oldest -> newest
        keep = blocks[len(blocks) - min(len(blocks), self.total_budget):]
        spill = blocks[: len(blocks) - len(keep)]
        assign: dict = {}
        level = 0
        used = 0
        for block in reversed(keep):  # newest first, shallowest first
            while used >= self.level_budget[level]:
                level += 1
                used = 0
            assign[block] = (
                level,
                self.rng.randrange(self.level_buckets[level]),
            )
            used += 1
        new_map: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        for block in keep:  # oldest -> newest preserves recency order
            new_map[block] = assign[block]
        self.pyramid_map = new_map
        for block in spill:
            self.main_insert_queue.append(block)
            self._pending_main_insert.add(block)
            self.stats.inc(sk.PYRAMID_SPILLS)
        self.stats.inc(sk.PYRAMID_RESHUFFLES)
        return self._pyramid_burst(
            self._region_addresses, PathType.EVICTION, now, leaf=0
        )

    def _pyramid_burst(
        self, addresses: List[int], path_type: PathType, now: int, leaf: int
    ) -> SlotResult:
        """Shared read+write DRAM burst and bookkeeping for pyramid slots."""
        finish_read = self.dram.service_addresses(addresses, False, now)
        self.path_count += 1
        self.stats.inc(sk.paths_key(path_type))
        self.stats.inc(sk.PATHS_TOTAL)
        self.stats.inc(sk.PATHS_PYRAMID)
        self.stats.inc(sk.MEM_BLOCKS_READ, len(addresses))
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.PATH_READ,
                now,
                path_type=path_type.value,
                leaf=leaf,
                finish=finish_read,
                blocks=len(addresses),
                tree="pyramid",
            )
        if self.observer is not None:
            self.observer(
                PathAccessRecord(
                    issue_cycle=now,
                    leaf=leaf,
                    path_type=path_type,
                    read_addresses=list(addresses),
                    write_addresses=list(addresses),
                )
            )
        finish_write = self.dram.service_addresses(addresses, True, finish_read)
        self.stats.inc(sk.MEM_BLOCKS_WRITTEN, len(addresses))
        if tracer is not None:
            tracer.emit(
                ev.PATH_WRITE,
                finish_read,
                path_type=path_type.value,
                leaf=leaf,
                finish=finish_write,
                blocks=len(addresses),
                tree="pyramid",
            )
        return SlotResult(True, path_type, now, finish_read, finish_write)
