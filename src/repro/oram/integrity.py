"""Merkle-style integrity verification over the ORAM tree.

The threat model (Section II-A) assumes data integrity is protected with a
Merkle tree over the user data (Gassend et al.), with the hash tree laid
out alongside the ORAM tree so verification adds no extra path accesses.
This module provides that layer for the simulator:

* every bucket carries a hash of its slot contents concatenated with its
  children's hashes (so the root authenticates the whole tree);
* the on-chip controller holds only the root hash (the TCB);
* a path read verifies bottom-up against the trusted root
  (:meth:`MerkleIntegrity.verify_path`), and a path write refreshes the
  hashes along the path (:meth:`MerkleIntegrity.update_path`).

Any out-of-TCB tampering — flipping a block ID in a bucket, or forging a
stored sibling hash — makes the recomputed root diverge and raises
:class:`IntegrityError`.

Timing: hashes ride in the bucket metadata the paper's baseline already
fetches (counter-mode MAC co-location), so the DRAM model charges no extra
traffic; the crypto itself is on-chip hardware in the modeled system.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import stats_keys as sk
from ..errors import ReproError
from ..stats import Stats
from .tree import EMPTY, ORAMTree


class IntegrityError(ReproError):
    """A path failed Merkle verification (tampering detected)."""


def _hash(*parts: bytes) -> bytes:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.digest()


_EMPTY_CHILD = b"\x00" * 32


class MerkleIntegrity:
    """Hash tree mirroring an :class:`ORAMTree`.

    Hashes are stored per bucket index, computed lazily: an absent entry
    means the bucket (and its whole subtree) is still in its initial
    state, whose hash is derived on demand.  ``root`` is the trusted
    on-chip copy.
    """

    def __init__(self, tree: ORAMTree, stats: Optional[Stats] = None) -> None:
        self.tree = tree
        self.stats = stats if stats is not None else Stats()
        self._hashes: Dict[int, bytes] = {}
        self.root = self._compute_root()

    # -- hashing ------------------------------------------------------------
    def _bucket_bytes(self, level: int, position: int) -> bytes:
        slots = self.tree.bucket(level, position)
        return b"".join(block.to_bytes(8, "little", signed=True) for block in slots)

    def _child_hash(self, level: int, position: int) -> bytes:
        if level >= self.tree.levels:
            return _EMPTY_CHILD
        return self.stored_hash(level, position)

    def stored_hash(self, level: int, position: int) -> bytes:
        """The stored (untrusted, off-chip) hash of a bucket."""
        index = ORAMTree.bucket_index(level, position)
        cached = self._hashes.get(index)
        if cached is None:
            cached = self.compute_hash(level, position)
            self._hashes[index] = cached
        return cached

    def compute_hash(self, level: int, position: int) -> bytes:
        """Recompute a bucket's hash from contents + stored child hashes."""
        return _hash(
            self._bucket_bytes(level, position),
            self._child_hash(level + 1, 2 * position),
            self._child_hash(level + 1, 2 * position + 1),
        )

    def _compute_root(self) -> bytes:
        """Bottom-up full build (only used at construction / rebuild)."""
        for level in range(self.tree.levels - 1, -1, -1):
            for position in range(1 << level):
                index = ORAMTree.bucket_index(level, position)
                self._hashes[index] = self.compute_hash(level, position)
        return self._hashes[0]

    def rebuild(self) -> None:
        """Recompute every hash and refresh the trusted root."""
        self._hashes.clear()
        self.root = self._compute_root()

    # -- the two path operations -----------------------------------------------
    def update_path(self, leaf: int) -> None:
        """Refresh hashes along a freshly written path, bottom-up, and the
        trusted on-chip root."""
        for level in range(self.tree.levels - 1, -1, -1):
            position = self.tree.path_position(leaf, level)
            index = ORAMTree.bucket_index(level, position)
            self._hashes[index] = self.compute_hash(level, position)
        self.root = self._hashes[0]
        self.stats.inc(sk.INTEGRITY_PATH_UPDATES)

    def verify_path(self, leaf: int, count: bool = True) -> None:
        """Authenticate a path against the trusted root.

        Recomputes each path bucket's hash from its (fetched) contents,
        using the recomputed hash for the on-path child and the stored
        hash for the off-path sibling, and compares the final value with
        the on-chip root.  Raises :class:`IntegrityError` on mismatch.

        ``count=False`` skips the ``integrity.*`` counters: the
        conformance auditor verifies paths out of band and must leave the
        run's statistics bit-identical to an unaudited run.
        """
        levels = self.tree.levels
        running: bytes = b""
        for level in range(levels - 1, -1, -1):
            position = self.tree.path_position(leaf, level)
            if level == levels - 1:
                children = (_EMPTY_CHILD, _EMPTY_CHILD)
            else:
                child_pos = self.tree.path_position(leaf, level + 1)
                sibling_pos = child_pos ^ 1
                sibling = self.stored_hash(level + 1, sibling_pos)
                if child_pos & 1:
                    children = (sibling, running)
                else:
                    children = (running, sibling)
            running = _hash(self._bucket_bytes(level, position), *children)
        if count:
            self.stats.inc(sk.INTEGRITY_PATH_VERIFICATIONS)
        if running != self.root:
            if count:
                self.stats.inc(sk.INTEGRITY_VIOLATIONS)
            raise IntegrityError(
                f"path to leaf {leaf} failed Merkle verification"
            )

    # -- tamper helpers for tests / demos ---------------------------------------
    def forge_stored_hash(self, level: int, position: int) -> None:
        """Simulate an attacker overwriting a stored hash."""
        index = ORAMTree.bucket_index(level, position)
        self.stored_hash(level, position)  # materialize
        self._hashes[index] = _hash(b"forged", self._hashes[index])


#: recovery hook signature: (level, position, slots) -> bool (True = resync)
RecoveryHook = Callable[[int, int, List[int]], bool]


class RingIntegrity:
    """Per-bucket MAC layer for Ring ORAM buckets (the IRO composition).

    Ring buckets are touched one slot at a time and reshuffled out of
    band, so a Merkle path walk does not fit; instead every bucket
    carries a MAC over its slot contents *bound to a trusted on-chip
    epoch counter* (plus its tree coordinates).  The epochs live inside
    the TCB, so replaying a stale bucket together with its stale MAC
    still fails verification: the stale MAC was computed under an older
    epoch value.  This is the counter half of the classic
    Merkle-counter split — root-free because the freshness secret is
    the counter itself, not a hash chain.

    A :data:`RecoveryHook` turns a verification failure into a recovery
    opportunity (IRO's recovery path): when the hook accepts the bucket,
    the layer re-MACs it at the current epoch and the run continues,
    counting an ``integrity.ring_recoveries``.
    """

    def __init__(
        self,
        slots_per_bucket: int,
        stats: Optional[Stats] = None,
        recovery_hook: Optional[RecoveryHook] = None,
    ) -> None:
        self.slots_per_bucket = slots_per_bucket
        self.stats = stats if stats is not None else Stats()
        self.recovery_hook = recovery_hook
        self.recoveries = 0
        self._macs: Dict[Tuple[int, int], bytes] = {}
        #: trusted on-chip epoch per bucket (absent means epoch 0)
        self._epochs: Dict[Tuple[int, int], int] = {}

    # -- MAC computation ----------------------------------------------------
    def _mac(
        self, level: int, position: int, slots: Sequence[int], epoch: int
    ) -> bytes:
        payload = b"".join(
            block.to_bytes(8, "little", signed=True) for block in slots
        )
        return _hash(
            payload,
            epoch.to_bytes(8, "little"),
            level.to_bytes(4, "little"),
            position.to_bytes(4, "little"),
        )

    def epoch_of(self, level: int, position: int) -> int:
        return self._epochs.get((level, position), 0)

    def stored_mac(self, level: int, position: int) -> bytes:
        """The stored (untrusted, off-chip) MAC of a bucket.

        An absent entry means the bucket is still in its initial state:
        all slots empty, epoch 0 — its MAC derives on demand, exactly
        like :meth:`MerkleIntegrity.stored_hash`.
        """
        key = (level, position)
        cached = self._macs.get(key)
        if cached is None:
            cached = self._mac(
                level, position, [EMPTY] * self.slots_per_bucket, 0
            )
            self._macs[key] = cached
        return cached

    # -- the two bucket operations ------------------------------------------
    def verify_bucket(
        self,
        level: int,
        position: int,
        slots: Sequence[int],
        count: bool = True,
    ) -> None:
        """Authenticate one bucket against its stored MAC + trusted epoch.

        ``count=False`` skips the ``integrity.*`` counters (the
        conformance auditor verifies buckets out of band and must leave
        the run's statistics bit-identical to an unaudited run).
        """
        expected = self.stored_mac(level, position)
        actual = self._mac(
            level, position, slots, self.epoch_of(level, position)
        )
        if count:
            self.stats.inc(sk.INTEGRITY_RING_VERIFICATIONS)
        if actual != expected:
            if count:
                self.stats.inc(sk.INTEGRITY_RING_VIOLATIONS)
            raise IntegrityError(
                f"ring bucket (L{level}, {position}) failed MAC "
                f"verification at epoch {self.epoch_of(level, position)}"
            )

    def update_bucket(
        self, level: int, position: int, slots: Sequence[int]
    ) -> None:
        """Advance a bucket's trusted epoch and re-MAC its new contents."""
        key = (level, position)
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        self._macs[key] = self._mac(level, position, slots, epoch)
        self.stats.inc(sk.INTEGRITY_RING_UPDATES)

    def verify_or_recover(
        self, level: int, position: int, slots: Sequence[int]
    ) -> None:
        """Verify a bucket; on failure consult the recovery hook.

        The hook sees ``(level, position, slots)`` and returns True to
        accept the bucket as-recovered — the layer then re-MACs it at
        the current epoch and the run continues.  Without a hook (or on
        rejection) the original :class:`IntegrityError` propagates.
        """
        try:
            self.verify_bucket(level, position, slots)
        except IntegrityError:
            hook = self.recovery_hook
            if hook is not None and hook(level, position, list(slots)):
                self.resync_bucket(level, position, slots)
                return
            raise

    def resync_bucket(
        self, level: int, position: int, slots: Sequence[int]
    ) -> None:
        """Re-MAC a bucket at its current epoch (the recovery path)."""
        key = (level, position)
        self._macs[key] = self._mac(
            level, position, slots, self.epoch_of(level, position)
        )
        self.recoveries += 1
        self.stats.inc(sk.INTEGRITY_RING_RECOVERIES)

    # -- tamper helpers for tests / demos -----------------------------------
    def forge_stored_mac(self, level: int, position: int) -> None:
        """Simulate an attacker overwriting a stored bucket MAC."""
        key = (level, position)
        self.stored_mac(level, position)  # materialize
        self._macs[key] = _hash(b"forged", self._macs[key])


def attach_ring_integrity(
    controller,
    stats: Optional[Stats] = None,
    recovery_hook: Optional[RecoveryHook] = None,
) -> RingIntegrity:
    """Wire a :class:`RingIntegrity` layer into a Ring controller.

    Every ring path access verifies each bucket it touches before
    consuming it and re-MACs mutated buckets afterwards (the controller
    calls ``verify_or_recover`` / ``update_bucket`` through its
    ``ring_integrity`` attribute).  Composes with
    :func:`attach_integrity`, which keeps protecting the main tree.
    """
    integrity = RingIntegrity(
        controller.ring_oram.z_per_level[0],
        stats if stats is not None else controller.stats,
        recovery_hook=recovery_hook,
    )
    controller.ring_integrity = integrity
    return integrity


def attach_integrity(controller, stats: Optional[Stats] = None) -> MerkleIntegrity:
    """Wire a Merkle layer into a controller's path operations.

    Every subsequent path access verifies before the read phase consumes
    the blocks and refreshes the hashes after the write phase.
    """
    integrity = MerkleIntegrity(controller.tree, stats or controller.stats)
    original_service = controller._service_path
    original_write = controller._write_path

    def service_with_verify(leaf, path_type, now):
        integrity.verify_path(leaf)
        return original_service(leaf, path_type, now)

    def write_with_update(leaf, finish_read, path_type, preexisting=None):
        finish = original_write(leaf, finish_read, path_type, preexisting)
        integrity.update_path(leaf)
        return finish

    controller._service_path = service_with_verify
    controller._write_path = write_with_update
    controller.integrity = integrity
    return integrity
