"""Ring ORAM: permuted-slot buckets with single-block reads (Ren et al.,
USENIX Security'15), composed here as a second protocol family next to
the Freecursive Path ORAM main tree.

Where Path ORAM moves ``Z`` blocks per bucket on every path access, Ring
ORAM provisions each bucket with ``Z`` real plus ``S`` dummy slots under a
secret permutation and touches exactly **one slot per bucket** on a
ReadPath: the target's slot where the bucket holds the target, a
never-before-touched dummy slot everywhere else.  The responses XOR
together into a single returned block (modeled by the one-slot address
footprint plus the ``ring.xor_returns`` counter).  Three mechanisms keep
the permutation sound:

* a per-bucket **access counter** tracks touched slots; when it reaches
  ``S`` the bucket is **early-reshuffled** — read and rewritten whole, its
  real blocks re-permuted into fresh slots — as an extra bucket burst
  appended to the same path access;
* an **EvictPath** runs every ``A`` ReadPaths on a deterministic
  reverse-lexicographic leaf schedule (``bit_reverse(G)``), reading whole
  buckets into the ring stash and refilling them greedily bottom-up;
* slot choices are made only among never-touched dummy slots, so no slot
  is ever read twice between reshuffles (the invariant the conformance
  auditor checks).

Composition mirrors :class:`~repro.oram.rho.RhoController`: the ring tree
captures the hot working set behind the main Freecursive tree, issue
slots follow a fixed main:ring pattern with dummies of the matching kind,
blocks promote exclusively into the ring on main-tree reads, and evicted
blocks re-enter the main tree through the stash once their PosMap entry
is restored.

Integrity (the IRO composition): per-bucket MACs bound to trusted
on-chip epoch counters (:class:`~repro.oram.integrity.RingIntegrity`)
verify every bucket a ring path touches and re-MAC it after mutation;
a recovery hook can resynchronize a bucket instead of failing the run.
The main tree keeps the existing Merkle machinery
(:func:`~repro.oram.integrity.attach_integrity`), which wraps this
controller's inherited path operations unchanged.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from .. import stats_keys as sk
from ..config import ORAMConfig, SystemConfig
from ..errors import ProtocolError
from ..mem.layout import TreeLayout
from ..obs import events as ev
from ..stats import Stats
from .controller import ONCHIP_LATENCY, PathORAMController, SlotResult
from .stash import Stash
from .tree import EMPTY
from .types import PathAccessRecord, PathType, Request, RequestKind

#: real slots per ring bucket
RING_Z = 4
#: dummy slots per ring bucket (reshuffle threshold)
RING_S = 6
#: ReadPaths between scheduled EvictPaths (Ring ORAM's ``A``)
RING_EVICT_RATE = 4


def scaled_ring_levels(main_levels: int, llc_lines: int = 2048) -> int:
    """Ring-tree depth sized so its capacity dwarfs the LLC.

    Like Rho's small tree, the ring tree only pays off when it captures
    the post-LLC working set; its real-slot budget (half the Z slots)
    must exceed the LLC by a comfortable factor.  At the tiny preset
    (256-line LLC) this yields L=8; paper-scale LLCs deepen it.
    """
    return max(3, min(main_levels - 1, (2 * llc_lines).bit_length()))


def _bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value`` (EvictPath schedule)."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class RingBucket:
    """One ring bucket: ``Z + S`` permuted slots plus on-chip metadata.

    ``slots`` is the off-chip (MAC-covered) content; ``touched`` (the set
    of slot indices read since the last reshuffle) and ``count`` live in
    the on-chip metadata the controller trusts.  ``count`` always equals
    ``len(touched)`` and stays strictly below ``S`` between path
    accesses — both audited invariants.
    """

    __slots__ = ("slots", "touched", "count")

    def __init__(self, capacity: int) -> None:
        self.slots: List[int] = [EMPTY] * capacity
        self.touched: Set[int] = set()
        self.count = 0

    def __getstate__(self):
        return (self.slots, self.touched, self.count)

    def __setstate__(self, state):
        self.slots, self.touched, self.count = state


class RingController(PathORAMController):
    """Two-tree controller: Freecursive main tree + a Ring ORAM hot tree."""

    #: Ring slots touch one slot per bucket and append reshuffle bursts;
    #: the native batch kernel only models full Path ORAM paths.
    SUPPORTS_NATIVE_BATCH = False

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[Stats] = None,
        rng: Optional[random.Random] = None,
        ring_levels: Optional[int] = None,
        ring_per_main: int = 2,
    ) -> None:
        super().__init__(config, stats, rng)
        levels = ring_levels or scaled_ring_levels(
            config.oram.levels, config.llc.lines
        )
        self.ring_budget = RING_Z * ((1 << levels) - 1) // 2
        ring_oram = ORAMConfig(
            levels=levels,
            user_blocks=max(1, self.ring_budget),
            z_per_level=(RING_Z + RING_S,) * levels,
            top_cached_levels=0,
            stash_capacity=config.oram.stash_capacity,
            eviction_threshold=config.oram.eviction_threshold,
            timing_protection=config.oram.timing_protection,
            issue_interval=config.oram.issue_interval,
        )
        self.ring_oram = ring_oram
        self.ring_leaves = 1 << (levels - 1)
        #: (level, position) -> RingBucket, materialized on first touch
        self._ring_buckets: Dict[Tuple[int, int], RingBucket] = {}
        self.ring_stash = Stash(ring_oram.stash_capacity, self.stats)
        #: on-chip ring position map; insertion order is LRU order
        self.ring_map: "OrderedDict[int, int]" = OrderedDict()
        self.ring_layout = TreeLayout(
            ring_oram, config.dram, base_row=self.layout.end_row()
        )
        self.ring_per_main = ring_per_main
        self._pattern_pos = 0
        #: ReadPaths issued since the last EvictPath (compared against A)
        self._ring_reads_since_evict = 0
        #: EvictPath counter G: leaf = bit_reverse(G mod leaves)
        self._evict_counter = 0
        #: ring victims awaiting extraction (still mapped until done)
        self.extraction_queue: Deque[int] = deque()
        self._evicting: set = set()
        #: blocks extracted from the ring awaiting main re-insertion
        self.main_insert_queue: Deque[int] = deque()
        self._pending_main_insert: set = set()
        #: per-bucket MAC layer (attach_ring_integrity); None in plain runs
        self.ring_integrity = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def has_any_real_work(self) -> bool:
        return (
            super().has_any_real_work()
            or bool(self.extraction_queue)
            or bool(self.main_insert_queue)
        )

    def step(self, now: int, allow_dummy: bool = True) -> Optional[SlotResult]:
        self._drain_posmap_reinserts()
        completions = self._drain_instant(now)
        completions += self._drain_main_inserts(now)

        enforce_pattern = allow_dummy and self.oram.timing_protection
        slot_is_main = self._pattern_pos % (self.ring_per_main + 1) == 0

        result: Optional[SlotResult]
        if enforce_pattern:
            body = self._main_slot(now) if slot_is_main else self._ring_slot(now)
            if body is None:
                body = (
                    # _dummy_slot (not dummy_path) so an attached DWB
                    # engine can convert idle main slots (Ring+IR-DWB).
                    self._dummy_slot(now)
                    if slot_is_main
                    else self._ring_dummy(now)
                )
            result = body
        else:
            result = self._main_slot(now) or self._ring_slot(now)

        if result is not None and result.issued_path:
            self._pattern_pos += 1
        if result is not None:
            result.completions = completions + result.completions
        elif completions:
            result = SlotResult(False, None, now, now, now, completions)
        else:
            return None
        observer = self.slot_observer
        if observer is not None:
            observer(result)
        return result

    # ------------------------------------------------------------------
    # instant servicing additions
    # ------------------------------------------------------------------
    def _try_instant(self, request: Request, now: int) -> bool:
        if request.block in self.ring_stash:
            request.completion = now + ONCHIP_LATENCY
            self.stats.inc(sk.RING_STASH_HITS)
            if request.kind is RequestKind.READ:
                self.stats.bump(sk.HIT_LEVEL, "ring-stash")
            return True
        if request.block in self.ring_map:
            # Ring resident: must wait for a ring issue slot.
            return False
        if request.block in self._pending_main_insert:
            # Mid-migration back to the main tree: wait for the re-insert.
            return False
        return super()._try_instant(request, now)

    def _drain_main_inserts(self, now: int) -> List[Request]:
        """Re-insert extracted blocks whose translation is already free."""
        while self.main_insert_queue:
            block = self.main_insert_queue[0]
            if self._translation_chain(block):
                break
            self.main_insert_queue.popleft()
            self._pending_main_insert.discard(block)
            leaf = self.posmap.restore(block)
            parent = self.namespace.parent_block(block)
            if parent is not None:
                self.plb.mark_dirty(parent)
            self.stash.add(block, leaf)
            self.stats.inc(sk.RING_MAIN_REINSERTS)
        return []

    # ------------------------------------------------------------------
    # main-tree slot
    # ------------------------------------------------------------------
    def _main_slot(self, now: int) -> Optional[SlotResult]:
        if self.internal_queue:
            return self._step_posmap_writeback(now)
        if self.stash.over_threshold(self.oram.eviction_threshold):
            return self._eviction_path(now)
        if self.main_insert_queue:
            block = self.main_insert_queue[0]
            chain = self._translation_chain(block)
            if chain:
                return self.fetch_posmap_block(chain[0], now)
            self._drain_main_inserts(now)
            # fall through: restoring was free; look for other main work
        request = self._first_request_needing_main(now)
        if request is None:
            return None
        chain = self._translation_chain(request.block)
        if chain:
            return self.fetch_posmap_block(chain[0], now)
        self._count_translation(request)
        leaf = self.posmap.leaf_of(request.block)
        location = self._find_in_treetop(request.block, leaf)
        if location is not None:
            self.queue.remove(request)
            self._serve_treetop_hit(request, leaf, location, now)
            return SlotResult(False, None, now, now, now, [request])
        self.queue.remove(request)
        promote = request.kind is RequestKind.READ
        result = self.full_access(
            request.block,
            PathType.DATA,
            now,
            serve_request=request,
            extract_block=promote,
        )
        self.stats.inc(sk.RING_MAIN_ACCESSES)
        if promote:
            self._promote_to_ring(request.block)
        return result

    def _first_request_needing_main(self, now: int) -> Optional[Request]:
        for request in self.queue:
            if request.arrival > now:
                break
            if request.block in self.ring_map:
                continue
            if request.block in self._pending_main_insert:
                continue
            return request
        return None

    def _promote_to_ring(self, block: int) -> None:
        """Move a freshly extracted block into the ring tree."""
        if self.posmap.is_mapped(block):
            raise ProtocolError(f"block {block} was not extracted")
        leaf = self.rng.randrange(self.ring_leaves)
        self.ring_map[block] = leaf
        self.ring_stash.add(block, leaf)
        self.stats.inc(sk.RING_PROMOTIONS)
        overflow = len(self.ring_map) - len(self._evicting) - self.ring_budget
        for candidate in list(self.ring_map):
            if overflow <= 0:
                break
            if candidate in self._evicting:
                continue
            overflow -= 1
            self.stats.inc(sk.RING_EVICTIONS)
            if candidate in self.ring_stash:
                self.ring_stash.remove(candidate)
                del self.ring_map[candidate]
                self.main_insert_queue.append(candidate)
                self._pending_main_insert.add(candidate)
            else:
                self._evicting.add(candidate)
                self.extraction_queue.append(candidate)

    # ------------------------------------------------------------------
    # ring slot
    # ------------------------------------------------------------------
    def _ring_slot(self, now: int) -> Optional[SlotResult]:
        if (
            self.ring_stash.over_threshold(self.ring_oram.eviction_threshold)
            or self._ring_reads_since_evict >= RING_EVICT_RATE
        ):
            return self._ring_evict_path(now)
        extraction = self._next_extraction()
        if extraction is not None:
            victim, leaf = extraction
            result = self._ring_read_path(
                leaf, now, PathType.EVICTION, target=victim, extract=True
            )
            del self.ring_map[victim]
            self._evicting.discard(victim)
            self.main_insert_queue.append(victim)
            self._pending_main_insert.add(victim)
            self.stats.inc(sk.RING_EXTRACTIONS)
            return result
        request = self._first_request_needing_ring(now)
        if request is None:
            return None
        self.queue.remove(request)
        block = request.block
        if block in self.ring_stash:
            # Resident in the on-chip ring stash: served with no path.
            request.completion = now + ONCHIP_LATENCY
            self.stats.inc(sk.RING_STASH_HITS)
            return SlotResult(False, None, now, now, now, [request])
        leaf = self.ring_map[block]
        # A demand access cancels any pending eviction of this block.
        self._evicting.discard(block)
        self.ring_map.move_to_end(block)
        new_leaf = self.rng.randrange(self.ring_leaves)
        self.ring_map[block] = new_leaf
        result = self._ring_read_path(
            leaf, now, PathType.DATA, target=block, new_leaf=new_leaf
        )
        request.completion = result.finish_read
        result.completions.append(request)
        self.stats.inc(sk.RING_HITS)
        if request.kind is RequestKind.READ:
            self.stats.bump(sk.HIT_LEVEL, "ring-tree")
        return result

    def _next_extraction(self) -> Optional[Tuple[int, int]]:
        """Next still-valid victim and its current ring leaf."""
        while self.extraction_queue:
            victim = self.extraction_queue.popleft()
            if victim not in self._evicting or victim not in self.ring_map:
                continue  # cancelled by a demand access
            if victim in self.ring_stash:
                # It drifted into the stash meanwhile: extract for free.
                self.ring_stash.remove(victim)
                del self.ring_map[victim]
                self._evicting.discard(victim)
                self.main_insert_queue.append(victim)
                self._pending_main_insert.add(victim)
                continue
            return victim, self.ring_map[victim]
        return None

    def _first_request_needing_ring(self, now: int) -> Optional[Request]:
        for request in self.queue:
            if request.arrival > now:
                break
            if request.block in self.ring_map:
                return request
        return None

    def _ring_dummy(self, now: int) -> SlotResult:
        leaf = self.rng.randrange(self.ring_leaves)
        self.stats.inc(sk.RING_DUMMIES)
        return self._ring_read_path(leaf, now, PathType.DUMMY)

    # ------------------------------------------------------------------
    # ring path machinery
    # ------------------------------------------------------------------
    def _ring_bucket(self, level: int, position: int) -> RingBucket:
        key = (level, position)
        bucket = self._ring_buckets.get(key)
        if bucket is None:
            bucket = RingBucket(RING_Z + RING_S)
            self._ring_buckets[key] = bucket
        return bucket

    def iter_ring_buckets(self) -> Iterable[Tuple[int, int, RingBucket]]:
        """Yield ``(level, position, bucket)`` for materialized buckets."""
        for (level, position), bucket in self._ring_buckets.items():
            yield level, position, bucket

    def leaf_spaces(self) -> Dict[int, int]:
        """Observed-size -> leaf-space map for the obliviousness checker.

        A ReadPath exposes one address per level plus one whole bucket
        per early-reshuffled bucket; an EvictPath exposes ``Z`` slots
        per bucket on its read phase.  All of those sizes draw leaves
        from the ring tree's leaf space, not the main tree's.  The main
        tree's own path size is excluded defensively so a size
        collision can never re-judge main-tree paths against the ring's
        leaf space.
        """
        levels = self.ring_oram.levels
        bucket = RING_Z + RING_S
        spaces = {RING_Z * levels: self.ring_leaves}
        for reshuffled in range(levels + 1):
            spaces[levels + reshuffled * bucket] = self.ring_leaves
        main_size = sum(
            self.oram.z_per_level[level]
            for level in range(self.oram.top_cached_levels, self.oram.levels)
        )
        spaces.pop(main_size, None)
        return spaces

    def _ring_verify(self, level: int, position: int, bucket: RingBucket):
        integrity = self.ring_integrity
        if integrity is not None:
            integrity.verify_or_recover(level, position, bucket.slots)

    def _ring_update(self, level: int, position: int, bucket: RingBucket):
        integrity = self.ring_integrity
        if integrity is not None:
            integrity.update_bucket(level, position, bucket.slots)

    def _ring_read_path(
        self,
        leaf: int,
        now: int,
        path_type: PathType,
        target: Optional[int] = None,
        extract: bool = False,
        new_leaf: Optional[int] = None,
    ) -> SlotResult:
        """One ReadPath: a single slot per bucket, XOR-compressed return.

        Buckets whose access counter reaches ``S`` are early-reshuffled
        in the same issue slot: their whole bucket is appended to both
        the read and write footprint and their real blocks re-permute
        into fresh slots.
        """
        levels = self.ring_oram.levels
        read_addresses: List[int] = []
        write_addresses: List[int] = []
        path_buckets: List[Tuple[int, int, RingBucket]] = []
        found = False
        for level in range(levels):
            position = leaf >> (levels - 1 - level)
            bucket = self._ring_bucket(level, position)
            self._ring_verify(level, position, bucket)
            path_buckets.append((level, position, bucket))
            slots = bucket.slots
            if target is not None and not found and target in slots:
                slot = slots.index(target)
                slots[slot] = EMPTY  # invalidated: the XOR return owns it
                found = True
                mutated = True
            else:
                # Never re-read a touched slot: pick an untouched dummy.
                # count < S guarantees at least one exists (real slots
                # are never touched while valid).
                candidates = [
                    index
                    for index, occupant in enumerate(slots)
                    if occupant == EMPTY and index not in bucket.touched
                ]
                slot = self.rng.choice(candidates)
                mutated = False
            bucket.touched.add(slot)
            bucket.count += 1
            read_addresses.append(
                self.ring_layout.slot_address(level, position, slot)
            )
            if mutated:
                self._ring_update(level, position, bucket)
        if target is not None and not found:
            raise ProtocolError(f"block {target} absent from its ring path")
        if target is not None:
            self.stats.inc(sk.RING_XOR_RETURNS)
            if not extract:
                self.ring_stash.add(target, new_leaf)
        for level, position, bucket in path_buckets:
            if bucket.count >= RING_S:
                burst = self.ring_layout.bucket_addresses(level, position)
                read_addresses.extend(burst)
                write_addresses.extend(burst)
                self._ring_reshuffle(bucket)
                self._ring_update(level, position, bucket)
                self.stats.inc(sk.RING_EARLY_RESHUFFLES)
        self._ring_reads_since_evict += 1
        return self._ring_burst(
            read_addresses, write_addresses, path_type, now, leaf
        )

    def _ring_reshuffle(self, bucket: RingBucket) -> None:
        """Re-permute a bucket's real blocks into fresh slots in place."""
        slots = bucket.slots
        real = [block for block in slots if block != EMPTY]
        fresh = [EMPTY] * len(slots)
        for block, slot in zip(real, self.rng.sample(range(len(slots)), len(real))):
            fresh[slot] = block
        slots[:] = fresh
        bucket.touched.clear()
        bucket.count = 0

    def _ring_evict_path(self, now: int) -> SlotResult:
        """EvictPath on the reverse-lexicographic schedule.

        The read phase touches exactly ``Z`` permuted slots per bucket
        along ``bit_reverse(G)`` — the real slots, padded with
        randomly-chosen empties to the fixed shape (the permutation is
        what lets the controller pull only the real blocks without
        revealing which logical blocks they are).  The write phase
        rewrites each whole bucket, greedily refilled bottom-up with at
        most ``Z`` real blocks, freshly permuted.
        """
        levels = self.ring_oram.levels
        leaf = _bit_reverse(self._evict_counter % self.ring_leaves, levels - 1)
        self._evict_counter += 1
        self._ring_reads_since_evict = 0
        read_addresses: List[int] = []
        write_addresses: List[int] = []
        path_buckets: List[Tuple[int, int, RingBucket]] = []
        for level in range(levels):
            position = leaf >> (levels - 1 - level)
            bucket = self._ring_bucket(level, position)
            self._ring_verify(level, position, bucket)
            path_buckets.append((level, position, bucket))
            read_slots = [
                index
                for index, block in enumerate(bucket.slots)
                if block != EMPTY
            ]
            pad = [
                index
                for index, block in enumerate(bucket.slots)
                if block == EMPTY
            ]
            read_slots.extend(
                self.rng.sample(pad, RING_Z - len(read_slots))
            )
            for slot in read_slots:
                read_addresses.append(
                    self.ring_layout.slot_address(level, position, slot)
                )
            write_addresses.extend(
                self.ring_layout.bucket_addresses(level, position)
            )
            for index, block in enumerate(bucket.slots):
                if block == EMPTY:
                    continue
                if block not in self.ring_map:
                    raise ProtocolError(
                        f"block {block} missing from the ring map"
                    )
                self.ring_stash.add(block, self.ring_map[block])
                bucket.slots[index] = EMPTY
            bucket.touched.clear()
            bucket.count = 0
        pools: List[List[int]] = [[] for _ in range(levels)]
        for block, block_leaf in self.ring_stash.items():
            depth = (levels - 1) - (leaf ^ block_leaf).bit_length()
            pools[depth].append(block)
        pool: List[int] = []
        for level in range(levels - 1, -1, -1):
            pool.extend(pools[level])
            if not pool:
                continue
            _, _, bucket = path_buckets[level]
            empties = [
                index
                for index, occupant in enumerate(bucket.slots)
                if occupant == EMPTY
            ]
            placed = 0
            while pool and placed < RING_Z:
                block = pool.pop()
                slot = empties.pop(self.rng.randrange(len(empties)))
                bucket.slots[slot] = block
                self.ring_stash.remove(block)
                placed += 1
        for level, position, bucket in path_buckets:
            self._ring_update(level, position, bucket)
        self.stats.inc(sk.RING_EVICT_PATHS)
        result = self._ring_burst(
            read_addresses, write_addresses, PathType.EVICTION, now, leaf
        )
        if self.oram.timing_protection:
            # The EvictPath slot has a deterministic public cost of two
            # issue intervals: its fine-grained service time depends on
            # DRAM bank state (and therefore on recent program
            # behaviour), so the next issue is pinned to a fixed
            # boundary rather than the data-dependent finish.
            result.finish_write = max(
                result.finish_write, now + 2 * self.oram.issue_interval
            )
        return result

    def _ring_burst(
        self,
        read_addresses: List[int],
        write_addresses: List[int],
        path_type: PathType,
        now: int,
        leaf: int,
    ) -> SlotResult:
        """Shared DRAM service and bookkeeping for ring path accesses."""
        finish_read = self.dram.service_addresses(read_addresses, False, now)
        self.path_count += 1
        self.stats.inc(sk.paths_key(path_type))
        self.stats.inc(sk.PATHS_TOTAL)
        self.stats.inc(sk.PATHS_RING_TREE)
        self.stats.inc(sk.MEM_BLOCKS_READ, len(read_addresses))
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.PATH_READ,
                now,
                path_type=path_type.value,
                leaf=leaf,
                finish=finish_read,
                blocks=len(read_addresses),
                tree="ring",
            )
        if self.observer is not None:
            self.observer(
                PathAccessRecord(
                    issue_cycle=now,
                    leaf=leaf,
                    path_type=path_type,
                    read_addresses=list(read_addresses),
                    write_addresses=list(write_addresses),
                )
            )
        if write_addresses:
            finish_write = self.dram.service_addresses(
                write_addresses, True, finish_read
            )
            self.stats.inc(sk.MEM_BLOCKS_WRITTEN, len(write_addresses))
            if tracer is not None:
                tracer.emit(
                    ev.PATH_WRITE,
                    finish_read,
                    path_type=path_type.value,
                    leaf=leaf,
                    finish=finish_write,
                    blocks=len(write_addresses),
                    tree="ring",
                )
        else:
            finish_write = finish_read
        return SlotResult(True, path_type, now, finish_read, finish_write)
