"""Rho: relaxed hierarchical ORAM (Nagarajan et al., ASPLOS'19) — the
state-of-the-art baseline the paper compares against.

Rho adds a second, much smaller ORAM tree (best setting in the paper:
L=19, Z=2 at paper scale) that captures the hot working set: most accesses
are served by short, cheap paths in the small tree, and only misses (plus
PosMap traffic and small-tree evictions) touch the main tree.  To keep the
two path lengths from leaking timing information, path accesses follow a
fixed issue *pattern* — one main-tree access per ``small_per_main``
small-tree accesses — with dummy paths of the appropriate kind inserted
whenever the scheduled slot has no matching real work.  This defense is
exactly what hurts read-intensive programs like mcf in Fig. 10: with a
cold small tree almost every request needs main-tree slots, which only
come around once per pattern period.

Block movement model:

* a main-tree access that serves a demand moves the block *exclusively*
  into the small tree (its main mapping is discarded, Nagarajan-style);
* the small tree's position map is small enough to live on chip (an LRU
  ordered map, which doubles as the victim-selection policy);
* when small-tree occupancy exceeds its budget, the LRU block is extracted
  (a small-tree path access if it is not already in the small stash) and
  re-inserted into the main tree through the stash after its PosMap entry
  is restored (main-tree PosMap paths as needed).
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from typing import Deque, List, Optional, Tuple

from .. import stats_keys as sk
from ..config import ORAMConfig, SystemConfig
from ..errors import ProtocolError
from ..mem.layout import TreeLayout
from ..obs import events as ev
from ..stats import Stats
from .controller import ONCHIP_LATENCY, PathORAMController, SlotResult
from .stash import Stash
from .tree import ORAMTree
from .types import PathType, Request, RequestKind


def scaled_small_levels(main_levels: int, llc_lines: int = 2048) -> int:
    """Small-tree depth sized so its capacity dwarfs the LLC.

    Rho only pays off when the small tree captures the post-LLC working
    set, so its block budget (half its slots at Z=2) must be several times
    the LLC.  At paper scale (32K-line LLC) this yields L=18-19, matching
    the paper's best setting; scaled configurations shrink accordingly.
    """
    return max(3, min(main_levels - 1, (4 * llc_lines).bit_length()))


class RhoController(PathORAMController):
    """Two-tree ORAM controller with a fixed main:small issue pattern."""

    #: Dummy slots alternate between the two trees here; the native batch
    #: kernel only models a single tree, so batches step per slot.
    SUPPORTS_NATIVE_BATCH = False

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[Stats] = None,
        rng: Optional[random.Random] = None,
        small_levels: Optional[int] = None,
        small_z: int = 2,
        small_per_main: int = 2,
    ) -> None:
        super().__init__(config, stats, rng)
        levels = small_levels or scaled_small_levels(
            config.oram.levels, config.llc.lines
        )
        slots = small_z * ((1 << levels) - 1)
        self.small_budget = slots // 2
        small_oram = ORAMConfig(
            levels=levels,
            user_blocks=max(1, self.small_budget),
            z_per_level=(small_z,) * levels,
            top_cached_levels=0,
            stash_capacity=config.oram.stash_capacity,
            eviction_threshold=config.oram.eviction_threshold,
            timing_protection=config.oram.timing_protection,
            issue_interval=config.oram.issue_interval,
        )
        self.small_oram = small_oram
        self.small_tree = ORAMTree(small_oram)
        self.small_stash = Stash(small_oram.stash_capacity, self.stats)
        #: on-chip small-tree position map; insertion order is LRU order
        self.small_map: "OrderedDict[int, int]" = OrderedDict()
        self.small_layout = TreeLayout(
            small_oram, config.dram, base_row=self.layout.end_row()
        )
        self.small_per_main = small_per_main
        self._pattern_pos = 0
        #: small-tree victims awaiting extraction (still mapped until done)
        self.extraction_queue: Deque[int] = deque()
        self._evicting: set = set()
        #: blocks extracted from the small tree awaiting main re-insertion
        self.main_insert_queue: Deque[int] = deque()
        self._pending_main_insert: set = set()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def has_any_real_work(self) -> bool:
        return (
            super().has_any_real_work()
            or bool(self.extraction_queue)
            or bool(self.main_insert_queue)
        )

    def step(self, now: int, allow_dummy: bool = True) -> Optional[SlotResult]:
        self._drain_posmap_reinserts()
        completions = self._drain_instant(now)
        completions += self._drain_main_inserts(now)

        enforce_pattern = allow_dummy and self.oram.timing_protection
        slot_is_main = self._pattern_pos % (self.small_per_main + 1) == 0

        result: Optional[SlotResult]
        if enforce_pattern:
            body = self._main_slot(now) if slot_is_main else self._small_slot(now)
            if body is None:
                body = (
                    self.dummy_path(now)
                    if slot_is_main
                    else self._small_dummy(now)
                )
            result = body
        else:
            result = self._main_slot(now) or self._small_slot(now)

        if result is not None and result.issued_path:
            self._pattern_pos += 1
        if result is not None:
            result.completions = completions + result.completions
        elif completions:
            result = SlotResult(False, None, now, now, now, completions)
        else:
            return None
        observer = self.slot_observer
        if observer is not None:
            observer(result)
        return result

    # ------------------------------------------------------------------
    # instant servicing additions
    # ------------------------------------------------------------------
    def _try_instant(self, request: Request, now: int) -> bool:
        if request.block in self.small_stash:
            request.completion = now + ONCHIP_LATENCY
            self.stats.inc(sk.RHO_SMALL_STASH_HITS)
            if request.kind is RequestKind.READ:
                self.stats.bump(sk.HIT_LEVEL, "small-stash")
            return True
        if request.block in self.small_map:
            # Small-tree resident: must wait for a small-tree issue slot.
            return False
        if request.block in self._pending_main_insert:
            # Mid-migration back to the main tree: wait for the re-insert.
            return False
        return super()._try_instant(request, now)

    def _drain_main_inserts(self, now: int) -> List[Request]:
        """Re-insert extracted blocks whose translation is already free."""
        while self.main_insert_queue:
            block = self.main_insert_queue[0]
            if self._translation_chain(block):
                break
            self.main_insert_queue.popleft()
            self._pending_main_insert.discard(block)
            leaf = self.posmap.restore(block)
            parent = self.namespace.parent_block(block)
            if parent is not None:
                self.plb.mark_dirty(parent)
            self.stash.add(block, leaf)
            self.stats.inc(sk.RHO_MAIN_REINSERTS)
        return []

    # ------------------------------------------------------------------
    # main-tree slot
    # ------------------------------------------------------------------
    def _main_slot(self, now: int) -> Optional[SlotResult]:
        if self.internal_queue:
            return self._step_posmap_writeback(now)
        if self.stash.over_threshold(self.oram.eviction_threshold):
            return self._eviction_path(now)
        if self.main_insert_queue:
            block = self.main_insert_queue[0]
            chain = self._translation_chain(block)
            if chain:
                return self.fetch_posmap_block(chain[0], now)
            self._drain_main_inserts(now)
            # fall through: restoring was free; look for other main work
        request = self._first_request_needing_main(now)
        if request is None:
            return None
        chain = self._translation_chain(request.block)
        if chain:
            return self.fetch_posmap_block(chain[0], now)
        self._count_translation(request)
        leaf = self.posmap.leaf_of(request.block)
        location = self._find_in_treetop(request.block, leaf)
        if location is not None:
            self.queue.remove(request)
            self._serve_treetop_hit(request, leaf, location, now)
            return SlotResult(False, None, now, now, now, [request])
        self.queue.remove(request)
        promote = request.kind is RequestKind.READ
        result = self.full_access(
            request.block,
            PathType.DATA,
            now,
            serve_request=request,
            extract_block=promote,
        )
        self.stats.inc(sk.RHO_MAIN_ACCESSES)
        if promote:
            self._promote_to_small(request.block)
        return result

    def _first_request_needing_main(self, now: int) -> Optional[Request]:
        for request in self.queue:
            if request.arrival > now:
                break
            if request.block in self.small_map:
                continue
            if request.block in self._pending_main_insert:
                continue
            return request
        return None

    def _promote_to_small(self, block: int) -> None:
        """Move a freshly extracted block into the small tree."""
        if self.posmap.is_mapped(block):
            raise ProtocolError(f"block {block} was not extracted")
        leaf = self.rng.randrange(1 << (self.small_oram.levels - 1))
        self.small_map[block] = leaf
        self.small_stash.add(block, leaf)
        self.stats.inc(sk.RHO_PROMOTIONS)
        overflow = len(self.small_map) - len(self._evicting) - self.small_budget
        for candidate in list(self.small_map):
            if overflow <= 0:
                break
            if candidate in self._evicting:
                continue
            overflow -= 1
            self.stats.inc(sk.RHO_SMALL_EVICTIONS)
            if candidate in self.small_stash:
                self.small_stash.remove(candidate)
                del self.small_map[candidate]
                self.main_insert_queue.append(candidate)
                self._pending_main_insert.add(candidate)
            else:
                self._evicting.add(candidate)
                self.extraction_queue.append(candidate)

    # ------------------------------------------------------------------
    # small-tree slot
    # ------------------------------------------------------------------
    def _small_slot(self, now: int) -> Optional[SlotResult]:
        if self.small_stash.over_threshold(self.small_oram.eviction_threshold):
            leaf = self.rng.randrange(1 << (self.small_oram.levels - 1))
            self.stats.inc(sk.RHO_SMALL_EVICTION_PATHS)
            return self._small_path(leaf, now, PathType.EVICTION)
        extraction = self._next_extraction()
        if extraction is not None:
            victim, leaf = extraction
            result = self._small_path(leaf, now, PathType.EVICTION, extract=victim)
            del self.small_map[victim]
            self._evicting.discard(victim)
            self.main_insert_queue.append(victim)
            self._pending_main_insert.add(victim)
            self.stats.inc(sk.RHO_EXTRACTIONS)
            return result
        request = self._first_request_needing_small(now)
        if request is None:
            return None
        self.queue.remove(request)
        block = request.block
        if block in self.small_stash:
            # Resident in the on-chip small stash: served with no path.
            request.completion = now + ONCHIP_LATENCY
            self.stats.inc(sk.RHO_SMALL_STASH_HITS)
            return SlotResult(False, None, now, now, now, [request])
        leaf = self.small_map[block]
        # A demand access cancels any pending eviction of this block.
        self._evicting.discard(block)
        self.small_map.move_to_end(block)
        new_leaf = self.rng.randrange(1 << (self.small_oram.levels - 1))
        self.small_map[block] = new_leaf
        result = self._small_path(
            leaf, now, PathType.DATA, remapped=(block, new_leaf)
        )
        request.completion = result.finish_read
        result.completions.append(request)
        self.stats.inc(sk.RHO_SMALL_HITS)
        if request.kind is RequestKind.READ:
            self.stats.bump(sk.HIT_LEVEL, "small-tree")
        return result

    def _next_extraction(self) -> Optional[Tuple[int, int]]:
        """Next still-valid victim and its current small-tree leaf."""
        while self.extraction_queue:
            victim = self.extraction_queue.popleft()
            if victim not in self._evicting or victim not in self.small_map:
                continue  # cancelled by a demand access
            if victim in self.small_stash:
                # It drifted into the stash meanwhile: extract for free.
                self.small_stash.remove(victim)
                del self.small_map[victim]
                self._evicting.discard(victim)
                self.main_insert_queue.append(victim)
                self._pending_main_insert.add(victim)
                continue
            return victim, self.small_map[victim]
        return None

    def _first_request_needing_small(self, now: int) -> Optional[Request]:
        for request in self.queue:
            if request.arrival > now:
                break
            if request.block in self.small_map:
                return request
        return None

    def _small_dummy(self, now: int) -> SlotResult:
        leaf = self.rng.randrange(1 << (self.small_oram.levels - 1))
        self.stats.inc(sk.RHO_SMALL_DUMMIES)
        return self._small_path(leaf, now, PathType.DUMMY)

    # ------------------------------------------------------------------
    # small-tree path machinery
    # ------------------------------------------------------------------
    def _small_path(
        self,
        leaf: int,
        now: int,
        path_type: PathType,
        extract: Optional[int] = None,
        remapped: Optional[Tuple[int, int]] = None,
    ) -> SlotResult:
        """One full small-tree path access (read + greedy write)."""
        addresses = self.small_layout.path_addresses(leaf)
        finish_read = self.dram.service_addresses(addresses, False, now)
        removed = self.small_tree.read_and_clear(leaf)
        extract_found = False
        target_found = False
        for block, _ in removed:
            if extract is not None and block == extract:
                extract_found = True
                continue
            if remapped is not None and block == remapped[0]:
                self.small_stash.add(block, remapped[1])
                target_found = True
                continue
            if block not in self.small_map:
                raise ProtocolError(f"block {block} missing from small map")
            self.small_stash.add(block, self.small_map[block])
        if extract is not None and not extract_found:
            raise ProtocolError(f"victim {extract} absent from its path")
        if remapped is not None and not target_found:
            raise ProtocolError(f"block {remapped[0]} absent from its path")

        self.path_count += 1
        self.stats.inc(sk.paths_key(path_type))
        self.stats.inc(sk.PATHS_TOTAL)
        self.stats.inc(sk.PATHS_SMALL_TREE)
        self.stats.inc(sk.MEM_BLOCKS_READ, len(addresses))
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.PATH_READ,
                now,
                path_type=path_type.value,
                leaf=leaf,
                finish=finish_read,
                blocks=len(addresses),
                tree="small",
            )
        if self.observer is not None:
            from .types import PathAccessRecord

            self.observer(
                PathAccessRecord(
                    issue_cycle=now,
                    leaf=leaf,
                    path_type=path_type,
                    read_addresses=list(addresses),
                    write_addresses=list(addresses),
                )
            )

        self._small_write_phase(leaf)
        finish_write = self.dram.service_addresses(addresses, True, finish_read)
        self.stats.inc(sk.MEM_BLOCKS_WRITTEN, len(addresses))
        if tracer is not None:
            tracer.emit(
                ev.PATH_WRITE,
                finish_read,
                path_type=path_type.value,
                leaf=leaf,
                finish=finish_write,
                blocks=len(addresses),
                tree="small",
            )
        return SlotResult(True, path_type, now, finish_read, finish_write)

    def _small_write_phase(self, leaf: int) -> None:
        levels = self.small_oram.levels
        pools: List[List[int]] = [[] for _ in range(levels)]
        for block, block_leaf in self.small_stash.items():
            depth = self.small_tree.deepest_common_level(leaf, block_leaf)
            pools[depth].append(block)
        pool: List[int] = []
        for level in range(levels - 1, -1, -1):
            pool.extend(pools[level])
            z = self.small_oram.z_per_level[level]
            if z == 0 or not pool:
                continue
            position = self.small_tree.path_position(leaf, level)
            placed = 0
            while pool and placed < z:
                block = pool.pop()
                if not self.small_tree.place(level, position, block):
                    raise ProtocolError("small bucket overflow")
                self.small_stash.remove(block)
                placed += 1
