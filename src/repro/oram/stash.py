"""The fully associative on-chip stash (F-Stash in IR-ORAM terms).

The stash temporarily holds real blocks between a path read and subsequent
path writes.  Entries map block ID to the block's current leaf assignment;
as elsewhere, payloads are not simulated.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ProtocolError, StashOverflowError
from ..stats import Stats


class Stash:
    """Fully associative block buffer with occupancy tracking."""

    def __init__(self, capacity: int, stats: Optional[Stats] = None) -> None:
        if capacity < 1:
            raise ProtocolError("stash capacity must be positive")
        self.capacity = capacity
        self.stats = stats if stats is not None else Stats()
        self._entries: Dict[int, int] = {}
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: int) -> bool:
        return block in self._entries

    def add(self, block: int, leaf: int, enforce_capacity: bool = False) -> None:
        """Insert or update a block's stash entry.

        With ``enforce_capacity`` the classic Path ORAM failure mode is
        modeled: exceeding the hard capacity raises
        :class:`StashOverflowError`.  The controller normally leaves this
        off and relies on background eviction instead (Ren et al.).
        """
        self._entries[block] = leaf
        occupancy = len(self._entries)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        if enforce_capacity and occupancy > self.capacity:
            raise StashOverflowError(
                f"stash holds {occupancy} blocks > capacity {self.capacity}"
            )

    def remove(self, block: int) -> int:
        """Remove a block, returning its leaf."""
        try:
            return self._entries.pop(block)
        except KeyError:
            raise ProtocolError(f"block {block} not in stash") from None

    def leaf_of(self, block: int) -> int:
        try:
            return self._entries[block]
        except KeyError:
            raise ProtocolError(f"block {block} not in stash") from None

    def update_leaf(self, block: int, leaf: int) -> None:
        if block not in self._entries:
            raise ProtocolError(f"block {block} not in stash")
        self._entries[block] = leaf

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._entries.items())

    def blocks(self) -> List[int]:
        return list(self._entries)

    def over_threshold(self, threshold: int) -> bool:
        return len(self._entries) > threshold

    def occupancy_excess(self) -> int:
        """Blocks beyond the hard capacity (0 when within bounds)."""
        return max(0, len(self._entries) - self.capacity)
