"""The fully associative on-chip stash (F-Stash in IR-ORAM terms).

The stash temporarily holds real blocks between a path read and subsequent
path writes.  Entries map block ID to the block's current leaf assignment;
as elsewhere, payloads are not simulated.

Besides the flat block -> leaf table, the stash maintains a *leaf-indexed*
secondary structure: blocks bucketed by a fixed-length prefix of their leaf
(the top :data:`Stash.PREFIX_LEVELS` bits of the path ID).  The write phase
of a path access needs every stash block grouped by the deepest level it
may occupy on the path being written — :meth:`path_pools` computes exactly
that grouping.  Blocks sharing the target prefix (the only candidates for
the deep levels) are resolved with one XOR/bit-length per block; all other
prefix buckets land in a shallow pool *wholesale*, because every block in a
bucket shares the same divergence level with the target path.  The cost is
proportional to the number of prefix buckets plus the path-eligible blocks,
not to a per-block tree query over the full stash.

Pool ordering is canonical: blocks appear in stash insertion order (the
order a plain dict scan would produce), tracked with per-entry sequence
numbers so the optimized grouping is bit-identical to the historical
full-scan implementation.  Prefix buckets are keyed by sequence number
(``{seq: block}``) so wholesale merges sort without a key function.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ProtocolError, StashOverflowError
from ..obs import events as ev
from ..perf.native import fastpath as _native
from ..stats import Stats


class Stash:
    """Fully associative block buffer with occupancy tracking."""

    #: leaf-prefix length (in tree levels) of the secondary index
    PREFIX_LEVELS = 5

    def __init__(self, capacity: int, stats: Optional[Stats] = None) -> None:
        if capacity < 1:
            raise ProtocolError("stash capacity must be positive")
        self.capacity = capacity
        self.stats = stats if stats is not None else Stats()
        self._entries: Dict[int, int] = {}
        self.peak_occupancy = 0
        # -- leaf-prefix index (built by configure_path_index) -------------
        self._levels: Optional[int] = None
        self._prefix_shift = 0
        self._prefix_levels = 0
        #: prefix -> {insertion sequence number: block}
        self._by_prefix: Dict[int, Dict[int, int]] = {}
        #: block -> insertion sequence number
        self._seq: Dict[int, int] = {}
        self._next_seq = 0
        self._pools: List[List[int]] = []
        self._staging: List[List[Tuple[int, int]]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: int) -> bool:
        return block in self._entries

    # -- leaf-prefix index -------------------------------------------------
    def configure_path_index(self, levels: int) -> None:
        """Size the leaf-prefix index for a tree of ``levels`` levels.

        Must be called before :meth:`path_pools`; entries added earlier are
        re-indexed (in entry order, which is the canonical pool order).
        Leaf IDs carry ``levels - 1`` bits.
        """
        if levels < 2:
            raise ProtocolError("path index needs at least 2 tree levels")
        self._levels = levels
        self._prefix_levels = min(self.PREFIX_LEVELS, levels - 1)
        self._prefix_shift = (levels - 1) - self._prefix_levels
        self._pools = [[] for _ in range(levels)]
        self._staging = [[] for _ in range(levels)]
        self._by_prefix = {}
        self._seq = {}
        by_prefix = self._by_prefix
        seq_of = self._seq
        shift = self._prefix_shift
        seq = self._next_seq
        for block, leaf in self._entries.items():
            seq_of[block] = seq
            prefix = leaf >> shift
            bucket = by_prefix.get(prefix)
            if bucket is None:
                by_prefix[prefix] = bucket = {}
            bucket[seq] = block
            seq += 1
        self._next_seq = seq

    def _index_move(self, block: int, old_leaf: int, new_leaf: int) -> None:
        if self._levels is None:
            return
        shift = self._prefix_shift
        old_prefix = old_leaf >> shift
        new_prefix = new_leaf >> shift
        if old_prefix == new_prefix:
            return
        seq = self._seq[block]
        bucket = self._by_prefix[old_prefix]
        del bucket[seq]
        if not bucket:
            del self._by_prefix[old_prefix]
        target = self._by_prefix.get(new_prefix)
        if target is None:
            self._by_prefix[new_prefix] = target = {}
        target[seq] = block

    # -- core API ----------------------------------------------------------
    def add(self, block: int, leaf: int, enforce_capacity: bool = False) -> None:
        """Insert or update a block's stash entry.

        With ``enforce_capacity`` the classic Path ORAM failure mode is
        modeled: exceeding the hard capacity raises
        :class:`StashOverflowError`.  The controller normally leaves this
        off and relies on background eviction instead (Ren et al.).
        """
        entries = self._entries
        old_leaf = entries.get(block)
        entries[block] = leaf
        if old_leaf is None:
            if self._levels is not None:
                seq = self._next_seq
                self._next_seq = seq + 1
                self._seq[block] = seq
                prefix = leaf >> self._prefix_shift
                bucket = self._by_prefix.get(prefix)
                if bucket is None:
                    self._by_prefix[prefix] = bucket = {}
                bucket[seq] = block
        elif old_leaf != leaf:
            self._index_move(block, old_leaf, leaf)
        occupancy = len(entries)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
            tracer = self.stats.tracer
            if tracer is not None:
                tracer.emit(ev.STASH_HWM, tracer.now, occupancy=occupancy)
        if enforce_capacity and occupancy > self.capacity:
            raise StashOverflowError(
                f"stash holds {occupancy} blocks > capacity {self.capacity}"
            )

    def remove(self, block: int) -> int:
        """Remove a block, returning its leaf."""
        try:
            leaf = self._entries.pop(block)
        except KeyError:
            raise ProtocolError(f"block {block} not in stash") from None
        if self._levels is not None:
            seq = self._seq.pop(block)
            prefix = leaf >> self._prefix_shift
            bucket = self._by_prefix[prefix]
            del bucket[seq]
            if not bucket:
                del self._by_prefix[prefix]
        return leaf

    def leaf_of(self, block: int) -> int:
        try:
            return self._entries[block]
        except KeyError:
            raise ProtocolError(f"block {block} not in stash") from None

    def update_leaf(self, block: int, leaf: int) -> None:
        old_leaf = self._entries.get(block)
        if old_leaf is None:
            raise ProtocolError(f"block {block} not in stash")
        if old_leaf != leaf:
            self._entries[block] = leaf
            self._index_move(block, old_leaf, leaf)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._entries.items())

    def blocks(self) -> List[int]:
        return list(self._entries)

    def over_threshold(self, threshold: int) -> bool:
        return len(self._entries) > threshold

    def occupancy_excess(self) -> int:
        """Blocks beyond the hard capacity (0 when within bounds)."""
        return max(0, len(self._entries) - self.capacity)

    # -- write-phase candidate grouping -------------------------------------
    def path_pools(self, leaf: int) -> List[List[int]]:
        """Group every stash block by its deepest level on the path to ``leaf``.

        Returns a reused list ``pools`` with ``pools[d]`` holding the blocks
        whose deepest common level with the target path is ``d``, each pool
        in stash insertion order — exactly the grouping a full scan with
        ``tree.deepest_common_level`` per block would produce, but computed
        from the leaf-prefix index.
        """
        levels = self._levels
        if levels is None:
            raise ProtocolError("path index not configured")
        pools = self._pools
        if _native is not None and levels < 64:
            _native.path_pools_fill(
                leaf,
                self._entries,
                self._by_prefix,
                self._prefix_shift,
                self._prefix_levels,
                levels,
                pools,
            )
            return pools
        for pool in pools:
            if pool:
                pool.clear()
        if not self._entries:
            return pools
        staging = self._staging
        entries = self._entries
        base = levels - 1
        prefix_levels = self._prefix_levels
        target_prefix = leaf >> self._prefix_shift
        touched: List[int] = []
        for prefix, bucket in self._by_prefix.items():
            if prefix == target_prefix:
                # Only these blocks can go below the prefix boundary; their
                # exact depth needs the full-leaf comparison.
                for seq, block in bucket.items():
                    depth = base - (leaf ^ entries[block]).bit_length()
                    group = staging[depth]
                    if not group:
                        touched.append(depth)
                    group.append((seq, block))
            else:
                # Every block in a diverging bucket shares one depth.
                depth = prefix_levels - (prefix ^ target_prefix).bit_length()
                group = staging[depth]
                if not group:
                    touched.append(depth)
                group.extend(bucket.items())
        for depth in touched:
            group = staging[depth]
            if len(group) > 1:
                group.sort()
            pools[depth][:] = [item[1] for item in group]
            group.clear()
        return pools
