"""Palermo-style read/write phase decoupling.

Palermo observes that Path ORAM's write-back phase is independent of the
next access's read phase: once a path's blocks are in the stash and
placement decisions are made, the DRAM write burst can be deferred while
the *read* phases of subsequent accesses issue immediately, letting reads
and pending writes overlap in the memory system instead of strictly
alternating.

:class:`DecoupledPathORAMController` models that as a *scheme*, not an
implementation trick:

* the functional protocol is untouched — placement runs at the issue slot
  (stash, tree, PosMap, and RNG state evolve exactly as in ``Baseline``),
  so the access sequence, stash occupancy, and all protocol counters are
  bit-identical to the coupled controller's;
* the *timing* changes — a slot completes at its read-phase finish, and
  the write burst is queued into a bounded window serviced through the
  same DRAM bank model, where it contends with (and overlaps) the read
  bursts of later accesses;
* the window is bounded (``REPRO_DECOUPLE_WINDOW``, default 4 pending
  write phases, per Palermo's small deferred-write queue): overflowing
  drains the oldest write first, and end-of-run drains the remainder
  (:meth:`drain_background`, called by the simulator loop).

Security note: the defense's access *rate* is unchanged — one path per
issue interval — and every access still reads and writes a full path;
only the interleaving of read and write bursts at the DRAM differs, which
is the observable Palermo argues is safe to reorder.
"""

from __future__ import annotations

import os
import random
from collections import deque
from typing import Deque, Optional, Set, Tuple

from .. import stats_keys as sk
from ..config import SystemConfig
from ..stats import Stats
from .controller import PathORAMController
from .treetop import TreeTopCache
from .types import PathType

#: default bound on pending (deferred) write phases
DEFAULT_WINDOW = 4


def decouple_window() -> int:
    """The configured deferred-write window (``REPRO_DECOUPLE_WINDOW``)."""
    try:
        window = int(os.environ.get("REPRO_DECOUPLE_WINDOW", "") or DEFAULT_WINDOW)
    except ValueError:
        window = DEFAULT_WINDOW
    return max(1, window)


class DecoupledPathORAMController(PathORAMController):
    """Baseline controller with deferred, overlapping write bursts."""

    #: The native batch kernel composes read and write bursts back to
    #: back inside one path; decoupled timing needs the per-slot path.
    SUPPORTS_NATIVE_BATCH = False

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[Stats] = None,
        rng: Optional[random.Random] = None,
        treetop: Optional[TreeTopCache] = None,
        delayed_remap: bool = False,
        window: Optional[int] = None,
    ) -> None:
        super().__init__(config, stats, rng, treetop=treetop,
                         delayed_remap=delayed_remap)
        self.window = window if window is not None else decouple_window()
        #: deferred write phases: (leaf, ready cycle, path type), oldest
        #: first; ``ready`` is the access's read-phase finish, the
        #: earliest cycle its write burst may issue.
        self._pending_writes: Deque[Tuple[int, int, PathType]] = deque()

    # ------------------------------------------------------------------
    # the decoupled write phase
    # ------------------------------------------------------------------
    def _write_path(self, leaf: int, finish_read: int, path_type: PathType,
                    preexisting: Optional[Set[int]] = None) -> int:
        """Place now, defer the DRAM write burst; returns the slot finish.

        The slot completes at ``finish_read``: the next access's read
        phase is not serialized behind this write burst.  The burst joins
        the window and is serviced — at the earliest, at ``finish_read``,
        and otherwise whenever the banks free up around later reads —
        when the window overflows or the run drains.
        """
        self._place_path(leaf, preexisting)
        self._pending_writes.append((leaf, finish_read, path_type))
        self.stats.counters[sk.DECOUPLE_DEFERRED_WRITES] += 1
        while len(self._pending_writes) > self.window:
            self._drain_oldest()
        self._after_write_phase()
        return finish_read

    def _drain_oldest(self) -> int:
        """Service the oldest pending write burst; returns its finish."""
        leaf, ready, path_type = self._pending_writes.popleft()
        return self._writeback_path(leaf, ready, path_type)

    def drain_background(self, now: int) -> int:
        """Flush every pending write burst (end of run); returns the last
        finish cycle, or ``now`` when nothing was pending."""
        finish = now
        while self._pending_writes:
            finish = max(finish, self._drain_oldest())
        return finish
