"""On-chip tree-top caching policies.

The Baseline (Section VI) keeps the top ten tree levels in a dedicated
on-chip cache, as in Nagarajan et al. / Wang et al.: path accesses to those
levels cost no memory traffic, but the structure is only addressable by
tree position, so the LLC cannot ask "is block b on chip?" without first
translating b through the PosMap — the exact waste IR-Stash removes.

:class:`TreeTopCache` models that dedicated-cache design and doubles as the
interface IR-Stash implements with different answers (see
``repro.core.ir_stash.SStash``).
"""

from __future__ import annotations

from typing import Optional

from .. import stats_keys as sk
from ..config import ORAMConfig
from ..stats import Stats


class TreeTopCache:
    """Dedicated tree-top cache: position-indexed, invisible to the LLC."""

    #: Can the LLC find blocks here by block address (no PosMap needed)?
    addressable_by_block = False

    def __init__(self, config: ORAMConfig, stats: Optional[Stats] = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.levels = config.top_cached_levels

    def covers_level(self, level: int) -> bool:
        """True when ``level`` is held on chip (no memory traffic)."""
        return level < self.levels

    def capacity_entries(self) -> int:
        """Block slots held on chip by this structure."""
        return sum(
            self.config.z_per_level[level] << level for level in range(self.levels)
        )

    # -- LLC-visible probe -----------------------------------------------------
    def lookup_by_address(self, block: int) -> bool:
        """Baseline cannot answer block-address probes: always a miss."""
        return False

    # -- placement hooks (called by the controller on top-level changes) -----
    def may_place(self, block: int) -> bool:
        """Whether the structure can accept this block (bucket-slot limits
        are enforced separately by the tree itself)."""
        return True

    def on_place(self, block: int) -> None:
        self.stats.inc(sk.TREETOP_PLACED)

    def on_remove(self, block: int) -> None:
        self.stats.inc(sk.TREETOP_REMOVED)

    def describe(self) -> str:
        return (
            f"dedicated tree-top cache: top {self.levels} levels, "
            f"{self.capacity_entries()} entries"
        )
