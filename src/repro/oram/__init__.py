"""Path ORAM substrate: tree, stash, position maps, PLB, and controller."""

from .controller import PathORAMController
from .integrity import IntegrityError, MerkleIntegrity, attach_integrity
from .plb import PLB
from .posmap import PositionMap
from .stash import Stash
from .tree import ORAMTree
from .treetop import TreeTopCache
from .types import BlockKind, Namespace, PathType, Request, RequestKind

__all__ = [
    "PathORAMController",
    "MerkleIntegrity",
    "IntegrityError",
    "attach_integrity",
    "ORAMTree",
    "Stash",
    "PositionMap",
    "PLB",
    "TreeTopCache",
    "PathType",
    "BlockKind",
    "RequestKind",
    "Request",
    "Namespace",
]
