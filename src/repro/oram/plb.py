"""The PosMap lookaside buffer (PLB).

A small on-chip set-associative cache of PosMap *blocks* (Freecursive).
A hit means the needed mapping entry is on chip; a miss forces a full path
access for the PosMap block.  Remapping a child block dirties the cached
parent PosMap block; evicting a dirty PosMap block requires writing it back
through another full ORAM access, which the controller performs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import stats_keys as sk
from ..cache.cache import EvictedLine, SetAssocCache
from ..config import CacheConfig, ORAMConfig
from ..obs import events as ev
from ..stats import Stats


class PLB:
    """Set-associative cache of PosMap block IDs."""

    def __init__(self, config: ORAMConfig, stats: Optional[Stats] = None) -> None:
        self.stats = stats if stats is not None else Stats()
        cache_config = CacheConfig(
            sets=config.plb_sets, ways=config.plb_ways, hit_latency=2
        )
        self._cache = SetAssocCache(cache_config, self.stats, name="plb")

    def lookup(self, posmap_block: int) -> bool:
        """Probe without filling; counts a hit or miss."""
        hit = self._cache.probe(posmap_block)
        if hit:
            # Touch for LRU by re-accessing (probe does not reorder).
            self._cache.access(posmap_block, is_write=False)
            self.stats.inc(sk.PLB_LOOKUP_HITS)
        else:
            self.stats.inc(sk.PLB_LOOKUP_MISSES)
        tracer = self.stats.tracer
        if tracer is not None:
            tracer.emit(
                ev.PLB_HIT if hit else ev.PLB_MISS,
                tracer.now,
                block=posmap_block,
            )
        return hit

    def contains(self, posmap_block: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        return self._cache.probe(posmap_block)

    def contents(self) -> Dict[int, bool]:
        """``{posmap_block: dirty}`` for every resident line (no side
        effects; used by the conformance auditor and flush logic)."""
        return self._cache.contents()

    def fill(self, posmap_block: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install a PosMap block fetched through the ORAM.

        Returns the evicted line, if any; the caller must issue an ORAM
        write access when the victim is dirty.
        """
        return self._cache.insert(posmap_block, dirty)

    def mark_dirty(self, posmap_block: int) -> None:
        """Record that a cached PosMap block's entries changed (remap)."""
        if self._cache.probe(posmap_block):
            self._cache.access(posmap_block, is_write=True)

    def flush_dirty(self) -> List[int]:
        """Return and clean all dirty blocks (context-switch style flush)."""
        dirty = [
            block for block, is_dirty in self._cache.contents().items() if is_dirty
        ]
        for block in dirty:
            self._cache.mark_clean(block)
        return dirty

    def occupancy(self) -> int:
        return self._cache.occupancy()
