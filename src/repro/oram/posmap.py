"""The position map: block-to-leaf assignments for the merged namespace.

Logically this is three recursive tables (Freecursive); physically we hold
one flat array of leaf assignments for every block in the namespace — the
*content* of PosMap1/2/3 — while the *access cost* of consulting the
mappings is modeled by the PLB and the controller's recursion (fetching
PosMap1/PosMap2 blocks through full ORAM path accesses).

The map also tracks LLC-D's "delayed remapping": a block's mapping can be
discarded (the block leaves the tree and lives only in the LLC) and later
re-established when the LLC evicts it.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import ProtocolError
from .types import Namespace

#: Sentinel leaf meaning "mapping discarded" (LLC-D delayed remapping).
UNMAPPED = -1


class PositionMap:
    """Leaf assignments plus remap bookkeeping."""

    def __init__(self, namespace: Namespace, leaves: int, rng: random.Random) -> None:
        self.namespace = namespace
        self.leaves = leaves
        self._rng = rng
        self._leaf_of: List[int] = [
            rng.randrange(leaves) for _ in range(namespace.total_blocks)
        ]
        self.remap_count = 0

    def leaf_of(self, block: int) -> int:
        leaf = self._leaf_of[block]
        if leaf == UNMAPPED:
            raise ProtocolError(f"block {block} has no mapping (unmapped)")
        return leaf

    def is_mapped(self, block: int) -> bool:
        return self._leaf_of[block] != UNMAPPED

    def remap(self, block: int) -> int:
        """Assign a fresh uniformly random leaf; return it."""
        leaf = self._rng.randrange(self.leaves)
        self._leaf_of[block] = leaf
        self.remap_count += 1
        return leaf

    def discard(self, block: int) -> None:
        """LLC-D: drop the mapping while the block lives in the LLC."""
        self._leaf_of[block] = UNMAPPED

    def restore(self, block: int) -> int:
        """LLC-D: re-establish a mapping for a block returning to the tree."""
        if self._leaf_of[block] != UNMAPPED:
            raise ProtocolError(f"block {block} is already mapped")
        return self.remap(block)
